//! The static metric/stage name table.
//!
//! Every instrumented call site in the workspace registers against one
//! of these constants, so the full vocabulary of the observability
//! layer is reviewable in one place and tests can reference names
//! without typo drift. Dots namespace by crate/subsystem
//! (`dns.`, `net.scan.`, `smtp.`, `fault.`, `par.`, `lint.`), and
//! stage names double as tree positions via their registered parents.

// --- dns: stub resolver (crates/dns/src/resolver.rs) ---

/// Positive cache hits in the stub resolver.
pub const DNS_CACHE_HITS: &str = "dns.cache.hits";
/// Negative (NXDOMAIN/NoData) cache hits in the stub resolver.
pub const DNS_CACHE_NEGATIVE_HITS: &str = "dns.cache.negative_hits";
/// Transport query attempts sent (first tries and retries alike).
pub const DNS_QUERIES: &str = "dns.queries";
/// Retry attempts only (attempt index > 0).
pub const DNS_RETRIES: &str = "dns.retries";
/// Simulated seconds charged to DNS retry backoff.
pub const DNS_BACKOFF_SIM_SECS: &str = "dns.backoff.sim_secs";

// --- net: port-25 scanner (crates/net/src/scanner.rs) ---

/// Connection attempts consumed across all scanned IPs.
pub const NET_SCAN_ATTEMPTS: &str = "net.scan.attempts";
/// IPs skipped because the owner opted out (per scan pass).
pub const NET_SCAN_BLOCKED: &str = "net.scan.blocked";
/// Scan passes over an IP that captured data after a failed attempt.
pub const NET_SCAN_RECOVERED: &str = "net.scan.recovered";
/// Scan passes over an IP that exhausted the attempt budget.
pub const NET_SCAN_EXHAUSTED: &str = "net.scan.exhausted";
/// Scan passes that accepted STARTTLS but failed the TLS handshake.
pub const NET_SCAN_TLS_FAILED: &str = "net.scan.tls_failed";
/// Simulated seconds charged to scan retry backoff.
pub const NET_SCAN_BACKOFF_SIM_SECS: &str = "net.scan.backoff.sim_secs";
/// Simulated seconds charged to tarpitted EHLO exchanges.
pub const NET_SCAN_TARPIT_SIM_SECS: &str = "net.scan.tarpit.sim_secs";
/// Distribution of attempts consumed per scan pass over one IP.
pub const NET_SCAN_ATTEMPTS_PER_IP: &str = "net.scan.attempts_per_ip";
/// Bucket bounds for [`NET_SCAN_ATTEMPTS_PER_IP`] (attempts).
pub const NET_SCAN_ATTEMPTS_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8];

// --- fault coins (crates/net/src/fault.rs) ---

/// Scan-fault coins drawn (fault plan active on the scan path).
pub const FAULT_SCAN_COINS: &str = "fault.scan.coins";
/// Scan-fault coins that fired.
pub const FAULT_SCAN_FIRED: &str = "fault.scan.fired";
/// DNS-fault coins drawn.
pub const FAULT_DNS_COINS: &str = "fault.dns.coins";
/// DNS-fault coins that fired.
pub const FAULT_DNS_FIRED: &str = "fault.dns.fired";
/// SMTP-fault coins drawn.
pub const FAULT_SMTP_COINS: &str = "fault.smtp.coins";
/// SMTP-fault coins that fired.
pub const FAULT_SMTP_FIRED: &str = "fault.smtp.fired";

// --- fault coins: connection chaos (crates/net/src/fault.rs) ---

/// Connection-fault coins drawn (ConnFaultPlan active on a transport).
pub const FAULT_CONN_COINS: &str = "fault.conn.coins";
/// Connection-fault coins that fired.
pub const FAULT_CONN_FIRED: &str = "fault.conn.fired";

// --- smtp: session client (crates/smtp/src/client.rs) ---

/// SMTP sessions opened (banner read attempted).
pub const SMTP_SESSIONS: &str = "smtp.sessions";
/// Sessions whose banner carried the 220 READY code.
pub const SMTP_BANNER_OK: &str = "smtp.banner.ok";
/// EHLO commands sent.
pub const SMTP_EHLO: &str = "smtp.ehlo";
/// EHLO exchanges answered 250 OK.
pub const SMTP_EHLO_OK: &str = "smtp.ehlo.ok";
/// STARTTLS commands sent.
pub const SMTP_STARTTLS: &str = "smtp.starttls";
/// STARTTLS accepted and the TLS handshake completed.
pub const SMTP_STARTTLS_OK: &str = "smtp.starttls.ok";
/// STARTTLS refused by the server.
pub const SMTP_STARTTLS_REFUSED: &str = "smtp.starttls.refused";
/// STARTTLS accepted but the TLS handshake failed.
pub const SMTP_STARTTLS_FAILED: &str = "smtp.starttls.failed";

// --- par: thread-pool probes (crates/par/src/lib.rs) — per-run ---

/// `par_map` calls that took the parallel path.
pub const PAR_MAP_PARALLEL: &str = "par.par_map.parallel";
/// `par_map` calls that took the serial path (width 1 or nested).
pub const PAR_MAP_SERIAL: &str = "par.par_map.serial";
/// Items submitted through `par_map`.
pub const PAR_TASKS: &str = "par.tasks";
/// High-water mark of worker threads spawned for one call.
pub const PAR_WORKERS_MAX: &str = "par.workers.max";
/// High-water mark of items still unclaimed when a worker grabbed a
/// chunk (a queue-depth probe).
pub const PAR_QUEUE_DEPTH_MAX: &str = "par.queue_depth.max";

// --- lint: shared lex cache (crates/lint/src/lib.rs) — per-run ---

/// Lex-cache hits.
pub const LINT_LEX_CACHE_HITS: &str = "lint.lex_cache.hits";
/// Lex-cache misses.
pub const LINT_LEX_CACHE_MISSES: &str = "lint.lex_cache.misses";

// --- store: snapshot store (crates/store) ---

/// Epochs encoded into store files.
pub const STORE_WRITE_EPOCHS: &str = "store.write.epochs";
/// Row upserts encoded (base rows and delta upserts alike).
pub const STORE_WRITE_ROWS: &str = "store.write.rows";
/// Delta operations encoded (upserts + removals in delta epochs).
pub const STORE_WRITE_DELTA_OPS: &str = "store.write.delta_ops";
/// Bytes of finished store files produced.
pub const STORE_WRITE_BYTES: &str = "store.write.bytes";
/// Store files opened (header + index decode) — per-run.
pub const STORE_READ_OPENS: &str = "store.read.opens";
/// Point lookups served by open readers — per-run.
pub const STORE_READ_LOOKUPS: &str = "store.read.lookups";
/// Rows yielded by full-epoch iteration/diff — per-run.
pub const STORE_READ_ROWS: &str = "store.read.rows";
/// Summary/rollup/digest index queries served (v2 footer) — per-run.
pub const STORE_READ_INDEX_QUERIES: &str = "store.read.index_queries";
/// Postings-list scans (domains-of-provider, set diffs) — per-run.
pub const STORE_READ_POSTINGS_SCANS: &str = "store.read.postings_scans";

// --- delta: incremental measurement (crates/delta) ---

/// Zone-update events applied to the delta world state.
pub const DELTA_EVENTS_APPLIED: &str = "delta.events.applied";
/// Distinct domains marked dirty by event batches (after the
/// reverse-index closure over shared hosts and IPs).
pub const DELTA_DOMAINS_DIRTY: &str = "delta.domains.dirty";
/// Domains actually re-resolved (equals the dirty domains that still
/// exist after deletions).
pub const DELTA_RERESOLVES: &str = "delta.reresolve.domains";
/// IPs re-scanned because no cached observation covered them.
pub const DELTA_RESCANS: &str = "delta.rescan.ips";
/// Domains assembled from the measurement cache instead of the wire.
pub const DELTA_REUSE_HITS: &str = "delta.reuse.hits";
/// Delta epochs appended to store files.
pub const DELTA_EPOCHS_APPENDED: &str = "delta.epochs.appended";

// --- serve: HTTP query service (crates/serve) ---

/// Connections the server accepted (transport handshake completed).
pub const SERVE_CONNS_ACCEPTED: &str = "serve.conns.accepted";
/// Connections refused at the door (max-connections cap or shutdown).
pub const SERVE_CONNS_REFUSED: &str = "serve.conns.refused";
/// Requests the server committed to answering: complete parses,
/// terminal parse failures and deadline evictions alike. Exactly
/// `served + errored + shed + evicted` at all times.
pub const SERVE_REQS_ACCEPTED: &str = "serve.reqs.accepted";
/// Requests answered 2xx from a handler.
pub const SERVE_REQS_SERVED: &str = "serve.reqs.served";
/// Requests answered with a mapped 4xx/5xx (parse or route failure),
/// excluding load-shed 503s.
pub const SERVE_REQS_ERRORED: &str = "serve.reqs.errored";
/// Requests answered 503 + `Retry-After` because the in-flight queue
/// was full (load shedding — degrade, don't die).
pub const SERVE_REQS_SHED: &str = "serve.reqs.shed";
/// Requests evicted at a read deadline (slowloris / stalled client):
/// answered 408 and the connection closed.
pub const SERVE_REQS_EVICTED: &str = "serve.reqs.evicted";
/// Hot-row cache hits (tier 1, over the store reader) — per-run.
pub const SERVE_CACHE_ROW_HITS: &str = "serve.cache.row.hits";
/// Hot-row cache misses (tier 1) — per-run.
pub const SERVE_CACHE_ROW_MISSES: &str = "serve.cache.row.misses";
/// Rendered-JSON cache hits (tier 2) — per-run.
pub const SERVE_CACHE_JSON_HITS: &str = "serve.cache.json.hits";
/// Rendered-JSON cache misses (tier 2) — per-run.
pub const SERVE_CACHE_JSON_MISSES: &str = "serve.cache.json.misses";
/// Per-endpoint simulated-latency distributions (milliseconds from a
/// request's final byte to its response completing service).
pub const SERVE_LATENCY_LOOKUP: &str = "serve.latency.lookup";
/// `/market` latency distribution (sim ms).
pub const SERVE_LATENCY_MARKET: &str = "serve.latency.market";
/// `/series` latency distribution (sim ms).
pub const SERVE_LATENCY_SERIES: &str = "serve.latency.series";
/// `/churn` latency distribution (sim ms).
pub const SERVE_LATENCY_CHURN: &str = "serve.latency.churn";
/// `/providers/{name}/domains` latency distribution (sim ms).
pub const SERVE_LATENCY_PROVIDERS: &str = "serve.latency.providers";
/// `/epochs/{a}..{b}/diff` latency distribution (sim ms).
pub const SERVE_LATENCY_DIFF: &str = "serve.latency.diff";
/// `/healthz` latency distribution (sim ms).
pub const SERVE_LATENCY_HEALTHZ: &str = "serve.latency.healthz";
/// `/metrics` + `/debug/*` introspection-endpoint latency (sim ms).
pub const SERVE_LATENCY_DEBUG: &str = "serve.latency.debug";
/// Bucket bounds for the `serve.latency.*` histograms (sim ms).
pub const SERVE_LATENCY_BOUNDS: &[u64] = &[1, 2, 5, 10, 20, 50, 100, 200];

// --- obs: the trace layer's own accounting (crates/obs/src/trace.rs) ---

/// Stable trace events offered to the ring buffers. Stable events are
/// deterministic in count, so this counter is itself stable.
pub const OBS_TRACE_RECORDED: &str = "obs.trace.recorded";
/// Trace events dropped by ring overflow — per-run (which shard
/// overflows first depends on thread scheduling).
pub const OBS_TRACE_DROPPED: &str = "obs.trace.dropped";

// --- stages: the pipeline tree ---

/// Root of the measurement (observation) side.
pub const STAGE_OBSERVE: &str = "observe";
/// Per-dataset MX/A resolution joins.
pub const STAGE_OBSERVE_RESOLVE: &str = "observe.resolve";
/// The port-25 scan over the union of resolved IPs.
pub const STAGE_OBSERVE_SCAN: &str = "observe.scan";
/// Per-IP scan/routing/cert join.
pub const STAGE_OBSERVE_JOIN: &str = "observe.join";
/// Per-dataset observation-set assembly.
pub const STAGE_OBSERVE_ASSEMBLE: &str = "observe.assemble";
/// One `resolve_mx` bracket in the stub resolver.
pub const STAGE_DNS_LOOKUP: &str = "dns.lookup";
/// One scanner pass over a set of IPs.
pub const STAGE_NET_SCAN: &str = "net.scan";
/// One scanner pass over a single IP.
pub const STAGE_NET_SCAN_IP: &str = "net.scan.ip";
/// One SMTP session (banner through optional STARTTLS).
pub const STAGE_SMTP_SESSION: &str = "smtp.session";
/// Root of the inference side (the priority cascade).
pub const STAGE_INFER: &str = "infer";
/// Certificate-group extraction.
pub const STAGE_INFER_CERTGROUP: &str = "infer.certgroup";
/// Per-IP identification.
pub const STAGE_INFER_IPID: &str = "infer.ipid";
/// Per-exchange (MX) identification.
pub const STAGE_INFER_MXID: &str = "infer.mxid";
/// Misidentification correction pass.
pub const STAGE_INFER_MISID: &str = "infer.misid";
/// Per-domain identification.
pub const STAGE_INFER_DOMAINID: &str = "infer.domainid";
/// Coverage/resilience report assembly.
pub const STAGE_REPORT_COVERAGE: &str = "report.coverage";
/// One incremental-measurement batch: apply events, re-measure the
/// dirty set, append a delta epoch.
pub const STAGE_DELTA_BATCH: &str = "delta.batch";
/// Encoding one study into a store file (all epochs).
pub const STAGE_STORE_WRITE: &str = "store.write";
/// Opening a store file: header, tables and block-index decode.
pub const STAGE_STORE_READ: &str = "store.read";
/// One simulated-transport trace driven through the HTTP server.
pub const STAGE_SERVE_TRACE: &str = "serve.trace";
/// One request's life inside the serve kernel (sim-timed).
pub const STAGE_SERVE_REQ: &str = "serve.req";
/// Request-line + header parse completing in the serial loop.
pub const STAGE_SERVE_REQ_PARSE: &str = "serve.req.parse";
/// Tier-1/tier-2 cache probe at admission (arg carries hit/miss).
pub const STAGE_SERVE_REQ_CACHE: &str = "serve.req.cache";
/// Handler render: request final byte to response completing service.
pub const STAGE_SERVE_REQ_RENDER: &str = "serve.req.render";
/// Response bytes flushed onto a connection transcript.
pub const STAGE_SERVE_REQ_WRITE: &str = "serve.req.write";
/// Request shed with 503 at the queue-full admission check.
pub const STAGE_SERVE_REQ_SHED: &str = "serve.req.shed";
/// Request evicted with 408 at the read deadline.
pub const STAGE_SERVE_REQ_EVICT: &str = "serve.req.evict";

/// Stages whose work is fanned out by `mx-par`'s `par_map`: their
/// exclusive time scales with threads, so serial-fraction accounting
/// (see `attrib`) excludes them from the Amdahl-serial pool.
pub const PARALLEL_STAGES: &[&str] = &[
    STAGE_DNS_LOOKUP,
    STAGE_NET_SCAN,
    STAGE_NET_SCAN_IP,
    STAGE_SMTP_SESSION,
    STAGE_OBSERVE_RESOLVE,
    STAGE_OBSERVE_SCAN,
    STAGE_OBSERVE_JOIN,
    STAGE_OBSERVE_ASSEMBLE,
    STAGE_INFER_CERTGROUP,
    STAGE_INFER_IPID,
    STAGE_INFER_MXID,
    STAGE_INFER_MISID,
    STAGE_INFER_DOMAINID,
];

/// Register the complete vocabulary — every metric with its exact
/// kind/class and every stage with its static parent — so snapshot
/// renders (notably the live `/metrics` endpoint) do not depend on
/// which call sites happened to run first in this process. Safe to
/// call repeatedly: registration is first-wins and the classes/parents
/// here are the same ones the call-site macros use.
pub fn preregister() {
    use crate::metrics::{Class, Counter, Gauge, Histogram};
    use crate::span::Stage;

    const STABLE_COUNTERS: &[&str] = &[
        DNS_CACHE_HITS,
        DNS_CACHE_NEGATIVE_HITS,
        DNS_QUERIES,
        DNS_RETRIES,
        DNS_BACKOFF_SIM_SECS,
        NET_SCAN_ATTEMPTS,
        NET_SCAN_BLOCKED,
        NET_SCAN_RECOVERED,
        NET_SCAN_EXHAUSTED,
        NET_SCAN_TLS_FAILED,
        NET_SCAN_BACKOFF_SIM_SECS,
        NET_SCAN_TARPIT_SIM_SECS,
        FAULT_SCAN_COINS,
        FAULT_SCAN_FIRED,
        FAULT_DNS_COINS,
        FAULT_DNS_FIRED,
        FAULT_SMTP_COINS,
        FAULT_SMTP_FIRED,
        FAULT_CONN_COINS,
        FAULT_CONN_FIRED,
        SMTP_SESSIONS,
        SMTP_BANNER_OK,
        SMTP_EHLO,
        SMTP_EHLO_OK,
        SMTP_STARTTLS,
        SMTP_STARTTLS_OK,
        SMTP_STARTTLS_REFUSED,
        SMTP_STARTTLS_FAILED,
        STORE_WRITE_EPOCHS,
        STORE_WRITE_ROWS,
        STORE_WRITE_DELTA_OPS,
        STORE_WRITE_BYTES,
        DELTA_EVENTS_APPLIED,
        DELTA_DOMAINS_DIRTY,
        DELTA_RERESOLVES,
        DELTA_RESCANS,
        DELTA_REUSE_HITS,
        DELTA_EPOCHS_APPENDED,
        SERVE_CONNS_ACCEPTED,
        SERVE_CONNS_REFUSED,
        SERVE_REQS_ACCEPTED,
        SERVE_REQS_SERVED,
        SERVE_REQS_ERRORED,
        SERVE_REQS_SHED,
        SERVE_REQS_EVICTED,
        OBS_TRACE_RECORDED,
    ];
    const PER_RUN_COUNTERS: &[&str] = &[
        PAR_MAP_PARALLEL,
        PAR_MAP_SERIAL,
        PAR_TASKS,
        LINT_LEX_CACHE_HITS,
        LINT_LEX_CACHE_MISSES,
        STORE_READ_OPENS,
        STORE_READ_LOOKUPS,
        STORE_READ_ROWS,
        STORE_READ_INDEX_QUERIES,
        STORE_READ_POSTINGS_SCANS,
        SERVE_CACHE_ROW_HITS,
        SERVE_CACHE_ROW_MISSES,
        SERVE_CACHE_JSON_HITS,
        SERVE_CACHE_JSON_MISSES,
        OBS_TRACE_DROPPED,
    ];
    const LATENCIES: &[&str] = &[
        SERVE_LATENCY_LOOKUP,
        SERVE_LATENCY_MARKET,
        SERVE_LATENCY_SERIES,
        SERVE_LATENCY_CHURN,
        SERVE_LATENCY_PROVIDERS,
        SERVE_LATENCY_DIFF,
        SERVE_LATENCY_HEALTHZ,
        SERVE_LATENCY_DEBUG,
    ];
    /// (stage, static parent) — must mirror the `stage!` call sites.
    const STAGES: &[(&str, Option<&str>)] = &[
        (STAGE_OBSERVE, None),
        (STAGE_OBSERVE_RESOLVE, Some(STAGE_OBSERVE)),
        (STAGE_OBSERVE_SCAN, Some(STAGE_OBSERVE)),
        (STAGE_OBSERVE_JOIN, Some(STAGE_OBSERVE)),
        (STAGE_OBSERVE_ASSEMBLE, Some(STAGE_OBSERVE)),
        (STAGE_DNS_LOOKUP, Some(STAGE_OBSERVE_RESOLVE)),
        (STAGE_NET_SCAN, Some(STAGE_OBSERVE_SCAN)),
        (STAGE_NET_SCAN_IP, Some(STAGE_NET_SCAN)),
        (STAGE_SMTP_SESSION, Some(STAGE_NET_SCAN_IP)),
        (STAGE_INFER, None),
        (STAGE_INFER_CERTGROUP, Some(STAGE_INFER)),
        (STAGE_INFER_IPID, Some(STAGE_INFER)),
        (STAGE_INFER_MXID, Some(STAGE_INFER)),
        (STAGE_INFER_MISID, Some(STAGE_INFER)),
        (STAGE_INFER_DOMAINID, Some(STAGE_INFER)),
        (STAGE_REPORT_COVERAGE, None),
        (STAGE_DELTA_BATCH, None),
        (STAGE_STORE_WRITE, None),
        (STAGE_STORE_READ, None),
        (STAGE_SERVE_TRACE, None),
        (STAGE_SERVE_REQ, Some(STAGE_SERVE_TRACE)),
        (STAGE_SERVE_REQ_PARSE, Some(STAGE_SERVE_REQ)),
        (STAGE_SERVE_REQ_CACHE, Some(STAGE_SERVE_REQ)),
        (STAGE_SERVE_REQ_RENDER, Some(STAGE_SERVE_REQ)),
        (STAGE_SERVE_REQ_WRITE, Some(STAGE_SERVE_REQ)),
        (STAGE_SERVE_REQ_SHED, Some(STAGE_SERVE_REQ)),
        (STAGE_SERVE_REQ_EVICT, Some(STAGE_SERVE_REQ)),
    ];

    for name in STABLE_COUNTERS {
        let _ = Counter::register(name, Class::Stable);
    }
    for name in PER_RUN_COUNTERS {
        let _ = Counter::register(name, Class::PerRun);
    }
    let _ = Gauge::register(PAR_WORKERS_MAX, Class::PerRun);
    let _ = Gauge::register(PAR_QUEUE_DEPTH_MAX, Class::PerRun);
    let _ = Histogram::register(
        NET_SCAN_ATTEMPTS_PER_IP,
        Class::Stable,
        NET_SCAN_ATTEMPTS_BOUNDS,
    );
    for name in LATENCIES {
        let _ = Histogram::register(name, Class::Stable, SERVE_LATENCY_BOUNDS);
    }
    for (name, parent) in STAGES {
        let _ = Stage::register(name, *parent);
    }
}
