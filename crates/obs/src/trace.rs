//! The structured trace-event timeline (`mx-obs-trace/1`).
//!
//! Metrics and stage totals answer *how much*; the trace answers
//! *when and in what shape*. Every instrumented site can append a
//! [`TraceEvent`] to a bounded per-shard ring buffer; a capture merges
//! the rings into one canonical multiset, sorted by a key built only
//! from deterministic fields, so the exported timeline obeys the same
//! discipline as the metric shards: bit-identical at any thread count
//! and across reruns of the same input.
//!
//! Determinism rules, mirroring [`crate::metrics::Class`]:
//!
//! - **Stable events** ([`EventKind::SimSpan`], [`EventKind::Charge`],
//!   [`EventKind::Instant`]) carry only caller-supplied deterministic
//!   fields: a sim-time stamp `t`, a sim duration `dur` and a tag
//!   `arg`, each a pure function of the input. They form the
//!   deterministic export.
//! - **Per-run events** ([`EventKind::Span`], volatile instants) carry
//!   monotonic host nanoseconds and exist for the Chrome-trace and
//!   flamegraph views; they never reach the deterministic export.
//!
//! The rings are bounded ([`set_capacity`]): overflow drops the
//! *oldest* event of the recording shard and counts it in the
//! `obs.trace.dropped` per-run counter, so `dropped + len(events) ==
//! recorded` reconciles exactly on every capture. The deterministic
//! export is guaranteed byte-identical across thread counts only while
//! no stable event has been dropped (which shard overflows first
//! depends on thread scheduling); gates size the rings accordingly and
//! [`TraceSnapshot::recorded_stable`] exposes the check.
//!
//! This module never reads a clock, the environment or a hash-ordered
//! container: host timestamps are computed by the span layer and
//! passed in as plain numbers, and the on/off gates live in the crate
//! root next to the metric gate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{self, JsonError, Value};
use crate::metrics::{Class, Counter};
use crate::{names, shard_index, SHARD_COUNT};

/// The trace exporter schema identifier.
pub const TRACE_SCHEMA: &str = "mx-obs-trace/1";

/// Default per-shard ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Hard bounds on [`set_capacity`] so a bad caller cannot disable the
/// ring bound or allocate unboundedly.
const MIN_RING_CAPACITY: usize = 16;
const MAX_RING_CAPACITY: usize = 1 << 20;

/// What shape of event a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A host-timed scope (from a span guard drop). Always per-run:
    /// its content is wall time.
    Span,
    /// A sim-timed scope with a caller-supplied deterministic stamp
    /// and duration (e.g. one served request in the serve kernel).
    SimSpan,
    /// A sim-cost charge recorded alongside `SimClock::charge` (e.g.
    /// retry backoff); `dur` is the charged amount.
    Charge,
    /// A point event.
    Instant,
}

impl EventKind {
    /// Stable label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::SimSpan => "sim_span",
            EventKind::Charge => "charge",
            EventKind::Instant => "instant",
        }
    }

    /// Canonical sort code (part of the export order contract).
    fn code(self) -> u8 {
        match self {
            EventKind::Span => 0,
            EventKind::SimSpan => 1,
            EventKind::Charge => 2,
            EventKind::Instant => 3,
        }
    }

    fn from_label(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "sim_span" => Some(EventKind::SimSpan),
            "charge" => Some(EventKind::Charge),
            "instant" => Some(EventKind::Instant),
            _ => None,
        }
    }
}

/// One recorded event. `t`, `dur` and `arg` are deterministic
/// (caller-supplied, pure functions of the input); `host_start_ns`,
/// `host_dur_ns` and `shard` are per-run and excluded from the
/// deterministic export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The stage this event belongs to (a `names::STAGE_*` constant).
    pub stage: &'static str,
    /// Event shape.
    pub kind: EventKind,
    /// Stable (deterministic export) or per-run.
    pub class: Class,
    /// Deterministic sim-time stamp in the recording site's own sim
    /// unit (ms in the serve kernel, 0 for pipeline charges).
    pub t: u64,
    /// Deterministic sim duration (same unit as `t`).
    pub dur: u64,
    /// Caller tag (endpoint/outcome packing, domain hash, IP). Kept
    /// below 2^48 so the JSON number round-trips exactly.
    pub arg: u64,
    /// Shard that recorded the event (per-run; Chrome `tid`).
    pub shard: u64,
    /// Monotonic host start, nanoseconds since the span epoch
    /// (per-run; 0 for sim-only events).
    pub host_start_ns: u64,
    /// Monotonic host duration in nanoseconds (per-run).
    pub host_dur_ns: u64,
}

impl TraceEvent {
    /// The canonical multiset order: built only from deterministic
    /// fields first, so the sorted stable subsequence is
    /// thread-invariant; per-run fields only break ties among
    /// volatile duplicates to keep full exports stable per run.
    fn canon_key(&self) -> (u64, &'static str, u8, u64, u64, u8, u64, u64, u64) {
        let class_code = match self.class {
            Class::Stable => 0u8,
            Class::PerRun => 1u8,
        };
        (
            self.t,
            self.stage,
            self.kind.code(),
            self.arg,
            self.dur,
            class_code,
            self.shard,
            self.host_start_ns,
            self.host_dur_ns,
        )
    }
}

/// One shard's bounded event ring plus its offered/dropped totals.
#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

fn rings() -> &'static [Mutex<Ring>; SHARD_COUNT] {
    static RINGS: OnceLock<[Mutex<Ring>; SHARD_COUNT]> = OnceLock::new();
    RINGS.get_or_init(|| std::array::from_fn(|_| Mutex::new(Ring::default())))
}

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Per-shard ring capacity currently in force.
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Set the per-shard ring capacity (clamped to a sane range). Applies
/// to subsequent records; existing rings shrink lazily as they record.
pub fn set_capacity(events_per_shard: usize) {
    let v = events_per_shard.clamp(MIN_RING_CAPACITY, MAX_RING_CAPACITY);
    CAPACITY.store(v, Ordering::Relaxed);
}

fn recorded_counter() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| Counter::register(names::OBS_TRACE_RECORDED, Class::Stable))
}

fn dropped_counter() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| Counter::register(names::OBS_TRACE_DROPPED, Class::PerRun))
}

/// Is event recording on right now? Both the metric gate and the trace
/// gate must be enabled; each is one relaxed load.
pub(crate) fn active() -> bool {
    crate::enabled() && crate::trace_enabled()
}

/// Append an event to the calling thread's shard ring, dropping the
/// oldest event of that ring on overflow. Call sites gate on
/// [`active`] themselves (the span layer does) so the disabled path
/// never constructs an event.
pub(crate) fn record(ev: TraceEvent) {
    if ev.class == Class::Stable {
        recorded_counter().incr();
    }
    let cap = capacity();
    let Some(slot) = rings().get(shard_index()) else {
        return;
    };
    let mut ring = slot.lock().unwrap_or_else(|e| e.into_inner());
    ring.recorded = ring.recorded.saturating_add(1);
    while ring.events.len() >= cap {
        ring.events.pop_front();
        ring.dropped = ring.dropped.saturating_add(1);
        dropped_counter().incr();
    }
    ring.events.push_back(ev);
}

/// Zero every ring and its totals, in place.
pub fn reset_all() {
    for slot in rings().iter() {
        let mut ring = slot.lock().unwrap_or_else(|e| e.into_inner());
        ring.events.clear();
        ring.recorded = 0;
        ring.dropped = 0;
    }
}

/// A 48-bit FNV-1a content tag for event args: a pure function of the
/// bytes, masked so the value round-trips exactly through an `f64`
/// JSON number.
pub fn tag64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h & 0x0000_ffff_ffff_ffff
}

/// A merged view of every ring: the canonical event multiset plus the
/// offered/dropped accounting it must reconcile with.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Every buffered event, in canonical order.
    pub events: Vec<TraceEvent>,
    /// Events offered to the rings since the last reset (all classes).
    pub recorded: u64,
    /// Stable-class events offered (the `obs.trace.recorded` counter).
    pub recorded_stable: u64,
    /// Events dropped by ring overflow (the `obs.trace.dropped`
    /// counter). `dropped + events.len() == recorded` always.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Merge and canonically sort every shard ring.
    pub fn capture() -> TraceSnapshot {
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut recorded = 0u64;
        let mut dropped = 0u64;
        for slot in rings().iter() {
            let ring = slot.lock().unwrap_or_else(|e| e.into_inner());
            events.extend(ring.events.iter().cloned());
            recorded = recorded.saturating_add(ring.recorded);
            dropped = dropped.saturating_add(ring.dropped);
        }
        events.sort_by(|a, b| a.canon_key().cmp(&b.canon_key()));
        let recorded_stable = events
            .iter()
            .filter(|e| e.class == Class::Stable)
            .count() as u64;
        // The buffered stable count can undercount offers if stable
        // events were dropped; report the counter's view, which cannot.
        let offered_stable = crate::metrics::counter_value(names::OBS_TRACE_RECORDED);
        TraceSnapshot {
            events,
            recorded,
            recorded_stable: offered_stable.max(recorded_stable),
            dropped,
        }
    }

    /// Stable events in canonical order, optionally only the last `n`.
    fn stable_tail(&self, last: Option<usize>) -> Vec<&TraceEvent> {
        let stable: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.class == Class::Stable)
            .collect();
        match last {
            Some(n) if n < stable.len() => {
                let skip = stable.len() - n;
                stable.into_iter().skip(skip).collect()
            }
            _ => stable,
        }
    }

    /// The deterministic export: stable events only, per-run fields
    /// (host time, shard) excluded, canonical order. Byte-identical
    /// across thread counts and reruns while no stable event has been
    /// dropped.
    pub fn deterministic_json(&self) -> String {
        self.deterministic_json_last(None)
    }

    /// Like [`Self::deterministic_json`], keeping only the last
    /// `last` events of the canonical order (the `/debug/trace?last=N`
    /// surface).
    pub fn deterministic_json_last(&self, last: Option<usize>) -> String {
        let events = self.stable_tail(last);
        let mut root = Value::obj();
        root.insert("schema", TRACE_SCHEMA.into());
        root.insert("deterministic", true.into());
        root.insert("recorded_stable", self.recorded_stable.into());
        let mut arr = Value::arr();
        for e in events {
            let mut o = Value::obj();
            o.insert("t", e.t.into());
            o.insert("stage", e.stage.into());
            o.insert("kind", e.kind.label().into());
            o.insert("arg", e.arg.into());
            o.insert("dur", e.dur.into());
            arr.push(o);
        }
        root.insert("events", arr);
        root.to_string_pretty()
    }

    /// The full export: every event with its class and per-run fields,
    /// plus the ring accounting. Stable within one run, per-run across
    /// runs (host time).
    pub fn full_json(&self) -> String {
        let mut root = Value::obj();
        root.insert("schema", TRACE_SCHEMA.into());
        root.insert("deterministic", false.into());
        root.insert("recorded", self.recorded.into());
        root.insert("recorded_stable", self.recorded_stable.into());
        root.insert("dropped", self.dropped.into());
        let mut arr = Value::arr();
        for e in &self.events {
            let mut o = Value::obj();
            o.insert("t", e.t.into());
            o.insert("stage", e.stage.into());
            o.insert("kind", e.kind.label().into());
            o.insert("class", e.class.label().into());
            o.insert("arg", e.arg.into());
            o.insert("dur", e.dur.into());
            o.insert("shard", e.shard.into());
            o.insert("host_start_ns", e.host_start_ns.into());
            o.insert("host_dur_ns", e.host_dur_ns.into());
            arr.push(o);
        }
        root.insert("events", arr);
        root.to_string_pretty()
    }

    /// Chrome Trace Event Format (load in `chrome://tracing` or
    /// Perfetto). Host-timed spans use their monotonic nanoseconds;
    /// sim-timed events place one sim tick per microsecond-millisecond
    /// pair (tick × 1000 µs), which keeps relative order readable.
    /// Per-run by nature.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for e in &self.events {
            let (ph, ts_us, dur_us) = match e.kind {
                EventKind::Span => (
                    "X",
                    e.host_start_ns as f64 / 1e3,
                    (e.host_dur_ns as f64 / 1e3).max(0.001),
                ),
                EventKind::SimSpan | EventKind::Charge => (
                    "X",
                    e.t as f64 * 1e3,
                    (e.dur as f64 * 1e3).max(0.001),
                ),
                EventKind::Instant => ("i", e.t as f64 * 1e3, 0.0),
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\
                 \"pid\":1,\"tid\":{}",
                e.stage,
                e.class.label(),
                e.shard.saturating_add(1),
            ));
            if ph == "X" {
                out.push_str(&format!(",\"dur\":{dur_us:.3}"));
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(
                ",\"args\":{{\"arg\":{},\"t\":{},\"dur\":{},\"kind\":\"{}\"}}}}",
                e.arg,
                e.t,
                e.dur,
                e.kind.label(),
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Why an exported trace document failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSchemaError {
    /// Not valid JSON.
    Parse(JsonError),
    /// Top level is not an object.
    NotAnObject,
    /// `schema` missing or not `mx-obs-trace/1`.
    WrongSchema,
    /// A required top-level field is missing or mistyped.
    MissingField(&'static str),
    /// The event at this index is malformed.
    BadEvent(usize),
    /// Events are not in canonical order at this index.
    EventsUnsorted(usize),
}

impl std::fmt::Display for TraceSchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSchemaError::Parse(e) => write!(f, "not valid JSON: {e}"),
            TraceSchemaError::NotAnObject => write!(f, "top level is not an object"),
            TraceSchemaError::WrongSchema => {
                write!(f, "schema field missing or not {TRACE_SCHEMA:?}")
            }
            TraceSchemaError::MissingField(k) => write!(f, "missing or mistyped field {k:?}"),
            TraceSchemaError::BadEvent(i) => write!(f, "event #{i} is malformed"),
            TraceSchemaError::EventsUnsorted(i) => {
                write!(f, "events out of canonical order at #{i}")
            }
        }
    }
}

impl std::error::Error for TraceSchemaError {}

/// Check an exported trace document (deterministic or full form)
/// against the `mx-obs-trace/1` schema: required fields present and
/// numeric, kinds from the closed set, events in canonical order.
pub fn validate_trace(text: &str) -> Result<(), TraceSchemaError> {
    let doc = json::parse(text).map_err(TraceSchemaError::Parse)?;
    if !matches!(doc, Value::Obj(_)) {
        return Err(TraceSchemaError::NotAnObject);
    }
    if doc.get("schema").and_then(Value::as_str) != Some(TRACE_SCHEMA) {
        return Err(TraceSchemaError::WrongSchema);
    }
    doc.get("recorded_stable")
        .and_then(Value::as_num)
        .ok_or(TraceSchemaError::MissingField("recorded_stable"))?;
    let events = doc
        .get("events")
        .and_then(Value::as_arr)
        .ok_or(TraceSchemaError::MissingField("events"))?;
    let mut prev: Option<(u64, String, u8, u64, u64)> = None;
    for (i, e) in events.iter().enumerate() {
        let num = |field: &'static str| -> Result<u64, TraceSchemaError> {
            let v = e
                .get(field)
                .and_then(Value::as_num)
                .ok_or(TraceSchemaError::BadEvent(i))?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(TraceSchemaError::BadEvent(i));
            }
            Ok(v as u64)
        };
        let t = num("t")?;
        let arg = num("arg")?;
        let dur = num("dur")?;
        let stage = e
            .get("stage")
            .and_then(Value::as_str)
            .ok_or(TraceSchemaError::BadEvent(i))?;
        let kind = e
            .get("kind")
            .and_then(Value::as_str)
            .and_then(EventKind::from_label)
            .ok_or(TraceSchemaError::BadEvent(i))?;
        let key = (t, stage.to_string(), kind.code(), arg, dur);
        if prev.as_ref().is_some_and(|p| *p > key) {
            return Err(TraceSchemaError::EventsUnsorted(i));
        }
        prev = Some(key);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stage: &'static str, t: u64, arg: u64) -> TraceEvent {
        TraceEvent {
            stage,
            kind: EventKind::Instant,
            class: Class::Stable,
            t,
            dur: 0,
            arg,
            shard: 0,
            host_start_ns: 0,
            host_dur_ns: 0,
        }
    }

    #[test]
    fn capture_sorts_canonically_and_reconciles() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::set_trace_enabled(true);
        crate::reset();
        record(ev("test.trace.b", 5, 1));
        record(ev("test.trace.a", 5, 2));
        record(ev("test.trace.a", 1, 3));
        let snap = TraceSnapshot::capture();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.recorded, 3);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.dropped + snap.events.len() as u64, snap.recorded);
        let keys: Vec<(u64, &str)> = snap.events.iter().map(|e| (e.t, e.stage)).collect();
        assert_eq!(
            keys,
            vec![(1, "test.trace.a"), (5, "test.trace.a"), (5, "test.trace.b")]
        );
        let det = snap.deterministic_json();
        validate_trace(&det).expect("deterministic form validates");
        validate_trace(&snap.full_json()).expect("full form validates");
        crate::set_trace_enabled(false);
        crate::set_enabled(false);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::set_trace_enabled(true);
        crate::reset();
        let keep = capacity();
        set_capacity(MIN_RING_CAPACITY);
        for i in 0..40u64 {
            record(ev("test.trace.overflow", i, 0));
        }
        let snap = TraceSnapshot::capture();
        assert_eq!(snap.events.len(), MIN_RING_CAPACITY);
        assert_eq!(snap.dropped, 40 - MIN_RING_CAPACITY as u64);
        assert_eq!(snap.dropped + snap.events.len() as u64, snap.recorded);
        // Oldest events went first: the survivors are the tail.
        assert_eq!(
            snap.events.first().map(|e| e.t),
            Some(40 - MIN_RING_CAPACITY as u64)
        );
        assert_eq!(
            crate::metrics::counter_value(names::OBS_TRACE_DROPPED),
            snap.dropped
        );
        set_capacity(keep);
        crate::set_trace_enabled(false);
        crate::set_enabled(false);
    }

    #[test]
    fn tag64_is_pure_and_bounded() {
        assert_eq!(tag64(b"example.com"), tag64(b"example.com"));
        assert_ne!(tag64(b"example.com"), tag64(b"example.org"));
        assert!(tag64(b"anything at all") < (1u64 << 48));
    }

    #[test]
    fn validator_rejects_drift() {
        let ok = "{\"schema\": \"mx-obs-trace/1\", \"recorded_stable\": 0, \"events\": []}";
        assert_eq!(validate_trace(ok), Ok(()));
        let wrong = "{\"schema\": \"mx-obs/1\", \"recorded_stable\": 0, \"events\": []}";
        assert_eq!(validate_trace(wrong), Err(TraceSchemaError::WrongSchema));
        let bad_kind = "{\"schema\": \"mx-obs-trace/1\", \"recorded_stable\": 1, \"events\": [\
             {\"t\": 0, \"stage\": \"x\", \"kind\": \"nope\", \"arg\": 0, \"dur\": 0}]}";
        assert_eq!(validate_trace(bad_kind), Err(TraceSchemaError::BadEvent(0)));
        let unsorted = "{\"schema\": \"mx-obs-trace/1\", \"recorded_stable\": 2, \"events\": [\
             {\"t\": 5, \"stage\": \"x\", \"kind\": \"instant\", \"arg\": 0, \"dur\": 0},\
             {\"t\": 1, \"stage\": \"x\", \"kind\": \"instant\", \"arg\": 0, \"dur\": 0}]}";
        assert_eq!(
            validate_trace(unsorted),
            Err(TraceSchemaError::EventsUnsorted(1))
        );
    }
}
