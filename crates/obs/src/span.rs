//! Stage spans: scoped timers over the pipeline's fixed stage tree.
//!
//! A [`Stage`] is registered once with a *static* parent name — the
//! resolve → scan → tls → infer → report cascade is known at compile
//! time, so the tree is part of the name table rather than something
//! reconstructed from runtime nesting (which would depend on thread
//! interleaving). Each stage accumulates three sharded totals:
//!
//! - **enters** — how many times the stage ran (deterministic);
//! - **sim_secs** — simulated seconds charged by the caller alongside
//!   its `SimClock::charge` calls (deterministic: the cost model is a
//!   pure function of the input);
//! - **host_nanos** — monotonic wall time measured by the
//!   [`SpanGuard`] (inherently per-run; excluded from the
//!   deterministic export).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::Class;
use crate::trace::{self, EventKind, TraceEvent};
use crate::{enabled, shard_index, SHARD_COUNT};

/// The process span epoch: host timestamps in trace events are
/// nanoseconds since the first one was taken, so Chrome traces start
/// near zero. All host-clock access in the crate lives in this module
/// (deliberately outside the lint's determinism scope); the trace
/// module only ever sees plain numbers.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic host nanoseconds since the process span epoch.
fn host_clock_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Slots per shard: enters, sim_secs, host_nanos.
const SLOTS: usize = 3;

const SLOT_ENTERS: usize = 0;
const SLOT_SIM: usize = 1;
const SLOT_HOST: usize = 2;

/// One registered stage: identity plus shard-major cells.
#[derive(Debug)]
pub struct StageEntry {
    name: &'static str,
    parent: Option<&'static str>,
    cells: Vec<AtomicU64>,
}

impl StageEntry {
    fn new(name: &'static str, parent: Option<&'static str>) -> StageEntry {
        StageEntry {
            name,
            parent,
            cells: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(SLOTS.saturating_mul(SHARD_COUNT))
                .collect(),
        }
    }

    fn add(&self, slot: usize, v: u64) {
        if let Some(c) = self.cells.get(shard_index() * SLOTS + slot) {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    fn sum_slot(&self, slot: usize) -> u64 {
        let mut total = 0u64;
        for shard in 0..SHARD_COUNT {
            if let Some(c) = self.cells.get(shard * SLOTS + slot) {
                total = total.wrapping_add(c.load(Ordering::Relaxed));
            }
        }
        total
    }
}

fn registry() -> &'static Mutex<Vec<Arc<StageEntry>>> {
    static REG: OnceLock<Mutex<Vec<Arc<StageEntry>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// A handle on a registered stage.
#[derive(Debug, Clone)]
pub struct Stage(Arc<StageEntry>);

impl Stage {
    /// Register (or re-attach to) the stage named `name`. First
    /// registration fixes the parent; later parents are ignored.
    pub fn register(name: &'static str, parent: Option<&'static str>) -> Stage {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        for e in reg.iter() {
            if e.name == name {
                return Stage(Arc::clone(e));
            }
        }
        let e = Arc::new(StageEntry::new(name, parent));
        reg.push(Arc::clone(&e));
        Stage(e)
    }

    /// Enter the stage: bumps the enter count and returns a guard that
    /// charges elapsed *host* time on drop. No-op while disabled.
    pub fn enter(&self) -> SpanGuard {
        self.enter_tagged(0, 0)
    }

    /// [`Self::enter`] with a deterministic sim stamp `t` and tag
    /// `arg` carried into the trace event the guard emits on drop
    /// (when tracing is on). The guard's event is host-timed and
    /// therefore per-run.
    pub fn enter_tagged(&self, t: u64, arg: u64) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        self.0.add(SLOT_ENTERS, 1);
        // `0` means "tracing was off at entry"; the first reading after
        // the epoch initializes can legitimately be 0ns, so floor at 1.
        let start_ns = if trace::active() {
            host_clock_ns().max(1)
        } else {
            0
        };
        SpanGuard(Some(GuardInner {
            entry: Arc::clone(&self.0),
            started: Instant::now(),
            start_ns,
            t,
            arg,
        }))
    }

    /// Charge `secs` of *simulated* time to the stage — call alongside
    /// the corresponding `SimClock::charge`. No-op while disabled.
    pub fn charge_sim(&self, secs: u64) {
        if !enabled() {
            return;
        }
        self.0.add(SLOT_SIM, secs);
    }

    /// [`Self::charge_sim`] that also emits a *stable* charge event at
    /// sim stamp `t` with tag `arg` (when tracing is on).
    pub fn charge_sim_tagged(&self, secs: u64, t: u64, arg: u64) {
        if !enabled() {
            return;
        }
        self.0.add(SLOT_SIM, secs);
        if trace::active() {
            trace::record(TraceEvent {
                stage: self.0.name,
                kind: EventKind::Charge,
                class: Class::Stable,
                t,
                dur: secs,
                arg,
                shard: shard_index() as u64,
                host_start_ns: 0,
                host_dur_ns: 0,
            });
        }
    }

    /// Record one sim-timed scope: bumps the enter count, charges
    /// `dur` sim units, and emits a *stable* `sim_span` event at sim
    /// stamp `t` (when tracing is on). The serve kernel uses this for
    /// per-request phases whose start and duration come from the
    /// simulated clock.
    pub fn span_sim(&self, t: u64, dur: u64, arg: u64) {
        if !enabled() {
            return;
        }
        self.0.add(SLOT_ENTERS, 1);
        self.0.add(SLOT_SIM, dur);
        if trace::active() {
            trace::record(TraceEvent {
                stage: self.0.name,
                kind: EventKind::SimSpan,
                class: Class::Stable,
                t,
                dur,
                arg,
                shard: shard_index() as u64,
                host_start_ns: 0,
                host_dur_ns: 0,
            });
        }
    }

    /// Emit a *stable* point event at sim stamp `t` with tag `arg`
    /// and bump the enter count (when tracing is on; the enter is
    /// counted whenever recording is enabled).
    pub fn instant(&self, t: u64, arg: u64) {
        self.instant_with_class(t, arg, Class::Stable);
    }

    /// A per-run point event: same shape as [`Self::instant`] but
    /// excluded from the deterministic export — for marks whose count
    /// or placement varies with scheduling.
    pub fn instant_volatile(&self, t: u64, arg: u64) {
        self.instant_with_class(t, arg, Class::PerRun);
    }

    fn instant_with_class(&self, t: u64, arg: u64, class: Class) {
        if !enabled() {
            return;
        }
        self.0.add(SLOT_ENTERS, 1);
        if trace::active() {
            trace::record(TraceEvent {
                stage: self.0.name,
                kind: EventKind::Instant,
                class,
                t,
                dur: 0,
                arg,
                shard: shard_index() as u64,
                host_start_ns: 0,
                host_dur_ns: 0,
            });
        }
    }
}

#[derive(Debug)]
struct GuardInner {
    entry: Arc<StageEntry>,
    started: Instant,
    /// Host ns since the span epoch when the guard was taken; 0 when
    /// tracing was off at entry (no event will be emitted).
    start_ns: u64,
    t: u64,
    arg: u64,
}

/// Scope guard returned by [`Stage::enter`]; its drop charges the
/// elapsed monotonic host time to the stage and, when tracing is on,
/// emits a per-run host-timed span event.
#[derive(Debug)]
pub struct SpanGuard(Option<GuardInner>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.0.take() {
            let nanos = u64::try_from(g.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            g.entry.add(SLOT_HOST, nanos);
            if g.start_ns > 0 && trace::active() {
                trace::record(TraceEvent {
                    stage: g.entry.name,
                    kind: EventKind::Span,
                    class: Class::PerRun,
                    t: g.t,
                    dur: 0,
                    arg: g.arg,
                    shard: shard_index() as u64,
                    host_start_ns: g.start_ns,
                    host_dur_ns: nanos,
                });
            }
        }
    }
}

/// One stage's identity and merged totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Static parent name, if any (resolved at dump time; an
    /// unregistered parent renders the stage as a root).
    pub parent: Option<&'static str>,
    /// Times entered.
    pub enters: u64,
    /// Simulated seconds charged.
    pub sim_secs: u64,
    /// Monotonic host nanoseconds accumulated by guards (per-run).
    pub host_nanos: u64,
}

/// Merge every registered stage, sorted by name.
pub fn snapshot() -> Vec<StageSnapshot> {
    let entries: Vec<Arc<StageEntry>> = {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.iter().map(Arc::clone).collect()
    };
    let mut out: Vec<StageSnapshot> = entries
        .iter()
        .map(|e| StageSnapshot {
            name: e.name,
            parent: e.parent,
            enters: e.sum_slot(SLOT_ENTERS),
            sim_secs: e.sum_slot(SLOT_SIM),
            host_nanos: e.sum_slot(SLOT_HOST),
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(b.name));
    out
}

/// The merged totals of the stage named `name`, if registered. For
/// tests and reconciliation checks.
pub fn stage_totals(name: &str) -> Option<StageSnapshot> {
    snapshot().into_iter().find(|s| s.name == name)
}

/// Zero every cell of every registered stage, in place.
pub fn reset_all() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for e in reg.iter() {
        for c in &e.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enters_and_sim_accumulate_host_time_moves() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        let s = Stage::register("test.span.stage", Some("test.span.parent"));
        {
            let _guard = s.enter();
            s.charge_sim(4);
        }
        {
            let _guard = s.enter();
            s.charge_sim(2);
        }
        let Some(t) = stage_totals("test.span.stage") else {
            panic!("stage missing");
        };
        assert_eq!(t.enters, 2);
        assert_eq!(t.sim_secs, 6);
        assert_eq!(t.parent, Some("test.span.parent"));
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_enter_is_a_noop() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        crate::reset();
        let s = Stage::register("test.span.disabled", None);
        {
            let _guard = s.enter();
            s.charge_sim(10);
        }
        let Some(t) = stage_totals("test.span.disabled") else {
            panic!("stage missing");
        };
        assert_eq!((t.enters, t.sim_secs, t.host_nanos), (0, 0, 0));
    }

    #[test]
    fn first_parent_wins() {
        let _g = crate::test_guard();
        let a = Stage::register("test.span.dupparent", Some("p1"));
        let b = Stage::register("test.span.dupparent", Some("p2"));
        assert_eq!(a.0.parent, Some("p1"));
        assert_eq!(b.0.parent, Some("p1"));
    }
}
