//! Snapshot capture and the two exporters.
//!
//! [`Snapshot::capture`] merges every registered metric and stage.
//! [`Snapshot::deterministic_json`] renders the schema-versioned form
//! the CI gate diffs: per-run metrics and host-time totals are
//! excluded, so the bytes are identical at any thread count on the
//! same seed. [`Snapshot::full_json`] includes everything, and
//! [`Snapshot::human_dump`] renders the stage tree plus a metrics
//! table for terminals. [`validate_snapshot`] re-parses an exported
//! document and checks it against the `mx-obs/1` schema.

use crate::json::{self, JsonError, Value};
use crate::metrics::{self, Class, MetricData, MetricSnapshot};
use crate::span::{self, StageSnapshot};

/// The exporter schema identifier carried in every snapshot.
pub const SCHEMA: &str = "mx-obs/1";

/// Maximum stage-tree depth the human dump renders; deeper chains are
/// flattened at the bound (the registered tree is 3 levels).
const MAX_TREE_DEPTH: usize = 16;

/// A merged view of every registered metric and stage, name-sorted.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All metrics (stable and per-run).
    pub metrics: Vec<MetricSnapshot>,
    /// All stages.
    pub stages: Vec<StageSnapshot>,
}

impl Snapshot {
    /// Merge the current state of the registries.
    pub fn capture() -> Snapshot {
        Snapshot {
            metrics: metrics::snapshot(),
            stages: span::snapshot(),
        }
    }

    /// The deterministic export: stable metrics only, stages without
    /// host time. Byte-identical across thread counts and repeat runs
    /// on the same input.
    pub fn deterministic_json(&self) -> String {
        self.render(false).to_string_pretty()
    }

    /// The full export: adds per-run metrics (tagged with their
    /// class) and per-stage host nanoseconds.
    pub fn full_json(&self) -> String {
        self.render(true).to_string_pretty()
    }

    fn render(&self, full: bool) -> Value {
        let mut root = Value::obj();
        root.insert("schema", SCHEMA.into());
        root.insert("deterministic", (!full).into());
        let mut marr = Value::arr();
        for m in &self.metrics {
            if !full && m.class == Class::PerRun {
                continue;
            }
            let mut o = Value::obj();
            o.insert("name", m.name.into());
            o.insert("kind", m.kind.label().into());
            if full {
                o.insert("class", m.class.label().into());
            }
            match &m.data {
                MetricData::Counter(v) | MetricData::Gauge(v) => {
                    o.insert("value", (*v).into());
                }
                MetricData::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    let mut ba = Value::arr();
                    for b in bounds {
                        ba.push((*b).into());
                    }
                    let mut ka = Value::arr();
                    for k in buckets {
                        ka.push((*k).into());
                    }
                    o.insert("bounds", ba);
                    o.insert("buckets", ka);
                    o.insert("sum", (*sum).into());
                    o.insert("count", (*count).into());
                }
            }
            marr.push(o);
        }
        root.insert("metrics", marr);
        let mut sarr = Value::arr();
        for s in &self.stages {
            let mut o = Value::obj();
            o.insert("name", s.name.into());
            if let Some(p) = s.parent {
                o.insert("parent", p.into());
            }
            o.insert("enters", s.enters.into());
            o.insert("sim_secs", s.sim_secs.into());
            if full {
                o.insert("host_nanos", s.host_nanos.into());
            }
            sarr.push(o);
        }
        root.insert("stages", sarr);
        root
    }

    /// Prometheus text exposition of the *stable* metrics plus the
    /// deterministic stage totals. Names have dots mapped to
    /// underscores and an `mx_` prefix; histograms render cumulative
    /// `_bucket{le=...}` series. Only deterministic data appears, so
    /// the bytes are identical at any thread count — this is the body
    /// the serve `/metrics` endpoint returns.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            if m.class == Class::PerRun {
                continue;
            }
            let name = prom_name(m.name);
            match &m.data {
                MetricData::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricData::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricData::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (i, c) in buckets.iter().enumerate() {
                        cum = cum.saturating_add(*c);
                        match bounds.get(i) {
                            Some(b) => out.push_str(&format!(
                                "{name}_bucket{{le=\"{b}\"}} {cum}\n"
                            )),
                            None => out.push_str(&format!(
                                "{name}_bucket{{le=\"+Inf\"}} {cum}\n"
                            )),
                        }
                    }
                    out.push_str(&format!("{name}_sum {sum}\n{name}_count {count}\n"));
                }
            }
        }
        out.push_str("# TYPE mx_stage_enters counter\n");
        for s in &self.stages {
            out.push_str(&format!(
                "mx_stage_enters{{stage=\"{}\"}} {}\n",
                s.name, s.enters
            ));
        }
        out.push_str("# TYPE mx_stage_sim_seconds counter\n");
        for s in &self.stages {
            out.push_str(&format!(
                "mx_stage_sim_seconds{{stage=\"{}\"}} {}\n",
                s.name, s.sim_secs
            ));
        }
        out
    }

    /// A terminal-friendly dump: the stage tree (with host time) then
    /// a metrics table, per-run entries marked `~`.
    pub fn human_dump(&self) -> String {
        let mut out = String::new();
        out.push_str("mx-obs snapshot (schema ");
        out.push_str(SCHEMA);
        out.push_str(")\n\nstages:\n");
        // Roots are stages whose parent is unset or unregistered.
        let known: Vec<&str> = self.stages.iter().map(|s| s.name).collect();
        for (i, s) in self.stages.iter().enumerate() {
            let is_root = match s.parent {
                None => true,
                Some(p) => !known.contains(&p),
            };
            if is_root {
                self.dump_stage(&mut out, i, 0);
            }
        }
        out.push_str("\nmetrics:\n");
        for m in &self.metrics {
            let mark = if m.class == Class::PerRun { "~" } else { " " };
            let line = match &m.data {
                MetricData::Counter(v) | MetricData::Gauge(v) => {
                    format!("{mark} {:<34} {:<9} {v}\n", m.name, m.kind.label())
                }
                MetricData::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    let cells: Vec<String> = buckets
                        .iter()
                        .enumerate()
                        .map(|(i, c)| match bounds.get(i) {
                            Some(b) => format!("<={b}:{c}"),
                            None => format!(">:{c}"),
                        })
                        .collect();
                    format!(
                        "{mark} {:<34} {:<9} count={count} sum={sum} [{}]\n",
                        m.name,
                        m.kind.label(),
                        cells.join(" ")
                    )
                }
            };
            out.push_str(&line);
        }
        out
    }

    fn dump_stage(&self, out: &mut String, idx: usize, depth: usize) {
        let Some(s) = self.stages.get(idx) else {
            return;
        };
        let indent = "  ".repeat(depth.min(MAX_TREE_DEPTH));
        let label = format!("{indent}{}", s.name);
        out.push_str(&format!(
            "  {label:<36} enters={:<6} sim={}s host={}\n",
            s.enters,
            s.sim_secs,
            format_host(s.host_nanos)
        ));
        if depth >= MAX_TREE_DEPTH {
            return;
        }
        for (i, child) in self.stages.iter().enumerate() {
            if child.parent == Some(s.name) {
                self.dump_stage(out, i, depth + 1);
            }
        }
    }
}

/// Map a dotted metric name to Prometheus form: `mx_` prefix, dots to
/// underscores, anything outside `[a-zA-Z0-9_]` to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::from("mx_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render host nanoseconds with a unit a human can read.
fn format_host(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", n / 1.0e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", n / 1.0e6)
    } else {
        format!("{:.2}s", n / 1.0e9)
    }
}

/// Why an exported document failed schema validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaError {
    /// The document is not valid JSON.
    Parse(JsonError),
    /// The top level is not an object.
    NotAnObject,
    /// The `schema` field is missing or not `mx-obs/1`.
    WrongSchema,
    /// A required top-level field is missing or mistyped.
    MissingField(&'static str),
    /// The metric at this index is malformed.
    BadMetric(usize),
    /// Metric names are not strictly increasing at this index.
    MetricsUnsorted(usize),
    /// The stage at this index is malformed.
    BadStage(usize),
    /// Stage names are not strictly increasing at this index.
    StagesUnsorted(usize),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Parse(e) => write!(f, "not valid JSON: {e}"),
            SchemaError::NotAnObject => write!(f, "top level is not an object"),
            SchemaError::WrongSchema => write!(f, "schema field missing or not {SCHEMA:?}"),
            SchemaError::MissingField(k) => write!(f, "missing or mistyped field {k:?}"),
            SchemaError::BadMetric(i) => write!(f, "metric #{i} is malformed"),
            SchemaError::MetricsUnsorted(i) => write!(f, "metric names unsorted at #{i}"),
            SchemaError::BadStage(i) => write!(f, "stage #{i} is malformed"),
            SchemaError::StagesUnsorted(i) => write!(f, "stage names unsorted at #{i}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Check an exported document against the `mx-obs/1` schema. Accepts
/// both the deterministic and the full form (extra fields like
/// `class`/`host_nanos` are allowed; required ones are not optional).
pub fn validate_snapshot(text: &str) -> Result<(), SchemaError> {
    let doc = json::parse(text).map_err(SchemaError::Parse)?;
    if !matches!(doc, Value::Obj(_)) {
        return Err(SchemaError::NotAnObject);
    }
    if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err(SchemaError::WrongSchema);
    }
    let metrics = doc
        .get("metrics")
        .and_then(Value::as_arr)
        .ok_or(SchemaError::MissingField("metrics"))?;
    let mut prev_name: Option<&str> = None;
    for (i, m) in metrics.iter().enumerate() {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or(SchemaError::BadMetric(i))?;
        if prev_name.is_some_and(|p| p >= name) {
            return Err(SchemaError::MetricsUnsorted(i));
        }
        prev_name = Some(name);
        let kind = m
            .get("kind")
            .and_then(Value::as_str)
            .ok_or(SchemaError::BadMetric(i))?;
        match kind {
            "counter" | "gauge" => {
                m.get("value")
                    .and_then(Value::as_num)
                    .ok_or(SchemaError::BadMetric(i))?;
            }
            "histogram" => {
                let bounds = m
                    .get("bounds")
                    .and_then(Value::as_arr)
                    .ok_or(SchemaError::BadMetric(i))?;
                let buckets = m
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or(SchemaError::BadMetric(i))?;
                let numeric = |vals: &[Value]| vals.iter().all(|v| v.as_num().is_some());
                if buckets.len() != bounds.len() + 1 || !numeric(bounds) || !numeric(buckets) {
                    return Err(SchemaError::BadMetric(i));
                }
                m.get("sum")
                    .and_then(Value::as_num)
                    .ok_or(SchemaError::BadMetric(i))?;
                m.get("count")
                    .and_then(Value::as_num)
                    .ok_or(SchemaError::BadMetric(i))?;
            }
            _ => return Err(SchemaError::BadMetric(i)),
        }
    }
    let stages = doc
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or(SchemaError::MissingField("stages"))?;
    let mut prev_stage: Option<&str> = None;
    for (i, s) in stages.iter().enumerate() {
        let name = s
            .get("name")
            .and_then(Value::as_str)
            .ok_or(SchemaError::BadStage(i))?;
        if prev_stage.is_some_and(|p| p >= name) {
            return Err(SchemaError::StagesUnsorted(i));
        }
        prev_stage = Some(name);
        if let Some(p) = s.get("parent") {
            if p.as_str().is_none() {
                return Err(SchemaError::BadStage(i));
            }
        }
        for field in ["enters", "sim_secs"] {
            s.get(field)
                .and_then(Value::as_num)
                .ok_or(SchemaError::BadStage(i))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Histogram};
    use crate::span::Stage;

    #[test]
    fn exports_validate_and_deterministic_excludes_per_run() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        Counter::register("test.export.stable", Class::Stable).add(3);
        Counter::register("test.export.volatile", Class::PerRun).add(9);
        static BOUNDS: &[u64] = &[2, 8];
        Histogram::register("test.export.hist", Class::Stable, BOUNDS).observe(5);
        let st = Stage::register("test.export.stage", None);
        {
            let _e = st.enter();
            st.charge_sim(7);
        }
        let snap = Snapshot::capture();
        let det = snap.deterministic_json();
        let full = snap.full_json();
        validate_snapshot(&det).expect("deterministic form validates");
        validate_snapshot(&full).expect("full form validates");
        assert!(det.contains("test.export.stable"));
        assert!(!det.contains("test.export.volatile"), "per-run excluded");
        assert!(!det.contains("host_nanos"), "host time excluded");
        assert!(full.contains("test.export.volatile"));
        assert!(full.contains("host_nanos"));
        crate::set_enabled(false);
    }

    #[test]
    fn human_dump_renders_tree_and_marks_per_run() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        Counter::register("test.dump.volatile", Class::PerRun).add(1);
        let root = Stage::register("test.dump.root", None);
        let child = Stage::register("test.dump.root.child", Some("test.dump.root"));
        drop(root.enter());
        drop(child.enter());
        let text = Snapshot::capture().human_dump();
        assert!(text.contains("test.dump.root"));
        assert!(text.contains("  test.dump.root.child"), "{text}");
        assert!(text.contains("~ test.dump.volatile"), "{text}");
        crate::set_enabled(false);
    }

    #[test]
    fn prometheus_text_renders_stable_only() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        Counter::register("test.prom.stable", Class::Stable).add(4);
        Counter::register("test.prom.volatile", Class::PerRun).add(9);
        static BOUNDS: &[u64] = &[2, 8];
        let h = Histogram::register("test.prom.hist", Class::Stable, BOUNDS);
        h.observe(1);
        h.observe(5);
        h.observe(100);
        let st = Stage::register("test.prom.stage", None);
        st.charge_sim(6);
        let text = Snapshot::capture().prometheus_text();
        assert!(text.contains("# TYPE mx_test_prom_stable counter"));
        assert!(text.contains("mx_test_prom_stable 4"));
        assert!(!text.contains("test_prom_volatile"), "per-run excluded");
        assert!(text.contains("mx_test_prom_hist_bucket{le=\"2\"} 1"));
        assert!(text.contains("mx_test_prom_hist_bucket{le=\"8\"} 2"), "cumulative");
        assert!(text.contains("mx_test_prom_hist_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mx_test_prom_hist_sum 106"));
        assert!(text.contains("mx_test_prom_hist_count 3"));
        assert!(text.contains("mx_stage_sim_seconds{stage=\"test.prom.stage\"} 6"));
        crate::set_enabled(false);
    }

    #[test]
    fn validator_rejects_drift() {
        let wrong_schema = "{\"schema\": \"mx-obs/0\", \"metrics\": [], \"stages\": []}";
        assert_eq!(validate_snapshot(wrong_schema), Err(SchemaError::WrongSchema));
        let no_stages = "{\"schema\": \"mx-obs/1\", \"metrics\": []}";
        assert_eq!(
            validate_snapshot(no_stages),
            Err(SchemaError::MissingField("stages"))
        );
        let bad_metric =
            "{\"schema\": \"mx-obs/1\", \"metrics\": [{\"name\": \"a\"}], \"stages\": []}";
        assert_eq!(validate_snapshot(bad_metric), Err(SchemaError::BadMetric(0)));
        let unsorted = "{\"schema\": \"mx-obs/1\", \"metrics\": [\
             {\"name\": \"b\", \"kind\": \"counter\", \"value\": 1},\
             {\"name\": \"a\", \"kind\": \"counter\", \"value\": 1}], \"stages\": []}";
        assert_eq!(
            validate_snapshot(unsorted),
            Err(SchemaError::MetricsUnsorted(1))
        );
        assert!(matches!(
            validate_snapshot("not json"),
            Err(SchemaError::Parse(_))
        ));
    }
}
