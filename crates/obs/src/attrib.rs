//! Critical-path attribution over the stage tree (`mx-obs-attrib/1`).
//!
//! The span layer keeps three totals per stage (enters, sim seconds,
//! host nanoseconds) against a *static* parent tree. This module turns
//! those totals into the numbers an operator actually asks for:
//!
//! - **exclusive vs inclusive time** per stage. Sim charges are
//!   *leaf-attributed* — a stage's `sim_secs` is its own cost, so
//!   `sim_exclusive = sim_secs` and inclusive is the subtree sum.
//!   Host guards *bracket* their children on the same thread, so
//!   `host_inclusive = host_nanos` and exclusive subtracts the
//!   children (clamped at zero: parallel children can overlap the
//!   parent bracket and legitimately sum past it).
//! - **serial fraction**: the share of exclusive time spent in stages
//!   that are *not* fanned out by `par_map`
//!   ([`crate::names::PARALLEL_STAGES`]) — the Amdahl ceiling on any
//!   thread-scaling win.
//! - **critical path**: the greedy max-inclusive descent from the
//!   heaviest root, naming where the time concentrates.
//!
//! Everything derived from sim totals is deterministic and appears in
//! [`Attribution::deterministic_json`]; host-derived numbers are
//! per-run and only appear in the full/human renders. Tree walks are
//! depth-bounded by [`MAX_TREE_DEPTH`] like the exporter's dump —
//! no unbounded recursion on registry contents.

use crate::json::Value;
use crate::names;
use crate::span::{self, StageSnapshot};

/// The attribution exporter schema identifier.
pub const ATTRIB_SCHEMA: &str = "mx-obs-attrib/1";

/// Maximum stage-tree depth honoured by parent-chain walks; deeper
/// (or cyclic) chains are treated as rooted at the bound.
pub const MAX_TREE_DEPTH: usize = 16;

/// One stage's attributed totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttribRow {
    /// Stage name.
    pub stage: &'static str,
    /// Effective parent: the registered parent if it exists in the
    /// snapshot, otherwise `None` (the stage renders as a root).
    pub parent: Option<&'static str>,
    /// Depth below its root (0 for roots), bounded by
    /// [`MAX_TREE_DEPTH`].
    pub depth: usize,
    /// Times entered.
    pub enters: u64,
    /// Own simulated seconds (sim charges are leaf-attributed).
    pub sim_exclusive: u64,
    /// Subtree simulated seconds.
    pub sim_inclusive: u64,
    /// Host nanoseconds net of children, clamped at zero (per-run).
    pub host_exclusive_ns: u64,
    /// Own host nanoseconds — guards bracket children (per-run).
    pub host_inclusive_ns: u64,
    /// Is this stage fanned out by `par_map`? Serial-fraction
    /// accounting excludes parallel stages' exclusive time.
    pub parallel: bool,
}

/// The full attribution: per-stage rows plus the derived aggregates.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Per-stage rows, sorted by stage name.
    pub rows: Vec<AttribRow>,
    /// Total exclusive sim seconds (= the span layer's sim total).
    pub total_sim: u64,
    /// Total exclusive host nanoseconds (per-run).
    pub total_host_ns: u64,
    /// Exclusive sim seconds in non-parallel stages.
    pub serial_sim: u64,
    /// Exclusive host nanoseconds in non-parallel stages (per-run).
    pub serial_host_ns: u64,
    /// Greedy max-inclusive sim descent: (stage, sim_inclusive).
    pub critical_path_sim: Vec<(&'static str, u64)>,
    /// Greedy max-inclusive host descent (per-run).
    pub critical_path_host: Vec<(&'static str, u64)>,
}

/// Find `name` in the name-sorted row slice.
fn find(rows: &[AttribRow], name: &str) -> Option<usize> {
    rows.binary_search_by(|r| r.stage.cmp(name)).ok()
}

impl Attribution {
    /// Attribute the current span snapshot.
    pub fn capture() -> Attribution {
        Attribution::from_stages(&span::snapshot())
    }

    /// Attribute an explicit stage snapshot (for tests and offline
    /// analysis of exported data).
    pub fn from_stages(stages: &[StageSnapshot]) -> Attribution {
        let mut rows: Vec<AttribRow> = stages
            .iter()
            .map(|s| AttribRow {
                stage: s.name,
                parent: s.parent,
                depth: 0,
                enters: s.enters,
                sim_exclusive: s.sim_secs,
                sim_inclusive: s.sim_secs,
                host_exclusive_ns: s.host_nanos,
                host_inclusive_ns: s.host_nanos,
                parallel: names::PARALLEL_STAGES.contains(&s.name),
            })
            .collect();
        rows.sort_by(|a, b| a.stage.cmp(b.stage));

        // Resolve parents: a parent absent from the snapshot roots the
        // stage, matching the exporter's dump tree. Then fix depths by
        // walking the (acyclic-by-bound) parent chain.
        let stage_names: Vec<&'static str> = rows.iter().map(|r| r.stage).collect();
        let present = |name: &str| stage_names.binary_search_by(|s| (*s).cmp(name)).is_ok();
        for r in rows.iter_mut() {
            r.parent = r.parent.filter(|p| present(p));
        }
        let parents: Vec<Option<&'static str>> = rows.iter().map(|r| r.parent).collect();
        let parent_of = |name: &str| -> Option<&'static str> {
            stage_names
                .binary_search_by(|s| (*s).cmp(name))
                .ok()
                .and_then(|j| parents.get(j).copied().flatten())
        };
        for r in rows.iter_mut() {
            let mut depth = 0usize;
            let mut at = r.parent;
            while let Some(p) = at {
                if depth >= MAX_TREE_DEPTH {
                    break;
                }
                depth += 1;
                at = parent_of(p);
            }
            r.depth = depth;
        }

        // Deepest-first accumulation turns own totals into inclusive
        // subtree totals without recursion: every child is folded into
        // its parent exactly once.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| match (rows.get(a), rows.get(b)) {
            (Some(ra), Some(rb)) => rb.depth.cmp(&ra.depth).then(ra.stage.cmp(rb.stage)),
            _ => core::cmp::Ordering::Equal,
        });
        for &i in &order {
            let Some(row) = rows.get(i) else { continue };
            let Some(parent) = row.parent else { continue };
            let (sim, host) = (row.sim_inclusive, row.host_inclusive_ns);
            let j = find(&rows, parent);
            if let Some(pr) = j.and_then(|j| rows.get_mut(j)) {
                pr.sim_inclusive = pr.sim_inclusive.saturating_add(sim);
                pr.host_exclusive_ns = pr.host_exclusive_ns.saturating_sub(host);
            }
        }
        // host_inclusive started as the guard total, which already
        // brackets children; only exclusive needed the subtraction.
        // sim_inclusive accumulated bottom-up above; sim_exclusive is
        // untouched (leaf-attributed charges).

        let mut total_sim = 0u64;
        let mut total_host = 0u64;
        let mut serial_sim = 0u64;
        let mut serial_host = 0u64;
        for r in &rows {
            total_sim = total_sim.saturating_add(r.sim_exclusive);
            total_host = total_host.saturating_add(r.host_exclusive_ns);
            if !r.parallel {
                serial_sim = serial_sim.saturating_add(r.sim_exclusive);
                serial_host = serial_host.saturating_add(r.host_exclusive_ns);
            }
        }

        let critical_path_sim = critical_path(&rows, |r| r.sim_inclusive);
        let critical_path_host = critical_path(&rows, |r| r.host_inclusive_ns);

        Attribution {
            rows,
            total_sim,
            total_host_ns: total_host,
            serial_sim,
            serial_host_ns: serial_host,
            critical_path_sim,
            critical_path_host,
        }
    }

    /// Share of exclusive sim time in non-parallel stages (0 when no
    /// sim time was charged). Deterministic.
    pub fn serial_fraction_sim(&self) -> f64 {
        if self.total_sim == 0 {
            return 0.0;
        }
        self.serial_sim as f64 / self.total_sim as f64
    }

    /// Share of exclusive host time in non-parallel stages (per-run).
    pub fn serial_fraction_host(&self) -> f64 {
        if self.total_host_ns == 0 {
            return 0.0;
        }
        self.serial_host_ns as f64 / self.total_host_ns as f64
    }

    /// Amdahl ceiling implied by the sim serial fraction: `1/s`, or
    /// `None` when no time is serial (unbounded).
    pub fn amdahl_max_speedup(&self) -> Option<f64> {
        let s = self.serial_fraction_sim();
        if s > 0.0 {
            Some(1.0 / s)
        } else {
            None
        }
    }

    fn rows_json(&self, full: bool) -> Value {
        let mut arr = Value::arr();
        for r in &self.rows {
            let mut o = Value::obj();
            o.insert("stage", r.stage.into());
            match r.parent {
                Some(p) => o.insert("parent", p.into()),
                None => o.insert("parent", Value::Null),
            }
            o.insert("depth", r.depth.into());
            o.insert("enters", r.enters.into());
            o.insert("sim_exclusive", r.sim_exclusive.into());
            o.insert("sim_inclusive", r.sim_inclusive.into());
            o.insert("parallel", r.parallel.into());
            if full {
                o.insert("host_exclusive_ns", r.host_exclusive_ns.into());
                o.insert("host_inclusive_ns", r.host_inclusive_ns.into());
            }
            arr.push(o);
        }
        arr
    }

    fn path_json(path: &[(&'static str, u64)]) -> Value {
        let mut arr = Value::arr();
        for (stage, v) in path {
            let mut o = Value::obj();
            o.insert("stage", (*stage).into());
            o.insert("inclusive", (*v).into());
            arr.push(o);
        }
        arr
    }

    /// The deterministic export: sim-derived numbers only. Byte-
    /// identical across thread counts and reruns for the same input.
    pub fn deterministic_json(&self) -> String {
        let mut root = Value::obj();
        root.insert("schema", ATTRIB_SCHEMA.into());
        root.insert("deterministic", true.into());
        root.insert("total_sim_secs", self.total_sim.into());
        root.insert("serial_sim_secs", self.serial_sim.into());
        root.insert("serial_fraction_sim", self.serial_fraction_sim().into());
        match self.amdahl_max_speedup() {
            Some(v) => root.insert("amdahl_max_speedup", v.into()),
            None => root.insert("amdahl_max_speedup", Value::Null),
        }
        root.insert("critical_path_sim", Self::path_json(&self.critical_path_sim));
        root.insert("stages", self.rows_json(false));
        root.to_string_pretty()
    }

    /// The full export: deterministic fields plus per-run host-time
    /// attribution.
    pub fn full_json(&self) -> String {
        let mut root = Value::obj();
        root.insert("schema", ATTRIB_SCHEMA.into());
        root.insert("deterministic", false.into());
        root.insert("total_sim_secs", self.total_sim.into());
        root.insert("serial_sim_secs", self.serial_sim.into());
        root.insert("serial_fraction_sim", self.serial_fraction_sim().into());
        root.insert("total_host_ns", self.total_host_ns.into());
        root.insert("serial_host_ns", self.serial_host_ns.into());
        root.insert("serial_fraction_host", self.serial_fraction_host().into());
        match self.amdahl_max_speedup() {
            Some(v) => root.insert("amdahl_max_speedup", v.into()),
            None => root.insert("amdahl_max_speedup", Value::Null),
        }
        root.insert("critical_path_sim", Self::path_json(&self.critical_path_sim));
        root.insert(
            "critical_path_host",
            Self::path_json(&self.critical_path_host),
        );
        root.insert("stages", self.rows_json(true));
        root.to_string_pretty()
    }

    /// A terminal table naming the top serial bottlenecks: stages
    /// sorted by exclusive host time (falling back to sim when no host
    /// time was recorded), serial stages marked.
    pub fn human_table(&self) -> String {
        let by_host = self.total_host_ns > 0;
        let key = |r: &AttribRow| {
            if by_host {
                r.host_exclusive_ns
            } else {
                r.sim_exclusive
            }
        };
        let mut idx: Vec<&AttribRow> = self.rows.iter().collect();
        idx.sort_by(|ra, rb| key(rb).cmp(&key(ra)).then(ra.stage.cmp(rb.stage)));
        let mut out = String::new();
        out.push_str(&format!(
            "attribution: serial fraction {:.1}% (sim){}{}\n",
            self.serial_fraction_sim() * 100.0,
            if by_host {
                format!(", {:.1}% (host)", self.serial_fraction_host() * 100.0)
            } else {
                String::new()
            },
            match self.amdahl_max_speedup() {
                Some(v) => format!(" — Amdahl ceiling {v:.1}x"),
                None => String::new(),
            },
        ));
        out.push_str(&format!(
            "{:<22} {:>8} {:>10} {:>10} {:>12} {:>12}  {}\n",
            "stage", "enters", "sim excl", "sim incl", "host excl ms", "host incl ms", "mode"
        ));
        for &r in &idx {
            if r.enters == 0 && r.sim_exclusive == 0 && r.host_exclusive_ns == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<22} {:>8} {:>10} {:>10} {:>12.2} {:>12.2}  {}\n",
                r.stage,
                r.enters,
                r.sim_exclusive,
                r.sim_inclusive,
                r.host_exclusive_ns as f64 / 1e6,
                r.host_inclusive_ns as f64 / 1e6,
                if r.parallel { "parallel" } else { "serial" },
            ));
        }
        let path = if by_host {
            &self.critical_path_host
        } else {
            &self.critical_path_sim
        };
        if !path.is_empty() {
            let names: Vec<&str> = path.iter().map(|(s, _)| *s).collect();
            out.push_str(&format!("critical path: {}\n", names.join(" -> ")));
        }
        out
    }

    /// Folded-stacks text for flamegraph tooling: one
    /// `root;child;leaf value` line per stage with nonzero exclusive
    /// time, sorted. `host` selects host-µs values (per-run) over
    /// deterministic sim seconds.
    pub fn folded_stacks(&self, host: bool) -> String {
        let mut lines: Vec<String> = Vec::new();
        for r in &self.rows {
            let value = if host {
                r.host_exclusive_ns / 1_000
            } else {
                r.sim_exclusive
            };
            if value == 0 {
                continue;
            }
            // Build root→leaf chain by walking parents, depth-bounded.
            let mut chain = vec![r.stage];
            let mut at = r.parent;
            let mut hops = 0usize;
            while let Some(p) = at {
                if hops >= MAX_TREE_DEPTH {
                    break;
                }
                chain.push(p);
                hops += 1;
                at = find(&self.rows, p)
                    .and_then(|j| self.rows.get(j))
                    .and_then(|row| row.parent);
            }
            chain.reverse();
            lines.push(format!("{} {value}", chain.join(";")));
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// Greedy max-`metric` descent from the heaviest root; ties break to
/// the lexicographically smaller stage name. Stops at a leaf, at a
/// zero-valued frontier, or at [`MAX_TREE_DEPTH`].
fn critical_path<F: Fn(&AttribRow) -> u64>(
    rows: &[AttribRow],
    metric: F,
) -> Vec<(&'static str, u64)> {
    let mut best: Option<&AttribRow> = None;
    for r in rows {
        if r.parent.is_some() || metric(r) == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                let (vi, vb) = (metric(r), metric(b));
                vi > vb || (vi == vb && r.stage < b.stage)
            }
        };
        if better {
            best = Some(r);
        }
    }
    let mut path = Vec::new();
    let mut at = best;
    while let Some(row) = at {
        if path.len() >= MAX_TREE_DEPTH {
            break;
        }
        path.push((row.stage, metric(row)));
        let here = row.stage;
        let mut next: Option<&AttribRow> = None;
        for r in rows {
            if r.parent != Some(here) || metric(r) == 0 {
                continue;
            }
            let better = match next {
                None => true,
                Some(k) => {
                    let (vj, vk) = (metric(r), metric(k));
                    vj > vk || (vj == vk && r.stage < k.stage)
                }
            };
            if better {
                next = Some(r);
            }
        }
        at = next;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(
        name: &'static str,
        parent: Option<&'static str>,
        enters: u64,
        sim: u64,
        host: u64,
    ) -> StageSnapshot {
        StageSnapshot {
            name,
            parent,
            enters,
            sim_secs: sim,
            host_nanos: host,
        }
    }

    #[test]
    fn inclusive_exclusive_and_serial_fraction() {
        let stages = vec![
            stage("root", None, 1, 10, 100),
            stage("root.par", Some("root"), 4, 40, 60),
            stage("root.ser", Some("root"), 2, 50, 30),
        ];
        // Pretend root.par is a parallel stage by checking against the
        // real table: none of these names are in PARALLEL_STAGES, so
        // everything is serial here.
        let a = Attribution::from_stages(&stages);
        let root = &a.rows[find(&a.rows, "root").expect("root row")];
        assert_eq!(root.sim_exclusive, 10);
        assert_eq!(root.sim_inclusive, 100);
        assert_eq!(root.host_inclusive_ns, 100);
        assert_eq!(root.host_exclusive_ns, 10, "100 - (60 + 30)");
        assert_eq!(a.total_sim, 100);
        assert_eq!(a.serial_sim, 100);
        assert!((a.serial_fraction_sim() - 1.0).abs() < 1e-12);
        assert_eq!(
            a.critical_path_sim,
            vec![("root", 100), ("root.ser", 50)],
            "greedy descent follows the heavier child"
        );
    }

    #[test]
    fn parallel_stages_leave_the_serial_pool() {
        let stages = vec![
            stage("observe", None, 1, 10, 0),
            stage(crate::names::STAGE_DNS_LOOKUP, Some("observe"), 8, 90, 0),
        ];
        let a = Attribution::from_stages(&stages);
        assert_eq!(a.total_sim, 100);
        assert_eq!(a.serial_sim, 10, "dns.lookup is par_map-fanned");
        assert!((a.serial_fraction_sim() - 0.1).abs() < 1e-12);
        let Some(ceiling) = a.amdahl_max_speedup() else {
            panic!("serial fraction positive, ceiling must exist");
        };
        assert!((ceiling - 10.0).abs() < 1e-9);
    }

    #[test]
    fn host_overlap_clamps_exclusive_at_zero() {
        // Parallel children can sum past the parent bracket.
        let stages = vec![
            stage("p", None, 1, 0, 50),
            stage("p.a", Some("p"), 1, 0, 40),
            stage("p.b", Some("p"), 1, 0, 40),
        ];
        let a = Attribution::from_stages(&stages);
        let p = &a.rows[find(&a.rows, "p").expect("p row")];
        assert_eq!(p.host_exclusive_ns, 0, "clamped, not wrapped");
    }

    #[test]
    fn folded_stacks_chain_and_sort() {
        let stages = vec![
            stage("b", None, 1, 7, 0),
            stage("b.leaf", Some("b"), 1, 3, 0),
            stage("a", None, 1, 0, 0),
        ];
        let a = Attribution::from_stages(&stages);
        assert_eq!(a.folded_stacks(false), "b 7\nb;b.leaf 3\n");
        assert_eq!(a.folded_stacks(true), "", "no host time recorded");
    }

    #[test]
    fn missing_parent_roots_the_stage_and_json_validates() {
        let stages = vec![stage("orphan.child", Some("never.registered"), 1, 5, 0)];
        let a = Attribution::from_stages(&stages);
        assert_eq!(a.rows[0].parent, None);
        assert_eq!(a.rows[0].depth, 0);
        let det = a.deterministic_json();
        let doc = crate::json::parse(&det).expect("deterministic JSON parses");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Value::as_str),
            Some(ATTRIB_SCHEMA)
        );
        let full = crate::json::parse(&a.full_json()).expect("full JSON parses");
        assert_eq!(
            full.get("deterministic").map(|v| matches!(v, Value::Bool(false))),
            Some(true)
        );
        assert!(!a.human_table().is_empty());
    }
}
