//! Sharded counters, max-gauges and fixed-bucket histograms.
//!
//! Every metric is an [`Entry`] in a process-global registry, keyed by
//! its `&'static str` name (the table in [`crate::names`]). An entry
//! owns `SHARD_COUNT × slots` atomic cells laid out shard-major; a
//! recording thread writes only its own shard's cells, and every
//! aggregate is commutative — counters sum, gauges max, histograms sum
//! per-bucket counts — so the merged snapshot is independent of which
//! thread recorded what, and therefore of the thread count.
//!
//! Registration is *first wins*: re-registering a name returns the
//! existing entry. A name re-registered with a different kind yields a
//! detached entry (recorded into, never exported) rather than a panic —
//! instrumentation must never take down a scan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{enabled, shard_index, SHARD_COUNT};

/// What a metric measures and how its shards merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone event count; shards merge by sum.
    Counter,
    /// High-water mark; shards merge by max.
    Gauge,
    /// Fixed-bucket distribution; bucket counts, sum and count all
    /// merge by sum.
    Histogram,
}

impl Kind {
    /// The lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Determinism class of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Value is a pure function of (input, seed): identical at any
    /// thread count. Included in the deterministic snapshot.
    Stable,
    /// Value legitimately varies run-to-run (pool probes, host-time
    /// derived, cache ratios). Excluded from the deterministic
    /// snapshot; still shown in the full dump.
    PerRun,
}

impl Class {
    /// The lowercase label used in the full export.
    pub fn label(self) -> &'static str {
        match self {
            Class::Stable => "stable",
            Class::PerRun => "per_run",
        }
    }
}

/// One registered metric: identity plus its shard-major cells.
#[derive(Debug)]
pub struct Entry {
    name: &'static str,
    kind: Kind,
    class: Class,
    /// Inclusive upper bucket bounds (empty for counter/gauge).
    bounds: &'static [u64],
    /// `SHARD_COUNT × slots` atomics, shard-major. Counter/gauge have
    /// one slot; a histogram has `bounds.len() + 1` bucket slots (the
    /// last is the overflow bucket) plus a sum slot and a count slot.
    cells: Vec<AtomicU64>,
}

impl Entry {
    fn new(name: &'static str, kind: Kind, class: Class, bounds: &'static [u64]) -> Entry {
        let slots = match kind {
            Kind::Histogram => bounds.len() + 3,
            _ => 1,
        };
        Entry {
            name,
            kind,
            class,
            bounds,
            cells: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(slots.saturating_mul(SHARD_COUNT))
                .collect(),
        }
    }

    fn slots(&self) -> usize {
        match self.kind {
            Kind::Histogram => self.bounds.len() + 3,
            _ => 1,
        }
    }

    /// The calling thread's cell for `slot`.
    fn own_cell(&self, slot: usize) -> Option<&AtomicU64> {
        self.cells.get(shard_index() * self.slots() + slot)
    }

    /// Sum of `slot` across all shards.
    fn sum_slot(&self, slot: usize) -> u64 {
        let slots = self.slots();
        let mut total = 0u64;
        for shard in 0..SHARD_COUNT {
            if let Some(c) = self.cells.get(shard * slots + slot) {
                total = total.wrapping_add(c.load(Ordering::Relaxed));
            }
        }
        total
    }

    /// Max of `slot` across all shards.
    fn max_slot(&self, slot: usize) -> u64 {
        let slots = self.slots();
        let mut m = 0u64;
        for shard in 0..SHARD_COUNT {
            if let Some(c) = self.cells.get(shard * slots + slot) {
                m = m.max(c.load(Ordering::Relaxed));
            }
        }
        m
    }

    fn snapshot_one(&self) -> MetricSnapshot {
        let data = match self.kind {
            Kind::Counter => MetricData::Counter(self.sum_slot(0)),
            Kind::Gauge => MetricData::Gauge(self.max_slot(0)),
            Kind::Histogram => {
                let nb = self.bounds.len();
                MetricData::Histogram {
                    bounds: self.bounds.to_vec(),
                    buckets: (0..nb + 1).map(|b| self.sum_slot(b)).collect(),
                    sum: self.sum_slot(nb + 1),
                    count: self.sum_slot(nb + 2),
                }
            }
        };
        MetricSnapshot {
            name: self.name,
            kind: self.kind,
            class: self.class,
            data,
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Entry>>> {
    static REG: OnceLock<Mutex<Vec<Arc<Entry>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

fn register_entry(
    name: &'static str,
    kind: Kind,
    class: Class,
    bounds: &'static [u64],
) -> Arc<Entry> {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for e in reg.iter() {
        if e.name == name {
            if e.kind == kind {
                return Arc::clone(e);
            }
            // Kind clash: hand back a detached entry — it records into
            // thin air and never appears in a snapshot, but the caller
            // keeps running.
            return Arc::new(Entry::new(name, kind, class, bounds));
        }
    }
    let e = Arc::new(Entry::new(name, kind, class, bounds));
    reg.push(Arc::clone(&e));
    e
}

/// A registered counter handle (merge: sum).
#[derive(Debug, Clone)]
pub struct Counter(Arc<Entry>);

impl Counter {
    /// Register (or re-attach to) the counter named `name`.
    pub fn register(name: &'static str, class: Class) -> Counter {
        Counter(register_entry(name, Kind::Counter, class, &[]))
    }

    /// Add `v` to the calling thread's shard. No-op while disabled.
    pub fn add(&self, v: u64) {
        if !enabled() {
            return;
        }
        if let Some(c) = self.0.own_cell(0) {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The merged (summed) value.
    pub fn value(&self) -> u64 {
        self.0.sum_slot(0)
    }
}

/// A registered max-gauge handle (merge: max).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<Entry>);

impl Gauge {
    /// Register (or re-attach to) the gauge named `name`.
    pub fn register(name: &'static str, class: Class) -> Gauge {
        Gauge(register_entry(name, Kind::Gauge, class, &[]))
    }

    /// Raise the calling thread's shard to at least `v`. No-op while
    /// disabled.
    pub fn record_max(&self, v: u64) {
        if !enabled() {
            return;
        }
        if let Some(c) = self.0.own_cell(0) {
            c.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The merged (maxed) value.
    pub fn value(&self) -> u64 {
        self.0.max_slot(0)
    }
}

/// A registered fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Entry>);

impl Histogram {
    /// Register (or re-attach to) the histogram named `name` with
    /// inclusive upper `bounds`; values above the last bound land in
    /// the overflow bucket.
    pub fn register(name: &'static str, class: Class, bounds: &'static [u64]) -> Histogram {
        Histogram(register_entry(name, Kind::Histogram, class, bounds))
    }

    /// Record one observation of `v`. No-op while disabled.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        let bounds = self.0.bounds;
        let bucket = bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(bounds.len());
        if let Some(c) = self.0.own_cell(bucket) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(c) = self.0.own_cell(bounds.len() + 1) {
            c.fetch_add(v, Ordering::Relaxed);
        }
        if let Some(c) = self.0.own_cell(bounds.len() + 2) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The merged value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricData {
    /// Summed counter value.
    Counter(u64),
    /// Maxed gauge value.
    Gauge(u64),
    /// Merged histogram: per-bucket counts (last bucket is overflow),
    /// plus value sum and observation count.
    Histogram {
        /// Inclusive upper bucket bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts, `bounds.len() + 1` long.
        buckets: Vec<u64>,
        /// Sum of observed values.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One metric's identity and merged value.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Metric kind.
    pub kind: Kind,
    /// Determinism class.
    pub class: Class,
    /// Merged value.
    pub data: MetricData,
}

/// Merge every registered metric, sorted by name (registration order
/// is lazy and therefore run-dependent; the sort restores determinism).
pub fn snapshot() -> Vec<MetricSnapshot> {
    let entries: Vec<Arc<Entry>> = {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.iter().map(Arc::clone).collect()
    };
    let mut out: Vec<MetricSnapshot> = entries.iter().map(|e| e.snapshot_one()).collect();
    out.sort_by(|a, b| a.name.cmp(b.name));
    out
}

/// The merged value of the counter named `name` (0 when absent). For
/// tests and reconciliation checks.
pub fn counter_value(name: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for e in reg.iter() {
        if e.name == name && e.kind == Kind::Counter {
            return e.sum_slot(0);
        }
    }
    0
}

/// Zero every cell of every registered metric, in place.
pub fn reset_all() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for e in reg.iter() {
        for c in &e.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_and_gauge_maxes() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        let c = Counter::register("test.metrics.counter", Class::Stable);
        c.add(2);
        c.incr();
        assert_eq!(c.value(), 3);
        let g = Gauge::register("test.metrics.gauge", Class::PerRun);
        g.record_max(5);
        g.record_max(2);
        assert_eq!(g.value(), 5);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        static BOUNDS: &[u64] = &[1, 4];
        let h = Histogram::register("test.metrics.hist", Class::Stable, BOUNDS);
        h.observe(0);
        h.observe(1);
        h.observe(3);
        h.observe(9);
        let snap = snapshot();
        let found = snap.iter().find(|m| m.name == "test.metrics.hist");
        let Some(MetricSnapshot {
            data: MetricData::Histogram { buckets, sum, count, .. },
            ..
        }) = found
        else {
            panic!("histogram missing from snapshot: {snap:?}");
        };
        assert_eq!(buckets, &vec![2, 1, 1], "<=1, <=4, overflow");
        assert_eq!(*sum, 13);
        assert_eq!(*count, 4);
        crate::set_enabled(false);
    }

    #[test]
    fn first_registration_wins_and_kind_clash_detaches() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        let a = Counter::register("test.metrics.dup", Class::Stable);
        let b = Counter::register("test.metrics.dup", Class::PerRun);
        a.add(1);
        b.add(1);
        assert_eq!(a.value(), 2, "same entry behind both handles");
        // Re-register under a clashing kind: detached, absent from
        // snapshots, but recording still works.
        let g = Gauge::register("test.metrics.dup", Class::Stable);
        g.record_max(9);
        assert_eq!(counter_value("test.metrics.dup"), 2);
        let names: Vec<_> = snapshot()
            .iter()
            .filter(|m| m.name == "test.metrics.dup")
            .map(|m| m.kind)
            .collect();
        assert_eq!(names, vec![Kind::Counter], "detached entry not exported");
        crate::set_enabled(false);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::reset();
        Counter::register("test.metrics.zz", Class::Stable).incr();
        Counter::register("test.metrics.aa", Class::Stable).incr();
        let snap = snapshot();
        let mut sorted = snap.iter().map(|m| m.name).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(snap.iter().map(|m| m.name).collect::<Vec<_>>(), sorted);
        crate::set_enabled(false);
    }
}
