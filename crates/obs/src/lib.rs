//! # mx-obs — deterministic observability for the measurement pipeline
//!
//! The paper's methodology is a multi-stage cascade (DNS resolution →
//! SMTP/STARTTLS scan → certificate/banner/MX inference), and after the
//! mx-par and chaos PRs it runs parallel and under fault injection. This
//! crate is the instrumentation substrate those stages record into:
//!
//! - **metrics** ([`metrics`]): counters, max-gauges and fixed-bucket
//!   histograms registered against the static name table in [`names`].
//!   Recording lands in per-worker *shards* and every aggregate is
//!   commutative (sum, max, bucket sums), so a merged snapshot is
//!   bit-identical at any thread count — the same discipline
//!   `tests/chaos_gate.rs` enforces for the measurement data itself.
//! - **spans** ([`span`]): scoped stage timers charged with *simulated*
//!   seconds (the `SimClock` cost model, deterministic) plus optional
//!   monotonic host time (inherently per-run), forming a static
//!   parent-child tree with per-stage totals.
//! - **trace events** ([`trace`]): a bounded per-shard ring of
//!   begin/end/instant events stamped with sim-time ticks (stable)
//!   plus optional host nanoseconds (per-run), merged by canonical
//!   sort into a timeline that is bit-identical across thread counts.
//!   Exporters: `mx-obs-trace/1` JSON, Chrome Trace Event Format, and
//!   folded stacks via [`attrib`].
//! - **attribution** ([`attrib`]): inclusive/exclusive time per stage,
//!   the serial fraction and Amdahl ceiling, and the critical path
//!   through the static span tree (`mx-obs-attrib/1`).
//! - **exporters** ([`export`]): a schema-versioned JSON snapshot
//!   (`mx-obs/1`) whose deterministic form excludes per-run data, a
//!   Prometheus text render, and a human-readable tree/table dump.
//!   [`json`] is the crate's own small JSON value/writer/parser so
//!   snapshots can be validated offline.
//!
//! Like `mx-par` and `mx-rng`, the crate has **zero dependencies** — it
//! sits below every other crate in the workspace (the DNS resolver and
//! the scanner record into it), so it cannot depend on any of them.
//!
//! ## Enabling
//!
//! Instrumentation is off by default; every record is then a single
//! relaxed atomic load and a branch. Turn it on with the `MX_OBS`
//! environment variable (any non-empty value other than `0`) or
//! programmatically with [`set_enabled`] — an explicit call wins over
//! the environment for the rest of the process.
//!
//! ## Call-site macros
//!
//! Handles are registered once and cached in a call-site static:
//!
//! ```
//! mx_obs::counter!("demo.example.events").add(1);
//! mx_obs::stage!("demo.example").charge_sim(3);
//! let _guard = mx_obs::stage!("demo.example").enter();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod export;
pub mod json;
pub mod metrics;
pub mod names;
pub mod span;
pub mod trace;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Once;

/// Number of independent recording shards. A thread is assigned a shard
/// on first record and keeps it; shards only ever combine through
/// commutative folds (sum/max), so the merged view does not depend on
/// which thread recorded what.
pub const SHARD_COUNT: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_READ: Once = Once::new();

/// Is instrumentation on? First call consults the `MX_OBS` environment
/// variable; afterwards this is one relaxed load (the disabled-path
/// cost every instrumented call site pays).
pub fn enabled() -> bool {
    ENV_READ.call_once(|| {
        let on = std::env::var("MX_OBS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        ENABLED.store(on, Ordering::Relaxed);
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Programmatically enable/disable recording (e.g. the `--obs` CLI
/// flag). Wins over `MX_OBS`: the environment is only ever read once,
/// and this marks it as read.
pub fn set_enabled(on: bool) {
    ENV_READ.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ENV_READ: Once = Once::new();

/// Is trace-event recording on? Rides on top of [`enabled`]: events
/// are only recorded when both gates are up. First call consults the
/// `MX_OBS_TRACE` environment variable; afterwards this is one relaxed
/// load. The env read lives here (next to `MX_OBS`) so the trace
/// module itself contains no environment or clock access.
pub fn trace_enabled() -> bool {
    TRACE_ENV_READ.call_once(|| {
        let on = std::env::var("MX_OBS_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        TRACE_ENABLED.store(on, Ordering::Relaxed);
    });
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Programmatically enable/disable trace-event recording (e.g. the
/// `--trace` CLI flag). Wins over `MX_OBS_TRACE`, same contract as
/// [`set_enabled`].
pub fn set_trace_enabled(on: bool) {
    TRACE_ENV_READ.call_once(|| {});
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard slot, assigned round-robin on first use.
pub(crate) fn shard_index() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
        s.set(v);
        v
    })
}

/// Zero every registered metric and stage **in place**. The registry is
/// never cleared, so handles cached in call-site statics stay valid
/// across runs — `tests/obs_gate.rs` resets between thread-count runs
/// and requires the snapshots to match bit-for-bit.
pub fn reset() {
    metrics::reset_all();
    span::reset_all();
    trace::reset_all();
}

/// Serialize tests that touch the process-global registry/enable gate.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A cached counter handle recorded in the deterministic (stable) class.
///
/// Expands to a call-site `static` holding the registered handle, so
/// the registry lock is taken once per call site, not per record.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::Counter::register($name, $crate::metrics::Class::Stable)
        })
    }};
}

/// A cached counter handle in the per-run (volatile) class: excluded
/// from the deterministic snapshot because its value legitimately
/// varies with thread count or host scheduling (pool probes, cache
/// hit ratios).
#[macro_export]
macro_rules! counter_volatile {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::Counter::register($name, $crate::metrics::Class::PerRun)
        })
    }};
}

/// A cached max-gauge handle (stable class).
#[macro_export]
macro_rules! gauge_max {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::Gauge::register($name, $crate::metrics::Class::Stable)
        })
    }};
}

/// A cached max-gauge handle in the per-run (volatile) class.
#[macro_export]
macro_rules! gauge_max_volatile {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::Gauge::register($name, $crate::metrics::Class::PerRun)
        })
    }};
}

/// A cached fixed-bucket histogram handle (stable class). `$bounds`
/// must be a `&'static [u64]` of inclusive upper bucket bounds.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::Histogram::register($name, $crate::metrics::Class::Stable, $bounds)
        })
    }};
}

/// A cached stage handle for span recording. The optional second
/// argument names the static parent stage in the dump tree.
#[macro_export]
macro_rules! stage {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::span::Stage> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::span::Stage::register($name, ::std::option::Option::None))
    }};
    ($name:expr, $parent:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::span::Stage> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::span::Stage::register($name, ::std::option::Option::Some($parent))
        })
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_are_dropped() {
        let _g = test_guard();
        set_enabled(false);
        reset();
        counter!("test.lib.disabled").add(7);
        assert_eq!(metrics::counter_value("test.lib.disabled"), 0);
        set_enabled(true);
        counter!("test.lib.disabled").add(7);
        assert_eq!(metrics::counter_value("test.lib.disabled"), 7);
        set_enabled(false);
    }

    #[test]
    fn reset_keeps_cached_handles_valid() {
        let _g = test_guard();
        set_enabled(true);
        reset();
        let c = counter!("test.lib.reset");
        c.add(3);
        assert_eq!(c.value(), 3);
        reset();
        assert_eq!(c.value(), 0, "reset zeroes in place");
        c.add(1);
        assert_eq!(c.value(), 1, "handle still live after reset");
        set_enabled(false);
    }

    #[test]
    fn shards_merge_across_threads() {
        let _g = test_guard();
        set_enabled(true);
        reset();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        counter!("test.lib.threads").add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            let _ = t.join();
        }
        assert_eq!(metrics::counter_value("test.lib.threads"), 400);
        set_enabled(false);
    }
}
