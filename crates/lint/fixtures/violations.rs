//! Seeded lint violations. This file is NOT compiled into any crate; it
//! exists so the fixture tests (and `scripts/ci.sh`) can prove mx-lint
//! still catches every rule. Linted in strict mode (untrusted + wire
//! codec), it must produce at least one diagnostic per rule R1–R3, R5
//! and R6 and exit non-zero.

pub fn r1_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn r1_expect(x: Result<u8, ()>) -> u8 {
    x.expect("malformed")
}

pub fn r1_panic(kind: u8) {
    if kind > 3 {
        panic!("unknown kind {kind}");
    }
}

pub fn r1_unreachable(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn r1_indexing(buf: &[u8]) -> u8 {
    buf[0]
}

pub fn r2_truncating_cast(len: usize) -> u16 {
    len as u16
}

pub fn r3_unbounded_capacity(count: usize) -> Vec<u8> {
    Vec::with_capacity(count)
}

pub fn r3_unbounded_recursion(depth: usize) -> usize {
    if depth == 0 {
        0
    } else {
        r3_unbounded_recursion(depth - 1) + 1
    }
}

pub fn r5_unbounded_wait(ready: &std::sync::atomic::AtomicBool) {
    while !ready.load(std::sync::atomic::Ordering::Relaxed) {
        std::hint::spin_loop();
    }
}

pub fn r6_stringly_error(s: &str) -> Result<u8, String> {
    s.parse().map_err(|_| "bad".to_string())
}

pub fn r0_unused_allow() -> u8 {
    // lint:allow(R1): nothing here actually panics
    7
}

pub fn r9_hash_iteration(map: &std::collections::HashMap<u32, u32>) -> u32 {
    let mut sum = 0;
    for (k, v) in map.iter() {
        sum ^= k ^ v;
    }
    sum
}

pub fn r9_host_clock() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn r9_env_read() -> Option<String> {
    std::env::var("MX_FIXTURE").ok()
}
