//! `lint.toml` loading: the checked-in scope lists.
//!
//! The rule scopes ([`LintConfig`]) started life hard-coded in this
//! crate; they now live in the repository's `lint.toml`, so adding a
//! parser to the untrusted scope is a config review, not a lint-crate
//! release. The file is a small, dependency-free TOML subset — flat
//! `key = ["…", …]` string arrays, `#` comments, arrays free to span
//! lines:
//!
//! ```toml
//! # modules that parse untrusted input (R1/R3)
//! untrusted = [
//!     "crates/dns/src/wire.rs",
//! ]
//! ```
//!
//! Keys mirror the [`LintConfig`] fields (`untrusted`, `wire_codecs`,
//! `bounded_loops`, `deterministic`, `entry_points`, `skip_dirs`); a
//! key left out keeps its
//! [`LintConfig::default`] value, so the file can override scopes
//! selectively. Unknown or duplicate keys and malformed syntax are
//! typed [`ConfigError`]s — a misspelled scope list must fail the run,
//! not silently lint nothing.

use std::fmt;
use std::path::Path;

use crate::LintConfig;

/// Everything that can be wrong with a `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A key that is not one of the [`LintConfig`] fields.
    UnknownKey {
        /// 1-based line of the key.
        line: usize,
        /// The offending key text.
        key: String,
    },
    /// The same key assigned twice.
    DuplicateKey {
        /// 1-based line of the second assignment.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// Malformed syntax (missing `=`, unterminated string/array, a
    /// non-string array element, …).
    Syntax {
        /// 1-based line of the problem.
        line: usize,
        /// What the parser expected.
        msg: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownKey { line, key } => {
                write!(f, "lint.toml:{line}: unknown key `{key}`")
            }
            ConfigError::DuplicateKey { line, key } => {
                write!(f, "lint.toml:{line}: duplicate key `{key}`")
            }
            ConfigError::Syntax { line, msg } => write!(f, "lint.toml:{line}: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// One token of the TOML subset.
#[derive(Debug, PartialEq)]
enum Tok {
    Key(String),
    Str(String),
    Eq,
    Open,
    Close,
    Comma,
}

/// Tokenize the subset: bare keys, quoted strings, `= [ ] ,` and `#`
/// comments. Tracks the 1-based line of every token for errors.
fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, ConfigError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line; the newline is handled above.
                while chars.peek().is_some_and(|&c| c != '\n') {
                    chars.next();
                }
            }
            '=' => {
                out.push((line, Tok::Eq));
                chars.next();
            }
            '[' => {
                out.push((line, Tok::Open));
                chars.next();
            }
            ']' => {
                out.push((line, Tok::Close));
                chars.next();
            }
            ',' => {
                out.push((line, Tok::Comma));
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None | Some('\n') => {
                            return Err(ConfigError::Syntax {
                                line,
                                msg: "unterminated string",
                            })
                        }
                        Some('"') => break,
                        Some(c) => s.push(c),
                    }
                }
                out.push((line, Tok::Str(s)));
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut k = String::new();
                while chars
                    .peek()
                    .is_some_and(|&c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    if let Some(c) = chars.next() {
                        k.push(c);
                    }
                }
                out.push((line, Tok::Key(k)));
            }
            _ => {
                return Err(ConfigError::Syntax {
                    line,
                    msg: "unexpected character",
                })
            }
        }
    }
    Ok(out)
}

impl LintConfig {
    /// Parse a `lint.toml` source text. Keys present override the
    /// matching [`LintConfig::default`] field; keys absent keep it.
    pub fn from_toml_str(src: &str) -> Result<LintConfig, ConfigError> {
        let toks = tokenize(src)?;
        let mut config = LintConfig::default();
        let mut seen: Vec<String> = Vec::new();
        let mut i = 0usize;
        while let Some(tok) = toks.get(i) {
            let (kline, key) = match tok {
                (l, Tok::Key(k)) => (*l, k.clone()),
                (l, _) => {
                    return Err(ConfigError::Syntax {
                        line: *l,
                        msg: "expected a key",
                    })
                }
            };
            i += 1;
            match toks.get(i) {
                Some((_, Tok::Eq)) => i += 1,
                _ => {
                    return Err(ConfigError::Syntax {
                        line: kline,
                        msg: "expected `=` after key",
                    })
                }
            }
            match toks.get(i) {
                Some((_, Tok::Open)) => i += 1,
                _ => {
                    return Err(ConfigError::Syntax {
                        line: kline,
                        msg: "expected `[` — values are string arrays",
                    })
                }
            }
            let mut values: Vec<String> = Vec::new();
            // Array body: strings separated by commas, trailing comma
            // allowed, closed by `]`.
            while let Some(tok) = toks.get(i) {
                match tok {
                    (_, Tok::Close) => break,
                    (_, Tok::Str(s)) => {
                        values.push(s.clone());
                        i += 1;
                        match toks.get(i) {
                            Some((_, Tok::Comma)) => i += 1,
                            Some((_, Tok::Close)) => {}
                            Some((l, _)) => {
                                return Err(ConfigError::Syntax {
                                    line: *l,
                                    msg: "expected `,` or `]` after array element",
                                })
                            }
                            None => {}
                        }
                    }
                    (l, _) => {
                        return Err(ConfigError::Syntax {
                            line: *l,
                            msg: "array elements must be strings",
                        })
                    }
                }
            }
            match toks.get(i) {
                Some((_, Tok::Close)) => i += 1,
                _ => {
                    return Err(ConfigError::Syntax {
                        line: kline,
                        msg: "unterminated array",
                    })
                }
            }
            if seen.contains(&key) {
                return Err(ConfigError::DuplicateKey { line: kline, key });
            }
            seen.push(key.clone());
            match key.as_str() {
                "untrusted" => config.untrusted = values,
                "wire_codecs" => config.wire_codecs = values,
                "bounded_loops" => config.bounded_loops = values,
                "deterministic" => config.deterministic = values,
                "entry_points" => config.entry_points = values,
                "skip_dirs" => config.skip_dirs = values,
                _ => return Err(ConfigError::UnknownKey { line: kline, key }),
            }
        }
        Ok(config)
    }

    /// Load the configuration for a workspace root: `<root>/lint.toml`
    /// when present, [`LintConfig::default`] otherwise. A present but
    /// malformed file is an error (it must never silently lint with
    /// the wrong scopes).
    pub fn load(root: &Path) -> std::io::Result<LintConfig> {
        let path = root.join("lint.toml");
        if !path.is_file() {
            return Ok(LintConfig::default());
        }
        let src = std::fs::read_to_string(&path)?;
        LintConfig::from_toml_str(&src)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_arrays_comments_and_partial_overrides() {
        let src = "\
# only override two scopes
untrusted = [
    \"crates/a/src/p.rs\", # trailing comment
    \"crates/b/src/q.rs\",
]
skip_dirs = []
";
        let c = LintConfig::from_toml_str(src).unwrap();
        assert_eq!(c.untrusted, ["crates/a/src/p.rs", "crates/b/src/q.rs"]);
        assert!(c.skip_dirs.is_empty());
        // Untouched keys keep their defaults.
        assert_eq!(c.wire_codecs, LintConfig::default().wire_codecs);
        assert_eq!(c.bounded_loops, LintConfig::default().bounded_loops);
    }

    #[test]
    fn empty_source_is_the_default() {
        let c = LintConfig::from_toml_str("# nothing here\n").unwrap();
        let d = LintConfig::default();
        assert_eq!(c.untrusted, d.untrusted);
        assert_eq!(c.deterministic, d.deterministic);
        assert_eq!(c.entry_points, d.entry_points);
        assert_eq!(c.skip_dirs, d.skip_dirs);
    }

    #[test]
    fn deterministic_and_entry_points_keys_parse_and_override() {
        let src = "\
deterministic = [\"crates/a/src/out.rs\"]
entry_points = [\"crates/a/src/in.rs::decode\"]
";
        let c = LintConfig::from_toml_str(src).unwrap();
        assert_eq!(c.deterministic, ["crates/a/src/out.rs"]);
        assert_eq!(c.entry_points, ["crates/a/src/in.rs::decode"]);
        // Partial override: untouched scopes keep their defaults.
        assert_eq!(c.untrusted, LintConfig::default().untrusted);
        // The new keys get the same typed-error treatment.
        assert!(matches!(
            LintConfig::from_toml_str("deterministic = []\ndeterministic = []"),
            Err(ConfigError::DuplicateKey { line: 2, ref key }) if key == "deterministic"
        ));
        assert!(matches!(
            LintConfig::from_toml_str("entry_points = [42]"),
            Err(ConfigError::Syntax { .. })
        ));
    }

    #[test]
    fn typed_errors_for_bad_input() {
        assert!(matches!(
            LintConfig::from_toml_str("nope = [\"x\"]"),
            Err(ConfigError::UnknownKey { line: 1, ref key }) if key == "nope"
        ));
        assert!(matches!(
            LintConfig::from_toml_str("untrusted = []\nuntrusted = []"),
            Err(ConfigError::DuplicateKey { line: 2, ref key }) if key == "untrusted"
        ));
        assert!(matches!(
            LintConfig::from_toml_str("untrusted = [\"unterminated\n]"),
            Err(ConfigError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            LintConfig::from_toml_str("untrusted = [1]"),
            Err(ConfigError::Syntax { .. })
        ));
        assert!(matches!(
            LintConfig::from_toml_str("untrusted [\"x\"]"),
            Err(ConfigError::Syntax { .. })
        ));
        assert!(matches!(
            LintConfig::from_toml_str("untrusted = \"x\""),
            Err(ConfigError::Syntax { .. })
        ));
        assert!(matches!(
            LintConfig::from_toml_str("untrusted = [\"a\""),
            Err(ConfigError::Syntax { .. })
        ));
    }
}
