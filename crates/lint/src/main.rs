//! `mx-lint` CLI: lint the workspace (or one file) and exit non-zero on
//! any diagnostic. See `crates/lint/README.md` for the rule catalogue.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mx_lint::{lint_file, lint_workspace, FileClass};

const USAGE: &str = "\
mx-lint — workspace static analysis (panic-freedom & RFC invariants)

USAGE:
    mx-lint [--root <dir>]          lint the whole workspace
    mx-lint --file <path> [...]     lint specific files in strict mode
                                    (treated as untrusted wire codecs)
    mx-lint --help

Diagnostics print as `file:line: RULE: message`. Exit status is 0 when
clean, 1 when any rule fires, 2 on usage or I/O errors.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut strict_files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--file" => {
                i += 1;
                let Some(f) = args.get(i) else {
                    eprintln!("error: --file needs a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                strict_files.push(PathBuf::from(f));
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if !strict_files.is_empty() {
        // Strict mode: every named file is linted as an untrusted wire
        // codec. Used by the fixture test and for ad-hoc audits.
        let class = FileClass {
            untrusted: true,
            wire_codec: true,
            crate_root: false,
            bounded_loops: true,
        };
        let mut total = 0usize;
        for f in &strict_files {
            match lint_file(&root, f, class) {
                Ok((diags, _)) => {
                    for d in &diags {
                        println!("{d}");
                    }
                    total += diags.len();
                }
                Err(e) => {
                    eprintln!("error: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        return finish(total, strict_files.len(), 0);
    }

    match lint_workspace(&root) {
        Ok(report) => {
            if report.files_checked == 0 {
                // A workspace with zero .rs files is a wrong --root, not a
                // clean tree; exiting 0 here would be a silent false green.
                eprintln!("error: no Rust sources found under {}", root.display());
                return ExitCode::from(2);
            }
            for d in &report.diagnostics {
                println!("{d}");
            }
            finish(report.diagnostics.len(), report.files_checked, report.allows_total)
        }
        Err(e) => {
            eprintln!("error: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn finish(diags: usize, files: usize, allows: usize) -> ExitCode {
    if diags == 0 {
        eprintln!("mx-lint: clean — {files} files checked, {allows} lint:allow escapes in use");
        ExitCode::SUCCESS
    } else {
        eprintln!("mx-lint: {diags} diagnostic(s) across {files} files");
        ExitCode::FAILURE
    }
}
