//! `mx-lint` CLI: lint the workspace (or one file) and exit non-zero on
//! any diagnostic. See `crates/lint/README.md` for the rule catalogue.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mx_lint::report::{render_json, render_sarif, render_text, Baseline};
use mx_lint::{lex_cache_stats, lint_file, lint_workspace, FileClass, Report};

const USAGE: &str = "\
mx-lint — workspace static analysis (panic-freedom, reachability & determinism)

USAGE:
    mx-lint [--root <dir>] [OPTIONS]    lint the whole workspace
    mx-lint --file <path> [...]         lint specific files in strict mode
                                        (treated as untrusted wire codecs)
    mx-lint --help

OPTIONS:
    --format text|json|sarif   report format on stdout (default: text;
                               json/sarif output is byte-deterministic)
    --baseline <path>          tolerate the findings listed in <path>
                               (`file: RULE: message` lines); stale
                               entries fail the run like unused allows
    --write-baseline <path>    write the baseline that would make the
                               current findings pass, then exit 0
    --stats <path>             run the workspace pass twice (cold+warm),
                               write wall times and the lex-cache hit
                               rate as JSON to <path>

Diagnostics print as `file:line: RULE: message`. Exit status is 0 when
clean, 1 when any rule fires or a baseline entry is stale, 2 on usage
or I/O errors.";

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut strict_files: Vec<PathBuf> = Vec::new();
    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut stats_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--file" => {
                i += 1;
                let Some(f) = args.get(i) else {
                    eprintln!("error: --file needs a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                strict_files.push(PathBuf::from(f));
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "error: --format needs text|json|sarif, got `{}`\n{USAGE}",
                            other.unwrap_or("")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--baseline" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("error: --baseline needs a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(p));
            }
            "--write-baseline" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("error: --write-baseline needs a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                write_baseline = Some(PathBuf::from(p));
            }
            "--stats" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("error: --stats needs a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                stats_path = Some(PathBuf::from(p));
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if !strict_files.is_empty() {
        // Strict mode: every named file is linted as an untrusted wire
        // codec in the deterministic scope. Used by the fixture test
        // and for ad-hoc audits. Per-file only: the crate-wide R8 rule
        // needs the whole workspace, so it does not run here.
        let class = FileClass {
            untrusted: true,
            wire_codec: true,
            crate_root: false,
            bounded_loops: true,
            deterministic: true,
        };
        let mut total = 0usize;
        for f in &strict_files {
            match lint_file(&root, f, class) {
                Ok((diags, _)) => {
                    for d in &diags {
                        println!("{d}");
                    }
                    total += diags.len();
                }
                Err(e) => {
                    eprintln!("error: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        return finish(total, 0, strict_files.len(), 0);
    }

    if let Some(path) = &stats_path {
        return match run_stats(&root, path) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                ExitCode::from(2)
            }
        };
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if report.files_checked == 0 {
        // A workspace with zero .rs files is a wrong --root, not a
        // clean tree; exiting 0 here would be a silent false green.
        eprintln!("error: no Rust sources found under {}", root.display());
        return ExitCode::from(2);
    }

    if let Some(path) = &write_baseline {
        let text = Baseline::render(&report.diagnostics);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "mx-lint: wrote baseline with {} entr(y/ies) to {}",
            report.diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut report = report;
    let mut suppressed = 0usize;
    let mut stale: Vec<String> = Vec::new();
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let bl = Baseline::parse(&text);
        let diags = std::mem::take(&mut report.diagnostics);
        (report.diagnostics, suppressed, stale) = bl.apply(diags);
    }

    match format {
        Format::Text => print!("{}", render_text(&report)),
        Format::Json => print!("{}", render_json(&report, suppressed)),
        Format::Sarif => print!("{}", render_sarif(&report)),
    }
    for s in &stale {
        eprintln!("mx-lint: stale baseline entry (fixed finding — remove the line): {s}");
    }
    finish(
        report.diagnostics.len() + stale.len(),
        suppressed,
        report.files_checked,
        report.allows_total,
    )
}

/// `--stats`: run the workspace pass twice and record wall times plus
/// the lex-cache hit rate of the warm pass. The output is intentionally
/// host-dependent (it measures this machine) and lives outside the
/// byte-deterministic report formats.
fn run_stats(root: &std::path::Path, out_path: &std::path::Path) -> std::io::Result<ExitCode> {
    let t0 = Instant::now();
    let _cold: Report = lint_workspace(root)?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (h0, m0) = lex_cache_stats();
    let t1 = Instant::now();
    let warm: Report = lint_workspace(root)?;
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (h1, m1) = lex_cache_stats();
    let (hits, misses) = (h1 - h0, m1 - m0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"schema\": \"mx-lint/stats/1\",\n  \"files_checked\": {},\n  \
         \"diagnostics\": {},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \
         \"warm_lex_cache_hits\": {hits},\n  \"warm_lex_cache_misses\": {misses},\n  \
         \"warm_lex_cache_hit_rate\": {hit_rate:.4}\n}}\n",
        warm.files_checked, warm.diagnostics.len(), cold_ms, warm_ms,
    );
    std::fs::write(out_path, json)?;
    eprintln!(
        "mx-lint: stats written to {} (cold {:.1} ms, warm {:.1} ms, warm hit rate {:.1}%)",
        out_path.display(),
        cold_ms,
        warm_ms,
        hit_rate * 100.0
    );
    Ok(if warm.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn finish(diags: usize, suppressed: usize, files: usize, allows: usize) -> ExitCode {
    if diags == 0 {
        let sup = if suppressed > 0 {
            format!(", {suppressed} baseline-suppressed")
        } else {
            String::new()
        };
        eprintln!(
            "mx-lint: clean — {files} files checked, {allows} lint:allow escapes in use{sup}"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("mx-lint: {diags} diagnostic(s) across {files} files");
        ExitCode::FAILURE
    }
}
