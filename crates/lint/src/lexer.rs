//! A small hand-rolled Rust tokenizer.
//!
//! The build environment is offline, so `mx-lint` cannot use `syn` or
//! `proc-macro2`; this lexer implements just enough of the Rust lexical
//! grammar for reliable *token-level* analysis: identifiers and keywords,
//! lifetimes vs. character literals, all string literal forms (including
//! raw/byte/C strings with `#` fences), numbers, punctuation, and nested
//! block comments. Comments are captured separately so rule checks can
//! scan pure code while the `lint:allow` escape hatch still sees them.
//!
//! It does not build a syntax tree — the lint rules are deliberately
//! lexical (see `rules.rs`) so the tool stays dependency-free and fast.

/// The kind of a significant (non-comment) token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A lifetime such as `'a` (or the loop-label form).
    Lifetime,
    /// Integer literal (any base, with suffix/underscores).
    Int,
    /// Float literal.
    Float,
    /// Any string literal form (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct,
}

/// One significant token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment (line or block, doc or plain).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when a significant token precedes the comment on its line.
    pub trailing: bool,
}

/// Lexer output: significant tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unknown bytes are skipped rather than fatal: a linter
/// must degrade gracefully on source it cannot fully classify.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut last_sig_line: u32 = 0;

    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    trailing: last_sig_line == line,
                });
                continue;
            }
            if b[i + 1] == b'*' {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                    trailing: last_sig_line == start_line,
                });
                continue;
            }
        }
        // Raw / byte / C string prefixes and raw identifiers.
        if c == b'r' || c == b'b' || c == b'c' {
            if let Some((tok, next)) = try_prefixed_literal(src, b, i, line) {
                bump_lines!(&b[i..next]);
                last_sig_line = tok.line;
                out.tokens.push(tok);
                i = next;
                continue;
            }
        }
        // Identifier / keyword.
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
            last_sig_line = line;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let (tok, next) = lex_number(src, b, i, line);
            last_sig_line = line;
            out.tokens.push(tok);
            i = next;
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            let (text, next, nl) = lex_quoted(src, b, i, b'"');
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
            });
            last_sig_line = line;
            line += nl;
            i = next;
            continue;
        }
        // Lifetime or char literal.
        if c == b'\'' {
            let (tok, next, nl) = lex_tick(src, b, i, line);
            last_sig_line = line;
            line += nl;
            out.tokens.push(tok);
            i = next;
            continue;
        }
        // Punctuation: single characters are enough for the rule set.
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        last_sig_line = line;
        i += 1;
    }
    out
}

/// `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `b'x'`, `c"…"`, and raw idents.
/// Returns `None` when the position is a plain identifier instead.
fn try_prefixed_literal(src: &str, b: &[u8], i: usize, line: u32) -> Option<(Tok, usize)> {
    let c = b[i];
    let rest = &b[i + 1..];
    // b'x' byte char literal.
    if c == b'b' && rest.first() == Some(&b'\'') {
        let (tok, next, _) = lex_tick(src, b, i + 1, line);
        return Some((
            Tok {
                kind: TokKind::Char,
                text: format!("b{}", tok.text),
                line,
            },
            next,
        ));
    }
    // b"…" / c"…".
    if (c == b'b' || c == b'c') && rest.first() == Some(&b'"') {
        let (text, next, _) = lex_quoted(src, b, i + 1, b'"');
        return Some((
            Tok {
                kind: TokKind::Str,
                text: format!("{}{}", c as char, text),
                line,
            },
            next,
        ));
    }
    // Raw forms: count `#` fence after the prefix letter(s).
    let mut j = i + 1;
    if c == b'b' && j < b.len() && b[j] == b'r' {
        j += 1;
    }
    if b[i] != b'r' && !(c == b'b' && b.get(i + 1) == Some(&b'r')) {
        return None;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        // Raw string: scan for `"` followed by `hashes` hashes.
        j += 1;
        let close: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat(b'#').take(hashes))
            .collect();
        while j < b.len() {
            if b[j] == b'"' && b[j..].starts_with(&close) {
                j += close.len();
                return Some((
                    Tok {
                        kind: TokKind::Str,
                        text: src[i..j].to_string(),
                        line,
                    },
                    j,
                ));
            }
            j += 1;
        }
        return Some((
            Tok {
                kind: TokKind::Str,
                text: src[i..].to_string(),
                line,
            },
            b.len(),
        ));
    }
    if hashes == 1 && j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphabetic()) {
        // Raw identifier r#type.
        let start = j;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        return Some((
            Tok {
                kind: TokKind::Ident,
                text: src[start..j].to_string(),
                line,
            },
            j,
        ));
    }
    None
}

/// Lex a `"`-delimited literal with escapes; returns (text, next, newlines).
fn lex_quoted(src: &str, b: &[u8], start: usize, quote: u8) -> (String, usize, u32) {
    let mut i = start + 1;
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                nl += 1;
                i += 1;
            }
            c if c == quote => {
                i += 1;
                return (src[start..i.min(src.len())].to_string(), i, nl);
            }
            _ => i += 1,
        }
    }
    (src[start..].to_string(), b.len(), nl)
}

/// Disambiguate `'a` (lifetime) from `'x'` (char literal).
fn lex_tick(src: &str, b: &[u8], start: usize, line: u32) -> (Tok, usize, u32) {
    let mut i = start + 1;
    if i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphabetic()) {
        // Could be a lifetime (`'a`) or a char (`'a'`): look at the byte
        // after the identifier run.
        let mut j = i;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' && j == i + 1 {
            // One ident char then a closing tick: char literal 'x'.
            return (
                Tok {
                    kind: TokKind::Char,
                    text: src[start..j + 1].to_string(),
                    line,
                },
                j + 1,
                0,
            );
        }
        return (
            Tok {
                kind: TokKind::Lifetime,
                text: src[start..j].to_string(),
                line,
            },
            j,
            0,
        );
    }
    // Escape or punctuation char literal: scan to closing tick.
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => {
                i += 1;
                return (
                    Tok {
                        kind: TokKind::Char,
                        text: src[start..i.min(src.len())].to_string(),
                        line,
                    },
                    i,
                    nl,
                );
            }
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (
        Tok {
            kind: TokKind::Char,
            text: src[start..].to_string(),
            line,
        },
        b.len(),
        nl,
    )
}

/// Lex a numeric literal starting at a digit.
fn lex_number(src: &str, b: &[u8], start: usize, line: u32) -> (Tok, usize) {
    let mut i = start;
    let mut float = false;
    if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    } else {
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
        // Fractional part: a dot followed by a digit (so `1..3` and
        // `1.max(2)` stay separate tokens).
        if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
            float = true;
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
        // Exponent.
        if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
            let mut j = i + 1;
            if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                j += 1;
            }
            if j < b.len() && b[j].is_ascii_digit() {
                float = true;
                i = j;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
            }
        }
        // Type suffix (u8, f64, usize, …).
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            if b[i] == b'f' {
                float = true;
            }
            i += 1;
        }
    }
    (
        Tok {
            kind: if float { TokKind::Float } else { TokKind::Int },
            text: src[start..i].to_string(),
            line,
        },
        i,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = a.unwrap();");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[4], (TokKind::Punct, ".".into()));
        assert_eq!(t[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn comments_do_not_hide_tokens_and_track_trailing() {
        let l = lex("let a = 1; // trailing\n// standalone\nlet b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.tokens.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* outer /* inner */ still */ fn x() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens[0].text, "fn");
    }

    #[test]
    fn strings_hide_panics() {
        let l = lex(r#"let s = "panic!(unwrap())"; s"#);
        assert!(l.tokens.iter().all(|t| t.text != "panic"));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_string_with_fence() {
        let l = lex(r###"let s = r#"has "quotes" and unwrap()"#; x"###);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(l.tokens.last().map(|t| t.text.as_str()), Some("x"));
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'x'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'\\n'"));
    }

    #[test]
    fn numbers_and_ranges() {
        let t = kinds("0..5 1.5 0xFF_u16 2e3 1_000usize");
        assert_eq!(t[0], (TokKind::Int, "0".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[3], (TokKind::Int, "5".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Float && s == "1.5"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "0xFF_u16"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Float && s == "2e3"));
    }

    #[test]
    fn line_numbers_cross_multiline_strings() {
        let l = lex("let a = \"x\ny\";\nlet b = 1;");
        let b_tok = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn raw_ident() {
        let t = kinds("let r#type = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "type"));
    }
}
