//! Machine-readable reporters and the suppression baseline.
//!
//! Both renderers are dependency-free and **byte-deterministic**: keys
//! are emitted in a fixed order, diagnostics arrive pre-sorted from
//! [`crate::lint_sources`], and nothing host-dependent (timestamps,
//! absolute paths, hash order) ever reaches the output. CI runs each
//! format twice and `cmp`s the bytes.
//!
//! The baseline file enables incremental adoption of new rules: one
//! line per tolerated finding, `file: RULE: message`, deliberately
//! *without* line numbers so unrelated edits above a tolerated site do
//! not invalidate the entry. Matching is multiset-style — two identical
//! baseline lines tolerate two identical findings, a third one fires.

use std::collections::BTreeMap;

use crate::rules::{Diagnostic, Rule};
use crate::Report;

/// Escape `s` for a JSON string literal (RFC 8259 minimal set plus
/// control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The `file:line: RULE: message` lines the human-facing CLI prints.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}:{}: {}: {}\n",
            d.file,
            d.line,
            d.rule.id(),
            d.message
        ));
    }
    out
}

/// The `mx-lint/2` JSON report: run counters plus every diagnostic, in
/// the sorted order the library produced them.
pub fn render_json(report: &Report, baseline_suppressed: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mx-lint/2\",\n");
    out.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    out.push_str(&format!("  \"allows_total\": {},\n", report.allows_total));
    out.push_str(&format!(
        "  \"baseline_suppressed\": {baseline_suppressed},\n"
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule.id(),
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// A minimal SARIF 2.1.0 log: one run, the full rule catalogue in the
/// driver, one `result` per diagnostic.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"mx-lint\",\n");
    out.push_str("          \"rules\": [");
    for (i, r) in Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            r.id(),
            json_escape(r.summary())
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            d.rule.id(),
            json_escape(&d.message),
            json_escape(&d.file),
            d.line.max(1)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// A parsed baseline: tolerated findings as a multiset of
/// `file: RULE: message` keys.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<String, usize>,
}

/// The baseline key of one diagnostic (line-number-free by design).
pub fn baseline_key(d: &Diagnostic) -> String {
    format!("{}: {}: {}", d.file, d.rule.id(), d.message)
}

impl Baseline {
    /// Parse baseline text: one key per line, `#` comments and blank
    /// lines ignored. Repeated lines tolerate repeated findings.
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *entries.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of tolerated findings (with multiplicity).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// True when the baseline tolerates nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split `diags` into (still-failing, suppressed-count, stale
    /// entries), consuming one baseline entry per matched diagnostic.
    /// Stale entries — baseline lines that matched nothing — are the
    /// drift CI refuses, exactly like unused `lint:allow` directives:
    /// a fixed finding must leave the baseline the same day.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, usize, Vec<String>) {
        let mut remaining = self.entries.clone();
        let mut out = Vec::new();
        let mut suppressed = 0usize;
        for d in diags {
            match remaining.get_mut(&baseline_key(&d)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed += 1;
                }
                _ => out.push(d),
            }
        }
        let mut stale = Vec::new();
        for (k, n) in &remaining {
            for _ in 0..*n {
                stale.push(k.clone());
            }
        }
        (out, suppressed, stale)
    }

    /// Render the baseline that would make `diags` pass, sorted.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut keys: Vec<String> = diags.iter().map(baseline_key).collect();
        keys.sort();
        let mut out = String::new();
        for k in keys {
            out.push_str(&k);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, rule: Rule, msg: &str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: msg.into(),
        }
    }

    fn sample_report() -> Report {
        Report {
            diagnostics: vec![
                diag("a.rs", 3, Rule::R1, ".unwrap() can \"panic\""),
                diag("b.rs", 7, Rule::R9, "HashMap iteration order"),
            ],
            files_checked: 2,
            allows_total: 1,
        }
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let r = sample_report();
        let a = render_json(&r, 0);
        let b = render_json(&r, 0);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"mx-lint/2\""));
        assert!(a.contains("\\\"panic\\\""), "quotes escaped: {a}");
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let r = Report {
            files_checked: 5,
            ..Default::default()
        };
        let j = render_json(&r, 0);
        assert!(j.contains("\"diagnostics\": []"), "{j}");
        let s = render_sarif(&r);
        assert!(s.contains("\"results\": []"), "{s}");
    }

    #[test]
    fn sarif_lists_full_rule_catalogue() {
        let s = render_sarif(&sample_report());
        for r in Rule::ALL {
            assert!(s.contains(&format!("\"id\": \"{}\"", r.id())), "{}", r.id());
        }
        assert!(s.contains("\"ruleId\": \"R9\""));
        assert!(s.contains("\"startLine\": 7"));
    }

    #[test]
    fn baseline_roundtrip_and_multiset_matching() {
        let d1 = diag("a.rs", 3, Rule::R8, "reachable sink");
        let d2 = diag("a.rs", 9, Rule::R8, "reachable sink"); // same key, other line
        let d3 = diag("b.rs", 1, Rule::R9, "hash walk");
        let text = Baseline::render(&[d1.clone(), d3.clone()]);
        let bl = Baseline::parse(&text);
        assert_eq!(bl.len(), 2);
        // d1 and d3 are tolerated; d2 shares d1's key but the single
        // entry is already consumed, so it still fails.
        let (fail, ok, stale) = bl.apply(vec![d1, d2, d3.clone()]);
        assert_eq!(ok, 2);
        assert_eq!(fail.len(), 1);
        assert_eq!(fail[0].line, 9);
        assert!(stale.is_empty());
        // A baseline entry that matches nothing is reported as stale.
        let (fail, ok, stale) = bl.apply(vec![d3]);
        assert_eq!((fail.len(), ok), (0, 1));
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("a.rs"));
    }

    #[test]
    fn baseline_ignores_comments_and_blanks() {
        let bl = Baseline::parse("# header\n\na.rs: R1: msg\n");
        assert_eq!(bl.len(), 1);
        assert!(!bl.is_empty());
    }

    #[test]
    fn text_format_matches_cli_shape() {
        let t = render_text(&sample_report());
        assert_eq!(
            t.lines().next().unwrap(),
            "a.rs:3: R1: .unwrap() can \"panic\""
        );
    }
}
