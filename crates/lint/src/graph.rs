//! A conservative name-resolved call graph across all workspace
//! crates, and the R8 untrusted-reachability rule built on it.
//!
//! mx-lint has no type information, so resolution is by *name* with a
//! locality preference, erring toward **over**-approximation: when a
//! call could plausibly reach several same-named functions, edges go to
//! all of them. A missing edge would silently hide a panicky helper
//! from R8; a spurious edge costs at worst a false positive that a
//! reviewed `lint:allow(R8)` can record. The resolution policy:
//!
//! - **bare calls** `helper(…)` — same file first, else same crate,
//!   else every workspace fn with that name;
//! - **path calls** `qual::helper(…)` — `Self::` uses the caller's
//!   enclosing impl type; a known impl/trait type resolves to its
//!   methods; `crate`/`self`/`super` or a crate stem resolve within the
//!   caller's crate; a module stem resolves to that module's file;
//!   anything else (std, core, alloc, …) resolves to nothing — external
//!   code is out of scope by definition;
//! - **method calls** `.helper(…)` — every workspace *method* (fn
//!   inside an `impl`/`trait` block) with that name, but never free
//!   functions, so `.parse()` on a std type does not taint every
//!   workspace fn named `parse`.
//!
//! Known holes, documented rather than papered over: calls made inside
//! macro expansions are invisible (the lexer sees the invocation, not
//! the expansion), function pointers and closures passed as values are
//! not tracked as edges (but a closure's *body* is scanned as part of
//! its enclosing fn, which recovers most of the taint), and trait
//! dispatch resolves by method name rather than receiver type.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::rules::{Diagnostic, FileClass, Rule};
use crate::syntax::{CallKind, FileSyntax, SinkKind};

/// The workspace call graph: every non-test `fn`, with name-resolved
/// call edges.
pub struct CallGraph<'a> {
    files: &'a [FileSyntax],
    /// Global fn id → (file index, fn index within file).
    ids: Vec<(usize, usize)>,
    /// Adjacency: caller id → sorted, deduped callee ids.
    edges: Vec<Vec<usize>>,
}

/// `crates/dns/src/wire.rs` → `dns`; root-package `src/…` → `mxmap`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("mxmap")
}

/// `crates/dns/src/wire.rs` → `wire` (the module stem a path call's
/// qualifier would name).
fn module_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

impl<'a> CallGraph<'a> {
    /// Build the graph over the extracted syntax of every workspace
    /// file. Test fns neither gain nor emit edges.
    pub fn build(files: &'a [FileSyntax]) -> Self {
        let mut ids = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (ki, _) in file.fns.iter().enumerate() {
                ids.push((fi, ki));
            }
        }

        // Name indexes. BTreeMap keeps candidate lists and therefore
        // edge order byte-deterministic.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_file_name: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut stem_files: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            stem_files.entry(module_stem(&file.rel)).or_default().push(fi);
        }
        for (id, &(fi, ki)) in ids.iter().enumerate() {
            let f = &files[fi].fns[ki];
            if f.in_test {
                continue;
            }
            let name = f.name.as_str();
            by_name.entry(name).or_default().push(id);
            by_file_name.entry((fi, name)).or_default().push(id);
            by_crate_name
                .entry((crate_of(&files[fi].rel), name))
                .or_default()
                .push(id);
            if let Some(q) = f.qual.as_deref() {
                by_type_method.entry((q, name)).or_default().push(id);
                methods_by_name.entry(name).or_default().push(id);
            }
        }

        let mut edges = vec![Vec::new(); ids.len()];
        for (id, &(fi, ki)) in ids.iter().enumerate() {
            let caller = &files[fi].fns[ki];
            if caller.in_test {
                continue;
            }
            let krate = crate_of(&files[fi].rel);
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            for call in &caller.calls {
                let name = call.name.as_str();
                match call.kind {
                    CallKind::Bare => {
                        let found = by_file_name
                            .get(&(fi, name))
                            .or_else(|| by_crate_name.get(&(krate, name)))
                            .or_else(|| by_name.get(name));
                        if let Some(v) = found {
                            targets.extend(v.iter().copied());
                        }
                    }
                    CallKind::Path => {
                        let qual = call.qual.as_deref().unwrap_or("");
                        let qual = if qual == "Self" {
                            caller.qual.as_deref().unwrap_or("Self")
                        } else {
                            qual
                        };
                        if let Some(v) = by_type_method.get(&(qual, name)) {
                            targets.extend(v.iter().copied());
                        } else if matches!(qual, "crate" | "self" | "super") || qual == krate {
                            if let Some(v) = by_crate_name.get(&(krate, name)) {
                                targets.extend(v.iter().copied());
                            }
                        } else if let Some(fis) = stem_files.get(qual) {
                            // A module stem (`wire::decode`): prefer the
                            // caller's crate, fall back to any crate
                            // with a module of that name.
                            let same: Vec<usize> = fis
                                .iter()
                                .filter(|&&f2| crate_of(&files[f2].rel) == krate)
                                .copied()
                                .collect();
                            let pick = if same.is_empty() { fis.clone() } else { same };
                            for f2 in pick {
                                if let Some(v) = by_file_name.get(&(f2, name)) {
                                    targets.extend(v.iter().copied());
                                }
                            }
                        }
                        // Unknown qualifier (std::…, core::…): no edge.
                    }
                    CallKind::Method => {
                        if let Some(v) = methods_by_name.get(name) {
                            targets.extend(v.iter().copied());
                        }
                    }
                }
            }
            targets.remove(&id); // self-recursion adds nothing to taint
            edges[id] = targets.into_iter().collect();
        }

        CallGraph { files, ids, edges }
    }

    /// Number of fns in the graph (including test fns, which have no
    /// edges).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the graph contains no fns.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// `file-rel::fn_name` (with the impl type infix for methods).
    pub fn display_name(&self, id: usize) -> String {
        let entry = self
            .ids
            .get(id)
            .and_then(|&(fi, ki)| self.files.get(fi).map(|file| (file, ki)))
            .and_then(|(file, ki)| file.fns.get(ki).map(|f| (file, f)));
        let Some((file, f)) = entry else {
            return format!("fn#{id}");
        };
        match f.qual.as_deref() {
            Some(q) => format!("{}::{}::{}", file.rel, q, f.name),
            None => format!("{}::{}", file.rel, f.name),
        }
    }

    /// Ids of every fn whose name matches, for tests and tools.
    pub fn ids_named(&self, name: &str) -> Vec<usize> {
        (0..self.ids.len())
            .filter(|&id| {
                let (fi, ki) = self.ids[id];
                self.files[fi].fns[ki].name == name
            })
            .collect()
    }

    /// The sorted callee ids of `id` (empty for an out-of-range id).
    pub fn callees(&self, id: usize) -> &[usize] {
        self.edges.get(id).map_or(&[], Vec::as_slice)
    }

    /// BFS from `seeds`; returns (`tainted`, `parent`) where `parent`
    /// chains each reached fn back to its seed. Seeds are visited in
    /// ascending id order so parent choices — and thus diagnostic
    /// messages — are deterministic.
    pub fn reach(&self, seeds: &[usize]) -> (Vec<bool>, Vec<Option<usize>>) {
        let mut tainted = vec![false; self.ids.len()];
        let mut parent = vec![None; self.ids.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted: Vec<usize> = seeds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for s in sorted {
            if !tainted[s] {
                tainted[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for &nxt in &self.edges[cur] {
                if !tainted[nxt] {
                    tainted[nxt] = true;
                    parent[nxt] = Some(cur);
                    queue.push_back(nxt);
                }
            }
        }
        (tainted, parent)
    }

    /// The seed → … → `id` chain as display names (seed first).
    fn chain(&self, parent: &[Option<usize>], id: usize) -> Vec<String> {
        let mut rev = vec![id];
        let mut cur = id;
        while let Some(p) = parent.get(cur).copied().flatten() {
            rev.push(p);
            cur = p;
            if rev.len() > 64 {
                break; // cycles cannot occur (parent forms a tree), but stay bounded
            }
        }
        rev.reverse();
        rev.into_iter().map(|i| self.display_name(i)).collect()
    }
}

/// Seed ids for R8: unrestricted-`pub` fns of `untrusted`-scoped files,
/// plus explicit `entry_points` entries (`path/suffix.rs::fn_name`).
fn r8_seeds(g: &CallGraph, classes: &[FileClass], entry_points: &[String]) -> Vec<usize> {
    let mut seeds = Vec::new();
    for (id, &(fi, ki)) in g.ids.iter().enumerate() {
        let f = &g.files[fi].fns[ki];
        if f.in_test {
            continue;
        }
        if classes[fi].untrusted && f.is_pub {
            seeds.push(id);
            continue;
        }
        let rel = &g.files[fi].rel;
        for ep in entry_points {
            if let Some((file_part, fn_part)) = ep.rsplit_once("::") {
                if f.name == fn_part && rel.ends_with(file_part) {
                    seeds.push(id);
                    break;
                }
            }
        }
    }
    seeds
}

/// Run R8 over the workspace: seed taint at untrusted entry points,
/// propagate through the call graph, and flag panicky constructs and
/// unchecked length arithmetic in every reached fn — except where the
/// per-file rules already police the same construct (R1 in `untrusted`
/// files, R7 in `wire_codecs` files), so no site is reported twice.
///
/// `classes[i]` must be the [`FileClass`] of `files[i]`.
pub fn check_r8(
    files: &[FileSyntax],
    classes: &[FileClass],
    entry_points: &[String],
    out: &mut Vec<Diagnostic>,
) {
    debug_assert_eq!(files.len(), classes.len());
    let g = CallGraph::build(files);
    let seeds = r8_seeds(&g, classes, entry_points);
    let (tainted, parent) = g.reach(&seeds);
    for (id, &(fi, ki)) in g.ids.iter().enumerate() {
        if !tainted[id] {
            continue;
        }
        let f = &files[fi].fns[ki];
        if f.in_test || f.sinks.is_empty() {
            continue;
        }
        let covered_panic = classes[fi].untrusted;
        let covered_arith = classes[fi].wire_codec;
        let mut via = String::new();
        let chain = g.chain(&parent, id);
        if chain.len() > 1 {
            // Show the entry point and, for indirect taint, the last
            // hop; middle hops add noise without aiding the fix.
            via = format!(" via entry `{}`", chain[0]);
            if chain.len() > 2 {
                via.push_str(&format!(" and {} more hop(s)", chain.len() - 2));
            }
        }
        for sink in &f.sinks {
            let covered = match sink.kind {
                SinkKind::Panic => covered_panic,
                SinkKind::Arith => covered_arith,
            };
            if covered {
                continue; // R1/R7 already police this construct here
            }
            out.push(Diagnostic {
                file: files[fi].rel.clone(),
                line: sink.line,
                rule: Rule::R8,
                message: format!(
                    "`{}` is reachable from untrusted input{via}: {}",
                    f.name, sink.message
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::extract_source;

    fn classes_for(files: &[FileSyntax], untrusted: &[&str]) -> Vec<FileClass> {
        files
            .iter()
            .map(|f| FileClass {
                untrusted: untrusted.contains(&f.rel.as_str()),
                wire_codec: false,
                crate_root: false,
                bounded_loops: false,
                deterministic: false,
            })
            .collect()
    }

    #[test]
    fn two_hop_cross_file_taint() {
        let files = vec![
            extract_source(
                "crates/a/src/decode.rs",
                "pub fn decode(b: &[u8]) -> u8 { helper::step(b) }",
            ),
            extract_source(
                "crates/a/src/helper.rs",
                "pub(crate) fn step(b: &[u8]) -> u8 { deep(b) }\n\
                 fn deep(b: &[u8]) -> u8 { b[0] }",
            ),
        ];
        let classes = classes_for(&files, &["crates/a/src/decode.rs"]);
        let mut out = Vec::new();
        check_r8(&files, &classes, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/a/src/helper.rs");
        assert!(out[0].message.contains("`deep`"));
        assert!(out[0].message.contains("decode.rs::decode"));
    }

    #[test]
    fn unreachable_sink_not_flagged() {
        let files = vec![
            extract_source(
                "crates/a/src/decode.rs",
                "pub fn decode(b: &[u8]) -> usize { b.len() }",
            ),
            extract_source(
                "crates/a/src/other.rs",
                "fn island(x: Option<u8>) -> u8 { x.unwrap() }",
            ),
        ];
        let classes = classes_for(&files, &["crates/a/src/decode.rs"]);
        let mut out = Vec::new();
        check_r8(&files, &classes, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn sinks_inside_scoped_files_left_to_r1() {
        // A panicky construct inside the untrusted file itself is R1's
        // finding; R8 stays silent to avoid double-reporting.
        let files = vec![extract_source(
            "crates/a/src/decode.rs",
            "pub fn decode(b: &[u8]) -> u8 { b[0] }",
        )];
        let classes = classes_for(&files, &["crates/a/src/decode.rs"]);
        let mut out = Vec::new();
        check_r8(&files, &classes, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn explicit_entry_points_seed_taint() {
        let files = vec![
            extract_source(
                "crates/net/src/probe.rs",
                "pub fn measure(b: &[u8]) -> u8 { crunch(b) }",
            ),
            extract_source(
                "crates/net/src/math.rs",
                "pub(crate) fn crunch(b: &[u8]) -> u8 { b[1] }",
            ),
        ];
        let classes = classes_for(&files, &[]);
        let mut out = Vec::new();
        check_r8(&files, &classes, &[], &mut out);
        assert!(out.is_empty(), "no scope, no entry points, no findings");
        check_r8(
            &files,
            &classes,
            &["crates/net/src/probe.rs::measure".to_string()],
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/net/src/math.rs");
    }

    #[test]
    fn method_calls_resolve_to_workspace_methods_only() {
        let files = vec![
            extract_source(
                "crates/a/src/decode.rs",
                "pub fn decode(s: &str) -> u32 { s.grind() }",
            ),
            extract_source(
                "crates/a/src/imp.rs",
                "impl Grinder {\n    fn grind(&self) -> u32 { self.0.unwrap() }\n}\n\
                 fn grind_free(x: Option<u32>) -> u32 { x.unwrap() }",
            ),
        ];
        let classes = classes_for(&files, &["crates/a/src/decode.rs"]);
        let mut out = Vec::new();
        check_r8(&files, &classes, &[], &mut out);
        assert_eq!(out.len(), 1, "method resolves, free fn does not: {out:?}");
        assert!(out[0].message.contains("`grind`"));
    }

    #[test]
    fn bare_calls_prefer_same_file() {
        let files = vec![
            extract_source(
                "crates/a/src/decode.rs",
                "pub fn decode(b: &[u8]) -> u8 { helper(b) }\n\
                 fn helper(b: &[u8]) -> u8 { b.len() as u8 }",
            ),
            extract_source(
                "crates/b/src/other.rs",
                "fn helper(x: Option<u8>) -> u8 { x.unwrap() }",
            ),
        ];
        let classes = classes_for(&files, &["crates/a/src/decode.rs"]);
        let mut out = Vec::new();
        check_r8(&files, &classes, &[], &mut out);
        assert!(
            out.is_empty(),
            "same-file helper shadows the cross-crate one: {out:?}"
        );
        let g = CallGraph::build(&files);
        let decode = g.ids_named("decode")[0];
        assert_eq!(g.callees(decode).len(), 1);
    }

    #[test]
    fn self_path_calls_resolve_via_impl_type() {
        let files = vec![extract_source(
            "crates/a/src/decode.rs",
            "impl Msg {\n\
                 pub fn parse(b: &[u8]) -> Msg { Self::inner(b) }\n\
                 fn inner(b: &[u8]) -> Msg { Msg(b[0]) }\n\
             }",
        )];
        let classes = classes_for(&files, &[]);
        let mut out = Vec::new();
        check_r8(
            &files,
            &classes,
            &["crates/a/src/decode.rs::parse".to_string()],
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`inner`"));
    }

    #[test]
    fn test_fns_are_not_seeds_or_targets() {
        let files = vec![extract_source(
            "crates/a/src/decode.rs",
            "pub fn decode(b: &[u8]) -> usize { b.len() }\n\
             #[cfg(test)]\nmod tests {\n\
                 pub fn t(x: Option<u8>) -> u8 { x.unwrap() }\n\
             }",
        )];
        let classes = classes_for(&files, &["crates/a/src/decode.rs"]);
        let mut out = Vec::new();
        check_r8(&files, &classes, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn deterministic_output_order() {
        let src_a = extract_source(
            "crates/a/src/decode.rs",
            "pub fn decode(b: &[u8]) -> u8 { one(b) + two(b) }",
        );
        let src_b = extract_source(
            "crates/a/src/h.rs",
            "pub(crate) fn one(b: &[u8]) -> u8 { b[0] }\n\
             pub(crate) fn two(b: &[u8]) -> u8 { b[1] }",
        );
        let files = vec![src_a, src_b];
        let classes = classes_for(&files, &["crates/a/src/decode.rs"]);
        let mut out1 = Vec::new();
        check_r8(&files, &classes, &[], &mut out1);
        let mut out2 = Vec::new();
        check_r8(&files, &classes, &[], &mut out2);
        let render = |v: &Vec<Diagnostic>| {
            v.iter()
                .map(|d| format!("{}:{} {}", d.file, d.line, d.message))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&out1), render(&out2));
        assert_eq!(out1.len(), 2);
    }
}
