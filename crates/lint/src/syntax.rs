//! A lightweight syntactic layer over the lexer: item extraction with
//! spans.
//!
//! The per-file rules (R1–R7, R9) are happy walking raw tokens, but the
//! crate-wide R8 reachability rule needs to know *which function* a
//! token belongs to and *which functions that function calls*. This
//! module recovers exactly that much structure — no types, no
//! expression trees:
//!
//! - every `fn` item (free functions, inherent/trait methods, trait
//!   default bodies, nested fns) with its name, line span, visibility,
//!   and enclosing `impl`/`trait` type for `Type::method` resolution;
//! - the call sites inside each body, classified as bare calls
//!   (`helper(…)`), path calls (`wire::decode(…)`, `Name::parse(…)`),
//!   or method calls (`.parse(…)`);
//! - the R8 *sinks* inside each body: the same panicky constructs R1
//!   flags and the same unchecked length arithmetic R7 flags, detected
//!   with the identical predicates so the two layers can never drift.
//!
//! Deliberate blind spots, chosen conservative-and-documented over
//! clever: macro bodies are not expanded (a call hidden behind
//! `dns_name!` is invisible), closures attribute their calls to the
//! enclosing `fn` (which over-approximates: defining a closure taints
//! as if it were called), and `#[cfg(test)]` items are skipped entirely.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules;

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — an unqualified call.
    Bare,
    /// `qual::helper(…)` — the last two path segments are kept.
    Path,
    /// `.helper(…)` — a method call on an unknown receiver type.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee classification.
    pub kind: CallKind,
    /// The callee's own name (last path segment).
    pub name: String,
    /// The qualifying segment for [`CallKind::Path`] (`wire` in
    /// `wire::decode`, `Name` in `Name::parse`, `Self`, …).
    pub qual: Option<String>,
    /// 1-based source line of the callee token.
    pub line: u32,
}

/// What kind of R8 sink a construct is, deciding which per-file rule
/// already covers it (so R8 only reports where R1/R7 cannot see).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// A panicky construct — R1's beat inside `untrusted` files.
    Panic,
    /// Unchecked length arithmetic — R7's beat inside `wire_codecs`.
    Arith,
}

/// One R8 sink inside a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Which per-file rule would cover this construct in-scope.
    pub kind: SinkKind,
    /// 1-based source line.
    pub line: u32,
    /// The same message text R1/R7 would print.
    pub message: String,
}

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when the fn is a method or
    /// trait default body — enables `Type::method` call resolution.
    pub qual: Option<String>,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`) —
    /// the visibility that makes a fn a cross-crate entry point.
    pub is_pub: bool,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// 1-based line of the fn's name.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Call sites in the body, in source order.
    pub calls: Vec<Call>,
    /// R8 sinks in the body, in source order.
    pub sinks: Vec<Sink>,
}

/// The extracted syntax of one source file.
#[derive(Debug, Clone, Default)]
pub struct FileSyntax {
    /// Repo-relative display path.
    pub rel: String,
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnDef>,
}

/// Extract the [`FileSyntax`] of one lexed file.
pub fn extract(rel: &str, lexed: &Lexed) -> FileSyntax {
    let toks = &lexed.tokens;
    let in_test = rules::mark_test_regions(toks);
    let impls = impl_spans(toks);
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            // `fn(u8) -> u8` pointer types and malformed fragments.
            i += 1;
            continue;
        };
        let Some((body_start, body_end)) = fn_body_span(toks, i) else {
            // Bodyless trait/extern declaration: nothing to analyze.
            i += 2;
            continue;
        };
        let qual = impls
            .iter()
            .filter(|(s, e, _)| *s < i && i < *e)
            .min_by_key(|(s, e, _)| e - s)
            .map(|(_, _, name)| name.clone());
        let (calls, sinks) = scan_body(toks, body_start, body_end, &in_test);
        fns.push(FnDef {
            name: name_tok.text.clone(),
            qual,
            is_pub: is_pub_fn(toks, i),
            in_test: in_test[i],
            line: name_tok.line,
            end_line: toks[body_end].line,
            calls,
            sinks,
        });
        // Continue from just past the name so nested fns are found too.
        i += 2;
    }
    FileSyntax {
        rel: rel.to_string(),
        fns,
    }
}

/// Convenience for tests and tools: extract straight from source text.
pub fn extract_source(rel: &str, src: &str) -> FileSyntax {
    extract(rel, &crate::lexer::lex(src))
}

/// The token span of the fn's body: from its opening `{` (the first at
/// bracket depth 0 after the signature) to the matching `}`. `None` for
/// bodyless declarations. Shared with R9, which scopes `let`-binding
/// tracking to the enclosing fn body.
pub(crate) fn fn_body_span(toks: &[Tok], fn_idx: usize) -> Option<(usize, usize)> {
    let mut j = fn_idx + 1;
    let mut paren = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if paren == 0 => break,
            ";" if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let start = j;
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(start) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, k));
                }
            }
            _ => {}
        }
    }
    None
}

/// Is the fn at `fn_idx` unrestricted-`pub`? Walks back over the legal
/// modifier tokens (`const`, `async`, `unsafe`, `extern "C"`).
fn is_pub_fn(toks: &[Tok], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        let p = &toks[k - 1];
        let modifier = matches!(p.text.as_str(), "const" | "async" | "unsafe" | "extern")
            || p.kind == TokKind::Str;
        if modifier {
            k -= 1;
            continue;
        }
        // `pub(crate)`/`pub(super)` close with `)` right before the
        // modifiers; restricted visibility is not an entry point.
        return p.text == "pub";
    }
    false
}

/// Every `impl`/`trait` block: `(open_tok, close_tok, type_name)`.
///
/// For `impl Trait for Type` the *implementing* type is recorded — a
/// call `Type::method(…)` is what appears at call sites. Generic
/// parameter lists are skipped (with a `->` guard so `Fn() -> T` bounds
/// do not unbalance the angle count), and `where` clauses stop name
/// collection so bound types are never mistaken for the impl target.
fn impl_spans(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && (t.text == "impl" || t.text == "trait")) {
            i += 1;
            continue;
        }
        let is_trait = t.text == "trait";
        let mut j = i + 1;
        // Skip the `<…>` generic parameter list, if any.
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" if j > 0 && toks[j - 1].text == "-" => {}
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Collect the target name: last path ident at angle depth 0,
        // restarting after `for`, stopping at `where`/`{`.
        let mut name = String::new();
        let mut angle = 0i32;
        let mut in_where = false;
        let mut body_open = None;
        while j < toks.len() {
            let tj = &toks[j];
            match tj.text.as_str() {
                "<" => angle += 1,
                ">" if j > 0 && toks[j - 1].text == "-" => {}
                ">" => angle = (angle - 1).max(0),
                "{" if angle == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if angle == 0 => break,
                "for" if angle == 0 => name.clear(),
                "where" if angle == 0 => in_where = true,
                _ => {
                    if angle == 0
                        && !in_where
                        && tj.kind == TokKind::Ident
                        && !matches!(tj.text.as_str(), "dyn" | "unsafe" | "const")
                    {
                        name = tj.text.clone();
                    }
                }
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j.max(i + 1);
            continue;
        };
        if is_trait {
            // For traits the *name* is right after the keyword; the
            // path-collection above may have wandered into supertrait
            // bounds, so re-read it directly.
            if let Some(n) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                name = n.text.clone();
            }
        }
        let mut depth = 0i32;
        let mut close = open;
        for (k, tk) in toks.iter().enumerate().skip(open) {
            match tk.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        if !name.is_empty() {
            out.push((open, close, name));
        }
        i = open + 1;
    }
    out
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "let", "else", "as",
    "where", "impl", "dyn", "use", "pub", "break", "continue",
];

/// Collect call sites and R8 sinks from a body token range.
fn scan_body(
    toks: &[Tok],
    body_start: usize,
    body_end: usize,
    in_test: &[bool],
) -> (Vec<Call>, Vec<Sink>) {
    let mut calls = Vec::new();
    let mut sinks = Vec::new();
    for k in body_start..=body_end.min(toks.len().saturating_sub(1)) {
        if in_test[k] {
            continue;
        }
        let t = &toks[k];
        // Calls: an identifier directly followed by `(`.
        if t.kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.text == "(")
            && !CALL_KEYWORDS.contains(&t.text.as_str())
        {
            let prev = k.checked_sub(1).map(|j| &toks[j]);
            match prev.map(|p| p.text.as_str()) {
                Some(".") => calls.push(Call {
                    kind: CallKind::Method,
                    name: t.text.clone(),
                    qual: None,
                    line: t.line,
                }),
                Some("fn") => {} // a definition, not a call
                Some(":")
                    if k >= 3
                        && toks[k - 2].text == ":"
                        && toks[k - 3].kind == TokKind::Ident =>
                {
                    calls.push(Call {
                        kind: CallKind::Path,
                        name: t.text.clone(),
                        qual: Some(toks[k - 3].text.clone()),
                        line: t.line,
                    });
                }
                _ => calls.push(Call {
                    kind: CallKind::Bare,
                    name: t.text.clone(),
                    qual: None,
                    line: t.line,
                }),
            }
        }
        // Sinks: exactly the constructs R1 and R7 flag, via the shared
        // predicates.
        if let Some(message) = rules::panic_sink_at(toks, k) {
            sinks.push(Sink {
                kind: SinkKind::Panic,
                line: t.line,
                message,
            });
        }
        if let Some(message) = rules::arith_sink_at(toks, k) {
            sinks.push(Sink {
                kind: SinkKind::Arith,
                line: t.line,
                message,
            });
        }
    }
    (calls, sinks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_free_fns_methods_and_visibility() {
        let s = extract_source(
            "t.rs",
            "pub fn entry(b: &[u8]) -> u8 { helper(b) }\n\
             fn helper(b: &[u8]) -> u8 { b.len() as u8 }\n\
             pub(crate) fn internal() {}\n\
             struct S;\n\
             impl S {\n\
                 pub fn method(&self) { other::call(); }\n\
             }",
        );
        assert_eq!(s.fns.len(), 4);
        assert!(s.fns[0].is_pub && s.fns[0].name == "entry");
        assert!(!s.fns[1].is_pub);
        assert!(!s.fns[2].is_pub, "pub(crate) is not an entry point");
        let m = &s.fns[3];
        assert_eq!(m.qual.as_deref(), Some("S"));
        assert_eq!(m.calls.len(), 1);
        assert_eq!(m.calls[0].kind, CallKind::Path);
        assert_eq!(m.calls[0].qual.as_deref(), Some("other"));
    }

    #[test]
    fn classifies_call_kinds() {
        let s = extract_source(
            "t.rs",
            "fn f(x: &str) { bare(); x.method(); mod_or_type::path(); }",
        );
        let kinds: Vec<CallKind> = s.fns[0].calls.iter().map(|c| c.kind).collect();
        assert_eq!(kinds, [CallKind::Bare, CallKind::Method, CallKind::Path]);
    }

    #[test]
    fn trait_impl_records_implementing_type() {
        let s = extract_source(
            "t.rs",
            "impl std::fmt::Display for Thing {\n    fn fmt(&self) { self.render(); }\n}",
        );
        assert_eq!(s.fns[0].qual.as_deref(), Some("Thing"));
    }

    #[test]
    fn generic_impl_target_not_confused_with_parameters() {
        let s = extract_source(
            "t.rs",
            "impl<K: Ord, V> Table<K, V> {\n    fn get(&self) {}\n}\n\
             impl<F: Fn() -> usize> Runner<F> {\n    fn run(&self) {}\n}",
        );
        assert_eq!(s.fns[0].qual.as_deref(), Some("Table"));
        assert_eq!(s.fns[1].qual.as_deref(), Some("Runner"));
    }

    #[test]
    fn sinks_use_rule_predicates_and_skip_tests() {
        let s = extract_source(
            "t.rs",
            "fn f(x: Option<u8>, b: &[u8], n: usize, pos: usize) -> u8 {\n\
                 let _ = pos + n;\n\
                 x.unwrap() + b[0]\n\
             }\n\
             #[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) -> u8 { x.unwrap() }\n}",
        );
        let f = &s.fns[0];
        assert_eq!(
            f.sinks.iter().filter(|s| s.kind == SinkKind::Arith).count(),
            1
        );
        // unwrap + indexing (the `+` between them has no length operand).
        assert_eq!(
            f.sinks.iter().filter(|s| s.kind == SinkKind::Panic).count(),
            2
        );
        assert!(s.fns[1].in_test, "test fns are marked");
        }

    #[test]
    fn bodyless_and_nested_fns() {
        let s = extract_source(
            "t.rs",
            "trait T { fn decl(&self); fn dflt(&self) { self.decl(); } }\n\
             fn outer() { fn inner() { leaf(); } inner(); }",
        );
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["dflt", "outer", "inner"]);
        assert_eq!(s.fns[0].qual.as_deref(), Some("T"));
        // outer's scan covers inner's body too (conservative).
        assert!(s.fns[1].calls.iter().any(|c| c.name == "leaf"));
        assert!(s.fns[2].calls.iter().any(|c| c.name == "leaf"));
    }
}
