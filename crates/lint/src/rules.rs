//! The lint rules.
//!
//! All checks are *lexical*: they walk the token stream from
//! [`crate::lexer`] rather than a syntax tree. That keeps the tool
//! dependency-free and the rules easy to audit, at the cost of a few
//! documented heuristics (see `R2`). Code inside `#[cfg(test)]` items is
//! exempt — panicking on a failed test assertion is the point of a test.
//!
//! | Rule | Scope | What it enforces |
//! |------|-------|------------------|
//! | R1   | untrusted-input modules | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` and no direct slice indexing |
//! | R2   | wire-codec modules      | no bare narrowing `as` casts (use `try_from` or an explicit mask) |
//! | R3   | untrusted-input modules | `with_capacity`/`reserve`/`resize` and direct recursion must be bounded by a named `MAX_*` constant |
//! | R4   | crate roots             | the agreed `#![deny(...)]` lint tier header is present |
//! | R5   | bounded-loop modules    | every `loop`/`while` must tie its exit to a reader position or a named `MAX_*` budget |
//! | R6   | all library code        | no `Result<_, String>` — errors must be typed enums, not strings |
//! | R7   | wire-codec modules      | no bare `+`/`*` on length-typed values (use `checked_add`/`saturating_*`) |
//! | R8   | whole workspace         | no panicky/unchecked code *reachable* from untrusted decode entry points, even outside the scoped files (needs the call graph — see [`crate::graph`]) |
//! | R9   | deterministic modules   | no nondeterminism sources feeding Stable-classed output: hash-order iteration, host clocks, env reads, thread identity, pointer addresses, `RandomState` |
//! | R0   | everywhere              | `lint:allow` hygiene: known rule, written reason, actually used |

use crate::lexer::{Lexed, Tok, TokKind};

/// Rule identifiers, used in diagnostics and `lint:allow(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `lint:allow` hygiene (bad rule name, missing reason, unused).
    R0,
    /// Panic-freedom in untrusted-input modules.
    R1,
    /// No bare narrowing casts in wire codecs.
    R2,
    /// Bounded allocation and recursion in untrusted-input modules.
    R3,
    /// Crate-level lint tier header.
    R4,
    /// Bounded loops: `loop`/`while` exits tied to a position or budget.
    R5,
    /// Typed errors: no `Result<_, String>` in library signatures.
    R6,
    /// Checked length arithmetic: no bare `+`/`*` on length-typed values
    /// in wire codecs.
    R7,
    /// Untrusted reachability: panicky or unchecked code reachable from
    /// the public decode entry points of untrusted modules, anywhere in
    /// the workspace (crate-wide, driven by the call graph).
    R8,
    /// Determinism: no nondeterminism sources in modules that produce
    /// Stable-classed output (hash-order iteration, host clocks, env
    /// reads, thread identity, pointer addresses, `RandomState`).
    R9,
}

impl Rule {
    /// The stable textual ID (`R1`…) used on the CLI and in directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R0 => "R0",
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
        }
    }

    /// Parse a textual rule ID.
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "R0" => Some(Rule::R0),
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            "R8" => Some(Rule::R8),
            "R9" => Some(Rule::R9),
            _ => None,
        }
    }

    /// Every rule, in ID order (the SARIF reporter enumerates these).
    pub const ALL: &'static [Rule] = &[
        Rule::R0,
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
    ];

    /// One-line summary used by the machine-readable reporters.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::R0 => "lint:allow hygiene: known rule, written reason, actually used",
            Rule::R1 => "panic-freedom in untrusted-input modules",
            Rule::R2 => "no bare narrowing casts in wire codecs",
            Rule::R3 => "bounded allocation and recursion in untrusted-input modules",
            Rule::R4 => "crate-level lint tier header",
            Rule::R5 => "loop exits tied to a reader position or MAX_* budget",
            Rule::R6 => "typed errors: no Result<_, String> in library code",
            Rule::R7 => "checked length arithmetic in wire codecs",
            Rule::R8 => "no panicky/unchecked code reachable from untrusted decode entry points",
            Rule::R9 => "no nondeterminism sources feeding Stable-classed output",
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding, addressed `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Per-file rule applicability, derived from [`crate::LintConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// R1 + R3 apply: the module parses untrusted wire/text input.
    pub untrusted: bool,
    /// R2 applies: the module en/decodes binary or line protocols.
    pub wire_codec: bool,
    /// R4 applies: the file is a crate root (`lib.rs`).
    pub crate_root: bool,
    /// R5 applies: loops in this module must visibly bound their exit
    /// (untrusted parsers plus the retrying acquisition loops).
    pub bounded_loops: bool,
    /// R9 applies: the module produces Stable-classed output, so its
    /// code must not read nondeterminism sources.
    pub deterministic: bool,
}

/// A parsed `lint:allow` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being allowed.
    pub rule: Option<Rule>,
    /// The raw rule text as written.
    pub rule_text: String,
    /// Written justification (text after `:`), if any.
    pub reason: String,
    /// First source line the directive *covers* (its own line when
    /// trailing, the next line when it stands alone, the declaration
    /// line for `lint:allow-next-fn`).
    pub covers_line: u32,
    /// Last covered line, inclusive. Equal to `covers_line` for the
    /// single-line form; the closing-brace line of the suppressed item
    /// for `lint:allow-next-fn`.
    pub covers_end: u32,
    /// The line the directive itself is written on.
    pub at_line: u32,
}

impl Allow {
    /// Does this directive cover `line`?
    pub fn covers(&self, line: u32) -> bool {
        self.covers_line <= line && line <= self.covers_end
    }
}

/// Extract `// lint:allow(R1): reason` directives from the comments.
///
/// Doc comments never carry directives (they *describe* the syntax, as
/// this one does), and the directive must open the comment — a mention
/// mid-sentence is prose, not an escape hatch.
///
/// Two forms exist. The single-line form covers its own line when
/// trailing and the next line when it stands alone. The span form
/// `// lint:allow-next-fn(R1): reason` covers the whole next `fn` (or
/// `macro_rules!`) item through its closing brace — one directive for a
/// function-sized cluster instead of a pile of per-line escapes.
pub fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let is_doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let body = c
            .text
            .trim_start_matches("//")
            .trim_start_matches("/*")
            .trim_start();
        let (rest, next_fn) = if let Some(r) = body.strip_prefix("lint:allow(") {
            (r, false)
        } else if let Some(r) = body.strip_prefix("lint:allow-next-fn(") {
            (r, true)
        } else {
            continue;
        };
        let (covers_line, covers_end) = if next_fn {
            // Covers the next fn/macro_rules item entirely; when none
            // follows, the empty cover makes the directive unused (R0).
            next_fn_span(lexed, c.line).unwrap_or((c.line + 1, c.line + 1))
        } else if c.trailing {
            (c.line, c.line)
        } else {
            (c.line + 1, c.line + 1)
        };
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                rule: None,
                rule_text: rest.to_string(),
                reason: String::new(),
                covers_line,
                covers_end,
                at_line: c.line,
            });
            continue;
        };
        let rule_text = rest[..close].to_string();
        let tail = &rest[close + 1..];
        let reason = tail
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        out.push(Allow {
            rule: Rule::parse(&rule_text),
            rule_text,
            reason,
            covers_line,
            covers_end,
            at_line: c.line,
        });
    }
    out
}

/// The line span of the first `fn` or `macro_rules!` item starting
/// after `after_line`: from its keyword line through its closing-brace
/// line. `None` for bodyless declarations or when no item follows.
fn next_fn_span(lexed: &Lexed, after_line: u32) -> Option<(u32, u32)> {
    let toks = &lexed.tokens;
    let start = toks
        .iter()
        .position(|t| {
            t.line > after_line
                && t.kind == TokKind::Ident
                && (t.text == "fn" || t.text == "macro_rules")
        })?;
    // The body opens at the first `{` at bracket depth 0; a `;` first
    // means a bodyless trait/extern declaration with nothing to cover.
    let mut paren = 0i32;
    let mut j = start + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if paren == 0 => break,
            ";" if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    let mut depth = 0i32;
    for t in toks.iter().skip(j) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((toks[start].line, t.line));
                }
            }
            _ => {}
        }
    }
    None
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [0; 4]`, `=> [a, b]` …).
const NON_EXPR_IDENTS: &[&str] = &[
    "return", "break", "continue", "else", "in", "if", "while", "match", "move", "mut", "ref",
    "let", "const", "static", "as", "dyn", "impl", "where", "use", "pub", "fn", "enum", "struct",
    "type", "trait", "mod", "unsafe", "box", "yield",
];

/// Methods whose bare call panics on the error/none path.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that abort at runtime.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Allocation methods whose argument must be bounded (R3).
const ALLOC_METHODS: &[&str] = &["with_capacity", "reserve", "resize"];

/// Narrowing integer targets for R2.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark a value as length-typed for R7: a
/// reader position, a field length, or an element count decoded from
/// the wire.
const LEN_IDENT_MARKERS: &[&str] = &[
    "len", "count", "size", "pos", "offset", "cursor", "idx", "index",
];

/// A panicky construct (R1/R8 sink) at token `i`, if any: `.unwrap()`
/// and friends, aborting macros, or a direct index expression.
pub(crate) fn panic_sink_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = toks.get(i)?;
    let prev = i.checked_sub(1).map(|j| &toks[j]);
    let next = toks.get(i + 1);
    if t.kind == TokKind::Ident
        && PANICKY_METHODS.contains(&t.text.as_str())
        && prev.is_some_and(|p| p.text == ".")
        && next.is_some_and(|n| n.text == "(")
    {
        return Some(format!(
            ".{}() can panic on malformed input; return a typed error instead",
            t.text
        ));
    }
    if t.kind == TokKind::Ident
        && PANICKY_MACROS.contains(&t.text.as_str())
        && next.is_some_and(|n| n.text == "!")
        && !prev.is_some_and(|p| p.text == "_" || p.text == "debug_assert")
    {
        return Some(format!("{}! aborts the scanner on malformed input", t.text));
    }
    if t.text == "[" && prev.is_some_and(|p| is_expression_end(p)) {
        return Some(
            "direct indexing can panic; use .get()/.get_mut() or split_at_checked".into(),
        );
    }
    None
}

/// An unchecked length-arithmetic site (R7/R8 sink) at token `i`, if
/// any: a bare `+`/`*` with a length-typed operand. Wire lengths come
/// straight off untrusted bytes, so the arithmetic must be visibly
/// overflow-proof. Exemptions: a literal operand (bounded growth like
/// `pos + 2` cannot overflow a reader position), and lines already
/// using a checked/saturating/wrapping API.
pub(crate) fn arith_sink_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = toks.get(i)?;
    let prev = i.checked_sub(1).map(|j| &toks[j]);
    let next = toks.get(i + 1);
    if t.kind == TokKind::Punct
        && (t.text == "+" || t.text == "*")
        && prev.is_some_and(|p| is_expression_end(p))
        && next.is_some_and(|n| is_expression_start(n))
        && (prev.is_some_and(|p| is_length_ident(p)) || next.is_some_and(|n| is_length_ident(n)))
        && !prev.is_some_and(|p| matches!(p.kind, TokKind::Int | TokKind::Float))
        && !next.is_some_and(|n| matches!(n.kind, TokKind::Int | TokKind::Float))
        && !line_uses_overflow_api(toks, i)
    {
        let fix = if t.text == "+" {
            "checked_add or saturating_add"
        } else {
            "checked_mul or saturating_mul"
        };
        return Some(format!(
            "bare `{}` on a length-typed value may overflow; use {fix}",
            t.text
        ));
    }
    None
}

/// Run every applicable per-file rule over one lexed file. R8 is the
/// one rule not driven from here: it needs the whole-workspace call
/// graph, so [`crate::lint_workspace_with`] runs it separately.
pub fn check(file: &str, lexed: &Lexed, class: FileClass, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    let in_test = mark_test_regions(toks);

    if class.crate_root {
        check_r4(file, lexed, out);
    }
    // R6 applies to *every* linted library file, so it runs before the
    // untrusted/wire-codec gate below.
    check_r6(file, toks, &in_test, out);
    if class.bounded_loops {
        check_r5_loops(file, toks, &in_test, out);
    }
    if class.deterministic {
        check_r9(file, toks, &in_test, out);
    }
    if !(class.untrusted || class.wire_codec) {
        return;
    }

    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        let next = toks.get(i + 1);

        if class.untrusted {
            // R1: panicking methods/macros and direct indexing.
            if let Some(message) = panic_sink_at(toks, i) {
                out.push(Diagnostic {
                    file: file.into(),
                    line: t.line,
                    rule: Rule::R1,
                    message,
                });
            }
            // R3: unbounded allocation sized by a runtime value.
            if t.kind == TokKind::Ident
                && ALLOC_METHODS.contains(&t.text.as_str())
                && next.is_some_and(|n| n.text == "(")
            {
                if let Some(d) = check_r3_alloc(file, toks, i) {
                    out.push(d);
                }
            }
        }

        // R7: bare `+`/`*` where an operand is length-typed.
        if class.wire_codec {
            if let Some(message) = arith_sink_at(toks, i) {
                out.push(Diagnostic {
                    file: file.into(),
                    line: t.line,
                    rule: Rule::R7,
                    message,
                });
            }
        }

        if class.wire_codec
            && t.kind == TokKind::Ident
            && t.text == "as"
            && next.is_some_and(|n| {
                n.kind == TokKind::Ident && NARROW_TARGETS.contains(&n.text.as_str())
            })
            && !cast_is_masked_or_const(toks, i)
        {
            let target = next.map(|n| n.text.clone()).unwrap_or_default();
            out.push(Diagnostic {
                file: file.into(),
                line: t.line,
                rule: Rule::R2,
                message: format!(
                    "bare `as {target}` may truncate; use {target}::try_from or mask explicitly"
                ),
            });
        }
    }

    if class.untrusted {
        check_r3_recursion(file, toks, &in_test, out);
    }
}

/// True when a token can end an expression, making a following `[` an
/// index operation.
fn is_expression_end(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !NON_EXPR_IDENTS.contains(&t.text.as_str()),
        TokKind::Int | TokKind::Float | TokKind::Str => true,
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

/// True when a token can start an expression, making a preceding `+`
/// or `*` a binary operator rather than `+=` or a dereference.
fn is_expression_start(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !NON_EXPR_IDENTS.contains(&t.text.as_str()),
        TokKind::Int | TokKind::Float | TokKind::Str => true,
        TokKind::Punct => matches!(t.text.as_str(), "("),
        _ => false,
    }
}

/// Is this identifier length-typed in the R7 sense?
fn is_length_ident(t: &Tok) -> bool {
    if t.kind != TokKind::Ident {
        return false;
    }
    let lower = t.text.to_ascii_lowercase();
    LEN_IDENT_MARKERS.iter().any(|m| lower.contains(m))
}

/// R7 exemption: the operator's line already reaches for an
/// overflow-aware API, so the author has visibly considered the bound.
fn line_uses_overflow_api(toks: &[Tok], op_idx: usize) -> bool {
    let line = toks.get(op_idx).map(|t| t.line).unwrap_or(0);
    let on_line = |t: &&Tok| t.line == line;
    let aware = |t: &&Tok| {
        t.kind == TokKind::Ident
            && (t.text.starts_with("checked_")
                || t.text.starts_with("saturating_")
                || t.text.starts_with("wrapping_"))
    };
    toks.get(..op_idx)
        .unwrap_or_default()
        .iter()
        .rev()
        .take_while(on_line)
        .any(|t| aware(&t))
        || toks
            .get(op_idx..)
            .unwrap_or_default()
            .iter()
            .take_while(on_line)
            .any(|t| aware(&t))
}

/// R2 exemptions: the cast source is a literal constant, or the same
/// line applies an explicit mask (`& 0x3F`) before casting. Lexical
/// heuristic, documented in the crate README.
fn cast_is_masked_or_const(toks: &[Tok], as_idx: usize) -> bool {
    if as_idx == 0 {
        return false;
    }
    let prev = &toks[as_idx - 1];
    if matches!(prev.kind, TokKind::Int | TokKind::Float) {
        return true;
    }
    let line = toks[as_idx].line;
    let mut j = as_idx;
    while j > 0 && toks[j - 1].line == line {
        j -= 1;
        if toks[j].text == "&" {
            let lit_next = toks
                .get(j + 1)
                .is_some_and(|n| matches!(n.kind, TokKind::Int));
            let lit_prev = j
                .checked_sub(1)
                .and_then(|k| toks.get(k))
                .is_some_and(|p| matches!(p.kind, TokKind::Int));
            if lit_next || lit_prev {
                return true;
            }
        }
    }
    false
}

/// R3 for allocation calls: the size argument must be a literal, or
/// mention a named `MAX_*` bound (directly or via `.min(MAX_*)`).
fn check_r3_alloc(file: &str, toks: &[Tok], call_idx: usize) -> Option<Diagnostic> {
    let open = call_idx + 1;
    debug_assert_eq!(toks.get(open).map(|t| t.text.as_str()), Some("("));
    let mut depth = 0usize;
    let mut has_ident = false;
    let mut has_bound = false;
    for t in toks.iter().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            if t.text.starts_with("MAX_") || t.text == "min" || t.text == "clamp" {
                has_bound = true;
            } else if t.text != "self" && t.text != "len" && t.text != "capacity" {
                has_ident = true;
            }
        }
    }
    if has_ident && !has_bound {
        Some(Diagnostic {
            file: file.into(),
            line: toks[call_idx].line,
            rule: Rule::R3,
            message: format!(
                "{}() sized by a runtime value without a named MAX_* bound",
                toks[call_idx].text
            ),
        })
    } else {
        None
    }
}

/// R3 for recursion: a function that calls itself must mention a
/// `MAX_*` depth bound somewhere in its body.
fn check_r3_recursion(file: &str, toks: &[Tok], in_test: &[bool], out: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" && !in_test[i] {
            if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let name = name_tok.text.clone();
                // Find the body: first `{` at bracket depth 0 (a `;`
                // first means a bodyless trait/extern declaration).
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body_start = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "{" if paren == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        ";" if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(start) = body_start {
                    let mut depth = 0i32;
                    let mut end = start;
                    for (k, t) in toks.iter().enumerate().skip(start) {
                        match t.text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    end = k;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    let body = &toks[start..=end.min(toks.len() - 1)];
                    // A self-call is a *bare* `name(` — a `.name(` is a
                    // method on some other receiver and `Path::name(` a
                    // different item that happens to share the name.
                    let recurses = (1..body.len().saturating_sub(1)).any(|w| {
                        body[w].kind == TokKind::Ident
                            && body[w].text == name
                            && body[w + 1].text == "("
                            && body[w - 1].text != "."
                            && body[w - 1].text != ":"
                    });
                    let bounded = body
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text.starts_with("MAX_"));
                    if recurses && !bounded {
                        out.push(Diagnostic {
                            file: file.into(),
                            line: name_tok.line,
                            rule: Rule::R3,
                            message: format!(
                                "fn {name} recurses without a named MAX_* depth bound"
                            ),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// Identifier fragments that signal a loop's exit is tied to forward
/// progress through input (a reader position) or an explicit budget.
const LOOP_BOUND_MARKERS: &[&str] = &[
    "pos", "idx", "index", "cursor", "offset", "remaining", "len", "count", "depth", "attempt",
    "round", "iter", "budget",
];

/// One-letter loop counters also count as positions (`while i < n`).
const LOOP_COUNTER_IDENTS: &[&str] = &["i", "j", "k", "n", "m"];

/// Does this token name something that bounds a loop?
fn is_loop_bound_ident(t: &Tok) -> bool {
    if t.kind != TokKind::Ident {
        return false;
    }
    let s = t.text.as_str();
    if s.starts_with("MAX_") || LOOP_COUNTER_IDENTS.contains(&s) {
        return true;
    }
    let lower = s.to_ascii_lowercase();
    LOOP_BOUND_MARKERS.iter().any(|m| lower.contains(m))
}

/// R5: every `loop` / `while` in a bounded-loop module must visibly tie
/// its exit to a reader position or a named `MAX_*` budget.
///
/// A `while` condition must mention a position/budget identifier; a bare
/// `loop` must mention one somewhere in its body (where the `break`
/// guard lives). `while let` is exempt: it is driven by an
/// Option-yielding expression that the pattern itself drains. Lexical
/// heuristic — the point is that a reviewer can see the bound, not that
/// the tool can prove termination.
fn check_r5_loops(file: &str, toks: &[Tok], in_test: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        match toks[i].text.as_str() {
            "while" => {
                if toks.get(i + 1).is_some_and(|t| t.text == "let") {
                    continue;
                }
                // The condition runs to the body `{` at bracket depth 0.
                let mut depth = 0i32;
                let mut bounded = false;
                let mut j = i + 1;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    if is_loop_bound_ident(&toks[j]) {
                        bounded = true;
                    }
                    j += 1;
                }
                if !bounded {
                    out.push(Diagnostic {
                        file: file.into(),
                        line: toks[i].line,
                        rule: Rule::R5,
                        message: "while loop exit is not tied to a reader position or MAX_* budget"
                            .into(),
                    });
                }
            }
            "loop" => {
                let Some(start) = toks.get(i + 1).filter(|t| t.text == "{").map(|_| i + 1) else {
                    continue;
                };
                let mut depth = 0i32;
                let mut bounded = false;
                for (k, t) in toks.iter().enumerate().skip(start) {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    // An iterator `.next()` call consumes input each
                    // pass, which bounds the loop by the input length.
                    let drains = t.text == "next"
                        && k > 0
                        && toks[k - 1].text == "."
                        && toks.get(k + 1).is_some_and(|n| n.text == "(");
                    if is_loop_bound_ident(t) || drains {
                        bounded = true;
                    }
                }
                if !bounded {
                    out.push(Diagnostic {
                        file: file.into(),
                        line: toks[i].line,
                        rule: Rule::R5,
                        message:
                            "bare loop has no reader-position or MAX_* budget guarding its breaks"
                                .into(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// R6: `Result<_, String>` in library code. Stringly-typed errors can't
/// be matched on by callers, so failure modes silently collapse into one
/// bucket; every fallible library API must return a typed error enum.
///
/// Lexically: an `Ident("Result")` followed by `<`, whose *second*
/// type parameter (tokens after the first angle-depth-1 comma) is
/// exactly `String` or `std::string::String`. `->` arrows inside fn
/// types are skipped so their `>` does not unbalance the depth count.
fn check_r6(file: &str, toks: &[Tok], in_test: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if in_test[i]
            || toks[i].kind != TokKind::Ident
            || toks[i].text != "Result"
            || !toks.get(i + 1).is_some_and(|t| t.text == "<")
        {
            continue;
        }
        let mut depth = 1i32;
        let mut j = i + 2;
        let mut comma_at = None;
        while j < toks.len() && depth > 0 {
            let prev_is_dash = toks.get(j.wrapping_sub(1)).is_some_and(|p| p.text == "-");
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" if prev_is_dash => {} // `->` arrow, not a closing bracket
                ">" => depth -= 1,
                "," if depth == 1 => {
                    if comma_at.is_none() {
                        comma_at = Some(j);
                    }
                }
                ";" | "{" => break, // ran off the type — was a comparison
                _ => {}
            }
            j += 1;
        }
        let (Some(comma), 0) = (comma_at, depth) else {
            continue;
        };
        // `j - 1` is the closing `>`; the error type is what's between.
        let err_ty: String = toks
            .get(comma + 1..j.saturating_sub(1))
            .unwrap_or_default()
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        if err_ty == "String" || err_ty == "std::string::String" {
            out.push(Diagnostic {
                file: file.into(),
                line: toks[i].line,
                rule: Rule::R6,
                message: "Result<_, String> hides failure modes; define a typed error enum"
                    .into(),
            });
        }
    }
}

/// R4: the crate root must carry the agreed lint tier:
/// `#![deny(unsafe_code)]` plus `#![warn(missing_docs)]` (or the
/// stricter `deny`).
fn check_r4(file: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let attrs = inner_attributes(&lexed.tokens);
    let has_unsafe = attrs.iter().any(|a| a == "deny(unsafe_code)" || a == "forbid(unsafe_code)");
    let has_docs = attrs
        .iter()
        .any(|a| a == "warn(missing_docs)" || a == "deny(missing_docs)");
    if !has_unsafe {
        out.push(Diagnostic {
            file: file.into(),
            line: 1,
            rule: Rule::R4,
            message: "crate root is missing #![deny(unsafe_code)] (lint tier header)".into(),
        });
    }
    if !has_docs {
        out.push(Diagnostic {
            file: file.into(),
            line: 1,
            rule: Rule::R4,
            message: "crate root is missing #![warn(missing_docs)] (lint tier header)".into(),
        });
    }
}

/// Collect the contents of `#![...]` inner attributes, whitespace-free.
fn inner_attributes(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "!" && toks[i + 2].text == "[" {
            let mut depth = 1i32;
            let mut j = i + 3;
            let mut s = String::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                s.push_str(&toks[j].text);
                j += 1;
            }
            out.push(s);
            i = j;
        }
        i += 1;
    }
    out
}

/// Hash collections whose iteration order is seeded per-process.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that surface a hash collection's iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Types that seed hashing (and therefore iteration order) per-process.
const RANDOM_HASHER_TYPES: &[&str] = &["RandomState", "DefaultHasher"];

/// R9 exemption: identifiers that mark a site as visibly order-fixed —
/// a sort call, a sorted-walk helper, or a `BTree*` re-collection near
/// the iteration site.
fn is_sorted_marker(t: &Tok) -> bool {
    if t.kind != TokKind::Ident {
        return false;
    }
    t.text.starts_with("BTree") || t.text.to_ascii_lowercase().contains("sort")
}

/// R9 exemption: the line invokes a Volatile-classed obs probe (an
/// identifier containing `volatile`); Per-Run metrics are excluded from
/// Stable exports by construction, so host-dependent values there are
/// fine.
fn line_mentions_volatile(toks: &[Tok], i: usize) -> bool {
    let line = toks.get(i).map(|t| t.line).unwrap_or(0);
    let volatile = |t: &Tok| {
        t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("volatile")
    };
    toks.get(..i)
        .unwrap_or_default()
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| volatile(t))
        || toks
            .get(i..)
            .unwrap_or_default()
            .iter()
            .take_while(|t| t.line == line)
            .any(|t| volatile(t))
}

/// How far around an iteration site the sorted-marker exemption looks:
/// far enough to see a `.collect::<BTreeMap<…>>()` later in the same
/// chain or the `v.sort()` on the statement that follows, small enough
/// not to pick up unrelated code.
const SORT_WINDOW_BACK: usize = 12;
const SORT_WINDOW_FWD: usize = 48;

/// Does a sorted marker appear near token `i` (same expression chain or
/// the statement that follows)?
fn near_sorted_marker(toks: &[Tok], i: usize) -> bool {
    let lo = i.saturating_sub(SORT_WINDOW_BACK);
    let hi = (i + SORT_WINDOW_FWD).min(toks.len());
    toks.get(lo..hi).unwrap_or_default().iter().any(is_sorted_marker)
}

/// Names declared `name: [&[mut]] [std::collections::]HashMap<…>` — a
/// field or parameter declaration. Field names are meaningful anywhere
/// in the file (`self.cells`, `m.cells` from any method), so these are
/// tracked file-wide.
fn hash_decl_bindings(toks: &[Tok]) -> Vec<String> {
    let mut tracked: Vec<String> = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over the path and reference tokens to the single
        // `:` that separates name from type.
        let mut b = k;
        loop {
            // Skip `seg::` path segments…
            if b >= 3
                && toks[b - 1].text == ":"
                && toks[b - 2].text == ":"
                && toks[b - 3].kind == TokKind::Ident
            {
                b -= 3;
                continue;
            }
            // …and `&`/`mut`/lifetime prefixes.
            if b >= 1
                && (toks[b - 1].text == "&"
                    || toks[b - 1].text == "mut"
                    || toks[b - 1].kind == TokKind::Lifetime)
            {
                b -= 1;
                continue;
            }
            break;
        }
        if b >= 2
            && toks[b - 1].text == ":"
            && toks[b - 2].kind == TokKind::Ident
            && (b < 3 || toks[b - 3].text != ":")
            && !tracked.iter().any(|n| *n == toks[b - 2].text)
        {
            // A typed `let [mut] name: HashMap<…>` is a local, not a
            // declaration — the fn-scoped `let` pass owns those.
            let mut p = b - 2;
            if p >= 1 && toks[p - 1].text == "mut" {
                p -= 1;
            }
            if p >= 1 && toks[p - 1].text == "let" {
                continue;
            }
            tracked.push(toks[b - 2].text.clone());
        }
    }
    tracked
}

/// `let [mut] name … = … HashMap …;` bindings inside one fn body span
/// (`lo..=hi`): anything hash-typed in the statement marks the binding.
/// Scoped per fn so a `rows: HashMap` local in one function does not
/// taint a `rows: Vec` field consumed by another.
fn hash_let_bindings(toks: &[Tok], lo: usize, hi: usize) -> Vec<String> {
    let mut tracked: Vec<String> = Vec::new();
    let mut k = lo;
    while k <= hi.min(toks.len().saturating_sub(1)) {
        if toks[k].kind != TokKind::Ident || toks[k].text != "let" {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            k += 1;
            continue;
        };
        let mut depth = 0i32;
        let mut m = j + 1;
        let mut is_hash = false;
        while m < toks.len() && m <= hi {
            match toks[m].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
            if toks[m].kind == TokKind::Ident && HASH_TYPES.contains(&toks[m].text.as_str()) {
                is_hash = true;
            }
            m += 1;
        }
        if is_hash && !tracked.iter().any(|n| *n == name.text) {
            tracked.push(name.text.clone());
        }
        k += 1;
    }
    tracked
}

/// Outermost fn body token spans of the file (nested fns are covered by
/// their enclosing span).
fn fn_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            if let Some((s, e)) = crate::syntax::fn_body_span(toks, i) {
                if !spans.iter().any(|&(s0, e0)| s >= s0 && e <= e0) {
                    spans.push((s, e));
                }
            }
        }
    }
    spans
}

/// R9: nondeterminism sources in modules that produce Stable-classed
/// output. Flags (a) iteration over `HashMap`/`HashSet` bindings —
/// iteration order is seeded per-process, so any order-sensitive fold
/// (float accumulation, first-wins, output emission) silently varies
/// across runs; (b) host clock reads (`Instant::now`, `SystemTime`);
/// (c) `std::env` reads; (d) thread identity; (e) pointer-as-usize;
/// (f) explicitly random hasher state.
///
/// Exemptions, both lexical and documented in the crate README: a
/// sorted marker (`sort*`, `BTree*`) near the iteration site shows the
/// order is fixed before anything consumes it, and a line invoking a
/// `*_volatile!` obs probe is Per-Run-classed by declaration.
fn check_r9(file: &str, toks: &[Tok], in_test: &[bool], out: &mut Vec<Diagnostic>) {
    let decls = hash_decl_bindings(toks);
    let scoped: Vec<(usize, usize, Vec<String>)> = fn_spans(toks)
        .into_iter()
        .map(|(s, e)| (s, e, hash_let_bindings(toks, s, e)))
        .collect();
    // A token is a tracked hash binding if it names a hash-typed field
    // or parameter (file-wide) or a hash-typed `let` of the fn body the
    // token sits in (scoped).
    let is_tracked = |j: usize| {
        let Some(t) = toks.get(j) else { return false };
        t.kind == TokKind::Ident
            && (decls.iter().any(|n| *n == t.text)
                || scoped.iter().any(|(s, e, names)| {
                    j >= *s && j <= *e && names.iter().any(|n| *n == t.text)
                }))
    };
    // One hash-iteration diagnostic per line: `for (k, v) in map.iter()`
    // is one finding, not two.
    let mut iter_flagged_lines: Vec<u32> = Vec::new();
    let push = |out: &mut Vec<Diagnostic>, line: u32, message: String| {
        out.push(Diagnostic {
            file: file.into(),
            line,
            rule: Rule::R9,
            message,
        });
    };
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        let next = toks.get(i + 1);
        let exempt = || line_mentions_volatile(toks, i);

        // (a) `map.iter()` / `.keys()` / … on a tracked hash binding.
        if HASH_ITER_METHODS.contains(&t.text.as_str())
            && prev.is_some_and(|p| p.text == ".")
            && next.is_some_and(|n| n.text == "(")
            && i >= 2
            && is_tracked(i - 2)
            && !near_sorted_marker(toks, i)
            && !exempt()
            && !iter_flagged_lines.contains(&t.line)
        {
            iter_flagged_lines.push(t.line);
            push(
                out,
                t.line,
                format!(
                    "`{}.{}()` iterates in per-process hash order; use BTreeMap/BTreeSet or sort before consuming",
                    toks[i - 2].text, t.text
                ),
            );
        }
        // (a') `for … in … map …` — direct IntoIterator loops.
        if t.text == "for" {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut seen_in = false;
            let mut hash_ident: Option<&Tok> = None;
            let mut sorted = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    "in" if depth == 0 => seen_in = true,
                    _ => {}
                }
                if seen_in {
                    if is_tracked(j) && !in_test[j] {
                        hash_ident = hash_ident.or(Some(&toks[j]));
                    }
                    if is_sorted_marker(&toks[j]) {
                        sorted = true;
                    }
                }
                j += 1;
            }
            if let Some(h) = hash_ident {
                if !sorted
                    && !near_sorted_marker(toks, j.min(toks.len().saturating_sub(1)))
                    && !line_mentions_volatile(toks, i)
                    && !iter_flagged_lines.contains(&h.line)
                {
                    iter_flagged_lines.push(h.line);
                    push(
                        out,
                        t.line,
                        format!(
                            "`for … in {}` iterates in per-process hash order; use BTreeMap/BTreeSet or sort before consuming",
                            h.text
                        ),
                    );
                }
            }
        }
        // (b) host clocks.
        if t.text == "now"
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && (toks[i - 3].text == "Instant" || toks[i - 3].text == "SystemTime")
            && !exempt()
        {
            push(
                out,
                t.line,
                format!(
                    "{}::now() reads the host clock; Stable output must not depend on it",
                    toks[i - 3].text
                ),
            );
        }
        if t.text == "SystemTime" && !exempt() {
            // Any other SystemTime use (UNIX_EPOCH math, comparisons)
            // still couples output to the wall clock.
            let is_now_path = toks.get(i + 1).is_some_and(|n| n.text == ":")
                && toks.get(i + 3).is_some_and(|n| n.text == "now");
            if !is_now_path {
                push(
                    out,
                    t.line,
                    "SystemTime couples output to the wall clock; derive times from SimClock/seeded inputs".into(),
                );
            }
        }
        // (c) environment reads.
        if matches!(t.text.as_str(), "var" | "var_os" | "vars")
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "env"
            && next.is_some_and(|n| n.text == "(")
            && !exempt()
        {
            push(
                out,
                t.line,
                format!(
                    "env::{}() makes Stable output depend on the process environment; thread configuration through explicit parameters",
                    t.text
                ),
            );
        }
        // (d) thread identity.
        if t.text == "current"
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "thread"
            && !exempt()
        {
            push(
                out,
                t.line,
                "thread::current() identity is nondeterministic across runs and thread counts".into(),
            );
        }
        // (e) pointer addresses cast to integers (ASLR-dependent).
        if t.text == "as"
            && next.is_some_and(|n| n.text == "usize" || n.text == "u64")
            && prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && p.text.to_ascii_lowercase().contains("ptr"))
                    || (p.text == ")" && {
                        let line = t.line;
                        toks.get(..i)
                            .unwrap_or_default()
                            .iter()
                            .rev()
                            .take_while(|t| t.line == line)
                            .any(|t| t.text == "as_ptr" || t.text == "as_mut_ptr")
                    })
            })
            && !exempt()
        {
            push(
                out,
                t.line,
                "pointer-as-integer leaks an ASLR-randomized address into output".into(),
            );
        }
        // (f) explicitly random hasher state.
        if RANDOM_HASHER_TYPES.contains(&t.text.as_str()) && !exempt() {
            push(
                out,
                t.line,
                format!("{} seeds hashing per-process; use an ordered structure or a fixed-seed hasher", t.text),
            );
        }
    }
}

/// Mark tokens inside `#[cfg(test)]`-gated items (`mod` or `fn`).
pub(crate) fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // Match `#[cfg(` … `test` … `)]`.
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut saw_test = false;
            let mut is_cfg = false;
            if toks.get(j).is_some_and(|t| t.text == "cfg") {
                is_cfg = true;
            }
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Also treat bare `#[test]` / `#[bench]` attributes.
            let bare_test = !is_cfg && saw_test;
            if (is_cfg && saw_test) || bare_test {
                // Find the gated item's braces and mark the whole span.
                let mut k = j;
                let mut brace_start = None;
                let mut guard = 0usize;
                while k < toks.len() && guard < 64 {
                    if toks[k].text == "{" {
                        brace_start = Some(k);
                        break;
                    }
                    if toks[k].text == ";" {
                        break;
                    }
                    k += 1;
                    guard += 1;
                }
                if let Some(start) = brace_start {
                    let mut depth = 0i32;
                    let mut end = start;
                    for (m, t) in toks.iter().enumerate().skip(start) {
                        match t.text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    end = m;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, class: FileClass) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let mut out = Vec::new();
        check("t.rs", &lexed, class, &mut out);
        out
    }

    const UNTRUSTED: FileClass = FileClass {
        untrusted: true,
        wire_codec: false,
        crate_root: false,
        bounded_loops: false,
        deterministic: false,
    };
    const CODEC: FileClass = FileClass {
        untrusted: true,
        wire_codec: true,
        crate_root: false,
        bounded_loops: false,
        deterministic: false,
    };
    const DETERMINISTIC: FileClass = FileClass {
        untrusted: false,
        wire_codec: false,
        crate_root: false,
        bounded_loops: false,
        deterministic: true,
    };

    #[test]
    fn r1_flags_unwrap_expect_and_macros() {
        let d = run(
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
             fn g(x: Option<u8>) -> u8 { x.expect(\"m\") }\n\
             fn h() { panic!(\"boom\"); }\n\
             fn k() { unreachable!() }",
            UNTRUSTED,
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::R1).count(), 4);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[2].line, 3);
    }

    #[test]
    fn r1_flags_indexing_but_not_array_types_or_attrs() {
        let ok = run(
            "#[derive(Debug)] struct S { a: [u8; 4] }\n\
             fn f() -> Vec<u8> { vec![0u8; 4] }\n\
             fn g(x: &[u8]) -> Option<&u8> { x.get(0) }",
            UNTRUSTED,
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run("fn f(x: &[u8]) -> u8 { x[0] }", UNTRUSTED);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::R1);
    }

    #[test]
    fn r1_ignores_test_modules() {
        let d = run(
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}",
            UNTRUSTED,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r1_ignores_strings_and_comments() {
        let d = run(
            "// unwrap() in a comment\nfn f() -> &'static str { \"panic!()\" }",
            UNTRUSTED,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r2_narrowing_cast_flagged_masked_ok() {
        let bad = run("fn f(x: usize) -> u8 { x as u8 }", CODEC);
        assert_eq!(bad.iter().filter(|d| d.rule == Rule::R2).count(), 1);
        let masked = run("fn f(x: usize) -> u8 { (x & 0xFF) as u8 }", CODEC);
        assert!(masked.iter().all(|d| d.rule != Rule::R2), "{masked:?}");
        let constant = run("fn f() -> u16 { 0xC000 as u16 }", CODEC);
        assert!(constant.iter().all(|d| d.rule != Rule::R2));
        let widening = run("fn f(x: u8) -> usize { x as usize }", CODEC);
        assert!(widening.iter().all(|d| d.rule != Rule::R2));
    }

    #[test]
    fn r3_alloc_needs_bound() {
        let bad = run("fn f(n: usize) { let _ = Vec::<u8>::with_capacity(n); }", UNTRUSTED);
        assert_eq!(bad.iter().filter(|d| d.rule == Rule::R3).count(), 1);
        let literal = run("fn f() { let _ = Vec::<u8>::with_capacity(512); }", UNTRUSTED);
        assert!(literal.iter().all(|d| d.rule != Rule::R3));
        let bounded = run(
            "const MAX_RRS: usize = 64; fn f(n: usize) { let _ = Vec::<u8>::with_capacity(n.min(MAX_RRS)); }",
            UNTRUSTED,
        );
        assert!(bounded.iter().all(|d| d.rule != Rule::R3), "{bounded:?}");
    }

    #[test]
    fn r3_recursion_needs_bound() {
        let bad = run(
            "fn walk(d: &Dir) { for c in d.children() { walk(c); } }",
            UNTRUSTED,
        );
        assert_eq!(bad.iter().filter(|d| d.rule == Rule::R3).count(), 1);
        let bounded = run(
            "fn walk(d: &Dir, depth: usize) { if depth > MAX_DEPTH { return; } walk(d, depth + 1); }",
            UNTRUSTED,
        );
        assert!(bounded.iter().all(|d| d.rule != Rule::R3));
        let non_recursive = run("fn helper() {} fn f() { helper(); }", UNTRUSTED);
        assert!(non_recursive.iter().all(|d| d.rule != Rule::R3));
    }

    #[test]
    fn r5_flags_unbounded_loops() {
        let scoped = FileClass {
            bounded_loops: true,
            ..FileClass::default()
        };
        // A while whose condition names nothing position-like.
        let bad = run("fn f(ready: bool) { while !ready { poll(); } }", scoped);
        assert_eq!(bad.iter().filter(|d| d.rule == Rule::R5).count(), 1);
        // A bare loop whose body never names a bound.
        let bad_loop = run("fn f() { loop { if done() { break; } } }", scoped);
        assert_eq!(bad_loop.iter().filter(|d| d.rule == Rule::R5).count(), 1);
        // Reader-position condition is fine.
        let pos = run(
            "fn f(b: &[u8]) { let mut pos = 0; while pos < b.len() { pos += 1; } }",
            scoped,
        );
        assert!(pos.iter().all(|d| d.rule != Rule::R5), "{pos:?}");
        // MAX_* budget in a bare loop's break guard is fine.
        let budget = run(
            "fn f() { let mut attempt = 0; loop { attempt += 1; if attempt >= MAX_ATTEMPTS { break; } } }",
            scoped,
        );
        assert!(budget.iter().all(|d| d.rule != Rule::R5), "{budget:?}");
        // `while let` drains its own expression.
        let wlet = run(
            "fn f(mut it: std::vec::IntoIter<u8>) { while let Some(_) = it.next() {} }",
            scoped,
        );
        assert!(wlet.iter().all(|d| d.rule != Rule::R5), "{wlet:?}");
        // Out of scope: nothing fires.
        let unscoped = run("fn f(ready: bool) { while !ready {} }", FileClass::default());
        assert!(unscoped.iter().all(|d| d.rule != Rule::R5));
    }

    #[test]
    fn r6_flags_string_errors_in_any_library_file() {
        // Fires even for files outside the untrusted/wire-codec scope.
        let plain = FileClass::default();
        let bad = run("pub fn parse(s: &str) -> Result<u8, String> { todo() }", plain);
        assert_eq!(bad.iter().filter(|d| d.rule == Rule::R6).count(), 1);
        let qualified = run(
            "pub fn parse(s: &str) -> Result<u8, std::string::String> { todo() }",
            plain,
        );
        assert_eq!(qualified.iter().filter(|d| d.rule == Rule::R6).count(), 1);
        let typed = run("pub fn parse(s: &str) -> Result<u8, ParseError> { todo() }", plain);
        assert!(typed.iter().all(|d| d.rule != Rule::R6), "{typed:?}");
        // Ok side may be a String; only the error position is stringly.
        let ok_string = run("pub fn render() -> Result<String, Error> { todo() }", plain);
        assert!(ok_string.iter().all(|d| d.rule != Rule::R6), "{ok_string:?}");
    }

    #[test]
    fn r6_handles_nested_generics_and_fn_arrows() {
        let plain = FileClass::default();
        let nested = run(
            "fn f() -> Result<Vec<(u8, String)>, Error> { todo() }",
            plain,
        );
        assert!(nested.iter().all(|d| d.rule != Rule::R6), "{nested:?}");
        let arrow = run(
            "fn f() -> Result<Box<dyn Fn() -> u8>, String> { todo() }",
            plain,
        );
        assert_eq!(arrow.iter().filter(|d| d.rule == Rule::R6).count(), 1);
        let in_tests = run(
            "#[cfg(test)]\nmod tests {\n    fn helper() -> Result<u8, String> { Ok(1) }\n}",
            plain,
        );
        assert!(in_tests.iter().all(|d| d.rule != Rule::R6), "test code exempt");
    }

    #[test]
    fn r4_header_checked_on_crate_roots() {
        let root_only = FileClass {
            crate_root: true,
            ..FileClass::default()
        };
        let bad = run("//! docs\npub fn f() {}", root_only);
        assert_eq!(bad.iter().filter(|d| d.rule == Rule::R4).count(), 2);
        let good = run(
            "//! docs\n#![deny(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}",
            root_only,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r7_flags_bare_length_arithmetic() {
        let codec_only = FileClass {
            wire_codec: true,
            ..FileClass::default()
        };
        let bad = run(
            "fn f(b: &[u8], pos: usize, n: usize) -> Option<&[u8]> { b.get(pos..pos + n) }",
            codec_only,
        );
        assert_eq!(bad.iter().filter(|d| d.rule == Rule::R7).count(), 1);
        let mul = run("fn f(count: usize, width: usize) -> usize { count * width }", codec_only);
        assert_eq!(mul.iter().filter(|d| d.rule == Rule::R7).count(), 1);
        // Literal growth of a reader position is bounded.
        let literal = run("fn f(pos: usize) -> usize { pos + 2 }", codec_only);
        assert!(literal.iter().all(|d| d.rule != Rule::R7), "{literal:?}");
        // Compound assignment lexes as `+` `=` and is not a binary add.
        let compound = run("fn f(mut pos: usize) { pos += 1; }", codec_only);
        assert!(compound.iter().all(|d| d.rule != Rule::R7), "{compound:?}");
        // Checked arithmetic on the same line shows the bound was handled.
        let checked = run(
            "fn f(pos: usize, n: usize) -> Option<usize> { pos.checked_add(n) }",
            codec_only,
        );
        assert!(checked.iter().all(|d| d.rule != Rule::R7), "{checked:?}");
        // Operands with no length-typed name are out of scope.
        let plain = run("fn f(a: u64, b: u64) -> u64 { a + b }", codec_only);
        assert!(plain.iter().all(|d| d.rule != Rule::R7), "{plain:?}");
        // Out of the wire-codec class: nothing fires.
        let unscoped = run(
            "fn f(pos: usize, n: usize) -> usize { pos + n }",
            FileClass::default(),
        );
        assert!(unscoped.iter().all(|d| d.rule != Rule::R7));
    }

    #[test]
    fn allow_next_fn_spans_the_following_item() {
        let lexed = lex(
            "// lint:allow-next-fn(R1): demo covers the whole fn\n\
             fn f(x: Option<u8>) -> u8 {\n\
                 let a = x.unwrap();\n\
                 a\n\
             }\n\
             fn g() {}",
        );
        let allows = parse_allows(&lexed);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, Some(Rule::R1));
        assert_eq!(allows[0].covers_line, 2);
        assert_eq!(allows[0].covers_end, 5, "span ends at the closing brace");
        assert!(allows[0].covers(3));
        assert!(!allows[0].covers(6), "the next item is not covered");
    }

    #[test]
    fn allow_next_fn_covers_macro_rules() {
        let lexed = lex(
            "// lint:allow-next-fn(R1): macro body panics by contract\n\
             #[macro_export]\n\
             macro_rules! m {\n\
                 ($s:expr) => {\n\
                     $s.unwrap()\n\
                 };\n\
             }",
        );
        let allows = parse_allows(&lexed);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].covers_line, 3);
        assert_eq!(allows[0].covers_end, 7);
    }

    #[test]
    fn allows_parse_with_reason_and_coverage() {
        let lexed = lex(
            "fn f() {\n    x.unwrap(); // lint:allow(R1): startup-only path\n    // lint:allow(R2): masked by construction\n    y as u8;\n}",
        );
        let allows = parse_allows(&lexed);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, Some(Rule::R1));
        assert_eq!(allows[0].covers_line, 2);
        assert_eq!(allows[0].reason, "startup-only path");
        assert_eq!(allows[1].covers_line, 4);
    }

    // ---- R9: determinism ----

    fn r9(src: &str) -> Vec<Diagnostic> {
        run(src, DETERMINISTIC)
            .into_iter()
            .filter(|d| d.rule == Rule::R9)
            .collect()
    }

    #[test]
    fn r9_flags_hash_iteration_on_fields_and_lets() {
        // Field declaration tracks file-wide; `let` tracks in its fn.
        let src = "\
struct S { cells: std::collections::HashMap<u32, u32> }
impl S {
    fn walk(&self) -> u32 { self.cells.values().sum() }
}
fn local() -> usize {
    let m: std::collections::HashSet<u32> = std::collections::HashSet::new();
    m.iter().count()
}
";
        let out = r9(src);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].line, 3);
        assert_eq!(out[1].line, 7);
    }

    #[test]
    fn r9_let_bindings_do_not_leak_across_fns() {
        // `rows` is a HashMap local in `build` but a Vec elsewhere; the
        // fn-scoped tracker must not taint the other fn's iteration.
        let src = "\
fn build() -> usize {
    let rows: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    rows.len()
}
fn consume(rows: &[u32]) -> u32 {
    rows.iter().sum()
}
";
        assert!(r9(src).is_empty(), "{:?}", r9(src));
    }

    #[test]
    fn r9_typed_let_is_not_a_file_wide_declaration() {
        // `let mut rows: HashMap<…>` matches the `name: Type` shape but
        // is a local — it must not track `self.rows` in another fn.
        let src = "\
struct S { rows: Vec<u32> }
impl S {
    fn find(&self) -> Option<&u32> { self.rows.iter().next() }
}
fn build() {
    let mut rows: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    rows.insert(1, 2);
}
";
        assert!(r9(src).is_empty(), "{:?}", r9(src));
    }

    #[test]
    fn r9_sorted_marker_exempts_iteration() {
        let src = "\
fn emit(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort_unstable();
    v
}
";
        assert!(r9(src).is_empty(), "{:?}", r9(src));
    }

    #[test]
    fn r9_for_loop_over_hash_binding() {
        let src = "\
fn emit(m: &std::collections::HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in m {
        total += v;
    }
    total
}
";
        let out = r9(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("for … in m"), "{}", out[0].message);
    }

    #[test]
    fn r9_clock_env_thread_ptr_and_hasher() {
        let clock = r9("fn f() -> std::time::Instant { std::time::Instant::now() }");
        assert_eq!(clock.len(), 1, "{clock:?}");
        assert!(clock[0].message.contains("Instant::now()"));

        let wall = r9("fn f() -> u64 { let t = std::time::SystemTime::now(); 0 }");
        assert!(!wall.is_empty(), "SystemTime must be flagged");

        let env = r9("fn f() -> Option<String> { std::env::var(\"HOME\").ok() }");
        assert_eq!(env.len(), 1, "{env:?}");
        assert!(env[0].message.contains("env::var()"));

        let thread = r9("fn f() { let _ = std::thread::current(); }");
        assert_eq!(thread.len(), 1, "{thread:?}");

        let ptr = r9("fn f(v: &[u8]) -> usize { v.as_ptr() as usize }");
        assert_eq!(ptr.len(), 1, "{ptr:?}");
        assert!(ptr[0].message.contains("ASLR"));

        let hasher = r9(
            "fn f() { let s = std::collections::hash_map::RandomState::new(); let _ = s; }",
        );
        assert_eq!(hasher.len(), 1, "{hasher:?}");
    }

    #[test]
    fn r9_volatile_line_and_tests_are_exempt() {
        let probe = r9("fn f(m: &std::collections::HashMap<u32, u32>) { counter_volatile!(\"x\", m.values().sum::<u32>() as u64); }");
        assert!(probe.is_empty(), "{probe:?}");

        let test_code = r9("#[cfg(test)]\nmod tests {\n    fn f() -> std::time::Instant { std::time::Instant::now() }\n}");
        assert!(test_code.is_empty(), "{test_code:?}");
    }

    #[test]
    fn r9_silent_outside_deterministic_scope() {
        let out = run(
            "fn f() -> std::time::Instant { std::time::Instant::now() }",
            FileClass::default(),
        );
        assert!(out.iter().all(|d| d.rule != Rule::R9), "{out:?}");
    }
}
