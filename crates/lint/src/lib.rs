//! # mx-lint — workspace static analysis for the protocol substrates
//!
//! The measurement pipeline parses *untrusted* wire input: DNS messages,
//! SMTP banners and replies, certificate chains, SPF records. A scanner
//! that panics on malformed input silently loses coverage and biases
//! every provider-share number downstream, so this crate enforces
//! panic-freedom and related RFC invariants statically, with no external
//! dependencies (the build environment is offline — the tokenizer in
//! [`lexer`] is hand-rolled rather than `syn`-based).
//!
//! Three entry points:
//! - the `mx-lint` binary (`cargo run -p mx-lint` or the `cargo lint`
//!   alias) walks the workspace and prints `file:line: RULE: message`
//!   diagnostics, exiting non-zero when anything fires;
//! - [`lint_workspace`] is the library API the integration test in the
//!   repo-root `tests/` directory uses to gate `cargo test`;
//! - [`lint_source`] lints one in-memory file, for tools and tests.
//!
//! Escape hatch: `// lint:allow(R1): <written reason>` on (or directly
//! above) the offending line, or `// lint:allow-next-fn(R1): <reason>`
//! above a `fn`/`macro_rules!` item to cover the whole item — the span
//! form replaces piles of identical per-line escapes in macro-heavy
//! code. Directives without a reason, with an unknown rule ID, or that
//! no diagnostic actually needed are themselves reported (`R0`), so the
//! escape hatch cannot rot silently.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use config::ConfigError;
pub use rules::{Diagnostic, FileClass, Rule};

/// Shared lex cache: one lex per file, reused across rule sets and
/// repeated passes (CLI then gate test, or strict-mode re-lints of the
/// same path). Keyed by display path, invalidated by content hash.
struct LexCache {
    map: Mutex<HashMap<String, (u64, Arc<lexer::Lexed>)>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

fn lex_cache() -> &'static LexCache {
    static CACHE: OnceLock<LexCache> = OnceLock::new();
    CACHE.get_or_init(|| LexCache {
        map: Mutex::new(HashMap::new()),
        hits: AtomicUsize::new(0),
        misses: AtomicUsize::new(0),
    })
}

/// FNV-1a over the source text, for cache invalidation.
fn src_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lex `src` through the shared per-path cache. A hit requires both the
/// path and the content hash to match, so edits between passes are
/// never served stale tokens.
pub fn lex_cached(rel: &str, src: &str) -> Arc<lexer::Lexed> {
    let cache = lex_cache();
    let hash = src_hash(src);
    {
        let map = cache.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((h, lexed)) = map.get(rel) {
            if *h == hash {
                cache.hits.fetch_add(1, Ordering::Relaxed);
                // Cache traffic depends on which passes ran first, so the
                // mirror counters are per-run (volatile) by design.
                mx_obs::counter_volatile!(mx_obs::names::LINT_LEX_CACHE_HITS).incr();
                return Arc::clone(lexed);
            }
        }
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    mx_obs::counter_volatile!(mx_obs::names::LINT_LEX_CACHE_MISSES).incr();
    let lexed = Arc::new(lexer::lex(src));
    let mut map = cache.map.lock().unwrap_or_else(|e| e.into_inner());
    map.insert(rel.to_string(), (hash, Arc::clone(&lexed)));
    lexed
}

/// `(hits, misses)` counters of the shared lex cache, for tests and the
/// CLI's `-v` accounting.
pub fn lex_cache_stats() -> (usize, usize) {
    let c = lex_cache();
    (c.hits.load(Ordering::Relaxed), c.misses.load(Ordering::Relaxed))
}

/// Which files the domain rules apply to, as repo-relative path
/// suffixes with forward slashes.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// R1/R3 scope: modules that parse untrusted input.
    pub untrusted: Vec<String>,
    /// R2 scope: binary/line-protocol codecs (a subset of `untrusted`).
    pub wire_codecs: Vec<String>,
    /// R5 scope: modules whose loops must visibly bound their exits —
    /// the untrusted parsers plus the retrying acquisition layers.
    pub bounded_loops: Vec<String>,
    /// R9 scope: modules that produce Stable-classed output and must
    /// therefore not read nondeterminism sources (hash-order iteration,
    /// host clocks, environment, thread ids, addresses).
    pub deterministic: Vec<String>,
    /// Extra R8 taint seeds beyond the pub fns of `untrusted` files, as
    /// `path/suffix.rs::fn_name` entries.
    pub entry_points: Vec<String>,
    /// Directory names never descended into.
    pub skip_dirs: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            untrusted: [
                // DNS: wire decoding, master-file parsing, message and
                // name handling all consume scanner input.
                "crates/dns/src/wire.rs",
                "crates/dns/src/master.rs",
                "crates/dns/src/message.rs",
                "crates/dns/src/name.rs",
                // SMTP: reply/command grammars and the port-25 scan
                // records parse remote banners.
                "crates/smtp/src/reply.rs",
                "crates/smtp/src/command.rs",
                "crates/smtp/src/scan.rs",
                // Certificates: chain validation and RFC 6125 host-name
                // matching consume attacker-supplied chains and names.
                "crates/cert/src/validate.rs",
                "crates/cert/src/name_match.rs",
                // SPF parsing consumes TXT records off the wire.
                "crates/core/src/spf.rs",
                // The parallel substrate: a panic in pool plumbing takes
                // down whole scan batches, so it is held to R1/R3 (and
                // R4 via its crate root) like the wire parsers.
                "crates/par/src/lib.rs",
                // The observability crate runs inside every stage of the
                // pipeline (and its JSON parser consumes snapshot files
                // from disk), so a panic there takes down the run it was
                // supposed to explain. Held to R1/R3 like the parsers,
                // R4 via its crate root.
                "crates/obs/src/lib.rs",
                "crates/obs/src/metrics.rs",
                "crates/obs/src/span.rs",
                "crates/obs/src/json.rs",
                "crates/obs/src/export.rs",
                // The snapshot store decodes files whose bytes may be
                // corrupted or hand-edited; any input must produce a
                // typed StoreError, never a panic.
                "crates/store/src/format.rs",
                "crates/store/src/varint.rs",
                "crates/store/src/reader.rs",
            ]
            .map(String::from)
            .to_vec(),
            wire_codecs: [
                "crates/dns/src/wire.rs",
                "crates/dns/src/message.rs",
                "crates/smtp/src/reply.rs",
                "crates/smtp/src/command.rs",
                // Certificate validation walks length-prefixed chain and
                // name structures, so the R2/R7 arithmetic rules apply
                // even though it has no binary wire format of its own.
                "crates/cert/src/validate.rs",
                "crates/cert/src/name_match.rs",
                // The store's binary codec: varint/prefix arithmetic on
                // untrusted lengths on the read side, and the writer is
                // held to the same R2/R7 arithmetic bar so encode-side
                // offsets can't silently wrap either.
                "crates/store/src/format.rs",
                "crates/store/src/varint.rs",
                "crates/store/src/reader.rs",
                "crates/store/src/writer.rs",
            ]
            .map(String::from)
            .to_vec(),
            bounded_loops: [
                // The untrusted parsers: a loop that fails to advance its
                // reader position hangs the whole scan batch.
                "crates/dns/src/wire.rs",
                "crates/dns/src/master.rs",
                "crates/dns/src/message.rs",
                "crates/dns/src/name.rs",
                "crates/smtp/src/reply.rs",
                "crates/smtp/src/command.rs",
                "crates/smtp/src/scan.rs",
                "crates/cert/src/validate.rs",
                "crates/cert/src/name_match.rs",
                "crates/core/src/spf.rs",
                // The retrying acquisition layers: their loops must name
                // the MAX_* budget that terminates them.
                "crates/dns/src/resolver.rs",
                "crates/net/src/scanner.rs",
                // The store reader walks length-prefixed blocks: every
                // loop must visibly bound its cursor.
                "crates/store/src/format.rs",
                "crates/store/src/varint.rs",
                "crates/store/src/reader.rs",
            ]
            .map(String::from)
            .to_vec(),
            deterministic: [
                // Everything whose output lands in Stable-classed
                // metrics, reports, or on-disk artifacts: the seeded
                // world generator, the classification pipeline, the
                // analysis layer, and the snapshot codec. A host clock
                // or hash-order walk in any of these breaks the
                // bit-identical-across-{threads,reruns,seeds} invariant
                // the runtime gates enforce.
                "crates/corpus/src/catalog.rs",
                "crates/corpus/src/domains.rs",
                "crates/corpus/src/evolution.rs",
                "crates/corpus/src/knowledge.rs",
                "crates/corpus/src/scenario.rs",
                "crates/corpus/src/shares.rs",
                "crates/corpus/src/worldgen.rs",
                "crates/asn/src/table.rs",
                "crates/asn/src/trie.rs",
                "crates/asn/src/prefix.rs",
                "crates/asn/src/prefix6.rs",
                "crates/analysis/src/accuracy.rs",
                "crates/analysis/src/churn.rs",
                "crates/analysis/src/country.rs",
                "crates/analysis/src/coverage.rs",
                "crates/analysis/src/longitudinal.rs",
                "crates/analysis/src/market.rs",
                "crates/analysis/src/observe.rs",
                "crates/analysis/src/report.rs",
                "crates/analysis/src/store.rs",
                "crates/core/src/certgroup.rs",
                "crates/core/src/company.rs",
                "crates/core/src/domainid.rs",
                "crates/core/src/ipid.rs",
                "crates/core/src/misid.rs",
                "crates/core/src/mxid.rs",
                "crates/core/src/pattern.rs",
                "crates/core/src/pipeline.rs",
                "crates/core/src/store_io.rs",
                // The deterministic substrate itself: seeded RNG, the
                // simulated network, the virtual DNS clock and servers.
                "crates/rng/src/lib.rs",
                "crates/net/src/simnet.rs",
                "crates/net/src/fault.rs",
                "crates/net/src/scanner.rs",
                "crates/net/src/openintel.rs",
                "crates/dns/src/clock.rs",
                "crates/dns/src/server.rs",
                "crates/dns/src/zone.rs",
                "crates/smtp/src/server.rs",
                // Stable-classed snapshot output: the store codec and
                // the obs export/JSON layer (span.rs is deliberately
                // absent — its wall-clock timings are Per-Run class).
                "crates/store/src/writer.rs",
                "crates/store/src/reader.rs",
                "crates/store/src/format.rs",
                "crates/obs/src/export.rs",
                "crates/obs/src/json.rs",
                "crates/obs/src/metrics.rs",
                // Dogfood: the lint's own call graph and reporters must
                // emit byte-identical output across runs.
                "crates/lint/src/graph.rs",
                "crates/lint/src/report.rs",
                "crates/lint/src/syntax.rs",
            ]
            .map(String::from)
            .to_vec(),
            // No extra seeds by default: the pub fns of `untrusted`
            // files already cover the decode surface. Entries take the
            // form "crates/net/src/openintel.rs::measure".
            entry_points: Vec::new(),
            skip_dirs: ["target", ".git", "fixtures", "tests", "benches", "examples"]
                .map(String::from)
                .to_vec(),
        }
    }
}

impl LintConfig {
    /// Classify one repo-relative path.
    pub fn classify(&self, rel: &str) -> FileClass {
        let rel = rel.replace('\\', "/");
        FileClass {
            untrusted: self.untrusted.iter().any(|s| rel.ends_with(s.as_str())),
            wire_codec: self.wire_codecs.iter().any(|s| rel.ends_with(s.as_str())),
            crate_root: rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs")),
            bounded_loops: self.bounded_loops.iter().any(|s| rel.ends_with(s.as_str())),
            deterministic: self.deterministic.iter().any(|s| rel.ends_with(s.as_str())),
        }
    }
}

/// Result of a workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Everything that fired, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
    /// Total `lint:allow` directives encountered.
    pub allows_total: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lint a single source text. `rel` is the repo-relative display path;
/// `class` controls which rules apply. Returns diagnostics plus the
/// number of `lint:allow` directives seen.
///
/// This is the per-file view: the crate-wide R8 rule needs every file
/// at once, so it only runs under [`lint_sources`] / the workspace
/// entry points.
pub fn lint_source(rel: &str, src: &str, class: FileClass) -> (Vec<Diagnostic>, usize) {
    let lexed = lex_cached(rel, src);
    let allows = rules::parse_allows(&lexed);
    let mut raw = Vec::new();
    rules::check(rel, &lexed, class, &mut raw);
    let out = apply_allows(rel, raw, &allows);
    (out, allows.len())
}

/// Apply the escape hatch to raw diagnostics: a directive suppresses
/// matching diagnostics on its covered lines; hygiene problems (unknown
/// rule, missing reason, nothing suppressed) become R0 diagnostics.
///
/// Runs *after* crate-wide rules are merged into `raw`, so a reviewed
/// `lint:allow(R8)` on a sink line both suppresses the finding and
/// counts as used.
fn apply_allows(rel: &str, raw: Vec<Diagnostic>, allows: &[rules::Allow]) -> Vec<Diagnostic> {
    let mut used = vec![false; allows.len()];
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (i, a) in allows.iter().enumerate() {
            if a.rule == Some(d.rule) && a.covers(d.line) && !a.reason.is_empty() {
                used[i] = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if a.rule.is_none() {
            out.push(Diagnostic {
                file: rel.into(),
                line: a.at_line,
                rule: Rule::R0,
                message: format!("lint:allow names unknown rule `{}`", a.rule_text),
            });
        } else if a.reason.is_empty() {
            out.push(Diagnostic {
                file: rel.into(),
                line: a.at_line,
                rule: Rule::R0,
                message: "lint:allow requires a written reason: `// lint:allow(Rn): why`".into(),
            });
        } else if !used[i] {
            let span = if a.covers_end > a.covers_line {
                format!("lines {}-{}", a.covers_line, a.covers_end)
            } else {
                format!("line {}", a.covers_line)
            };
            out.push(Diagnostic {
                file: rel.into(),
                line: a.at_line,
                rule: Rule::R0,
                message: format!(
                    "unused lint:allow({}) — nothing to suppress on {span}",
                    a.rule_text
                ),
            });
        }
    }
    out
}

/// Lint a set of in-memory sources as one workspace: the per-file rules
/// run on each file, then the crate-wide R8 reachability rule runs over
/// the call graph of all of them, and only then are `lint:allow`
/// directives applied — so R8 findings are suppressible (and their
/// allows counted as used) exactly like per-file findings.
///
/// `sources` is `(repo-relative path, source text)`. Diagnostics come
/// back sorted by `(file, line, rule, message)` — the byte-stable order
/// the machine-readable reporters rely on.
pub fn lint_sources(sources: &[(String, String)], config: &LintConfig) -> Report {
    let mut report = Report::default();
    let mut per_file: Vec<(String, Vec<Diagnostic>, Vec<rules::Allow>)> = Vec::new();
    let mut syntaxes: Vec<syntax::FileSyntax> = Vec::new();
    let mut classes: Vec<FileClass> = Vec::new();
    for (rel, src) in sources {
        let class = config.classify(rel);
        let lexed = lex_cached(rel, src);
        let allows = rules::parse_allows(&lexed);
        let mut raw = Vec::new();
        rules::check(rel, &lexed, class, &mut raw);
        syntaxes.push(syntax::extract(rel, &lexed));
        classes.push(class);
        report.files_checked += 1;
        report.allows_total += allows.len();
        per_file.push((rel.clone(), raw, allows));
    }

    let mut r8 = Vec::new();
    graph::check_r8(&syntaxes, &classes, &config.entry_points, &mut r8);
    for d in r8 {
        if let Some(entry) = per_file.iter_mut().find(|(rel, _, _)| *rel == d.file) {
            entry.1.push(d);
        }
    }

    for (rel, raw, allows) in per_file {
        report.diagnostics.extend(apply_allows(&rel, raw, &allows));
    }
    report
        .diagnostics
        .sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.id(), a.message.as_str())
                .cmp(&(b.file.as_str(), b.line, b.rule.id(), b.message.as_str()))
        });
    report
}

/// Lint one file on disk with explicit classification.
pub fn lint_file(root: &Path, path: &Path, class: FileClass) -> io::Result<(Vec<Diagnostic>, usize)> {
    let src = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(lint_source(&rel, &src, class))
}

/// Walk the workspace at `root` and run every applicable rule.
///
/// Only `src/` trees are linted: `crates/*/src/**/*.rs` plus the root
/// package's `src/`. Test, bench, example and fixture trees are exempt
/// by design — panicking there is idiomatic.
///
/// Scopes come from `<root>/lint.toml` when the file exists (a
/// malformed file is an error), [`LintConfig::default`] otherwise.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let config = LintConfig::load(root)?;
    lint_workspace_with(root, &config)
}

/// [`lint_workspace`] with a custom configuration.
pub fn lint_workspace_with(root: &Path, config: &LintConfig) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, config, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, config, &mut files)?;
    }
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(&path)?));
    }
    Ok(lint_sources(&sources, config))
}

fn collect_rs(dir: &Path, config: &LintConfig, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !config.skip_dirs.contains(&name) {
                collect_rs(&path, config, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let c = LintConfig::default();
        let wire = c.classify("crates/dns/src/wire.rs");
        assert!(wire.untrusted && wire.wire_codec && !wire.crate_root);
        assert!(wire.bounded_loops, "parsers are in the R5 scope");
        let root = c.classify("crates/dns/src/lib.rs");
        assert!(!root.untrusted && root.crate_root);
        // The acquisition layers carry R5 without inheriting R1/R3.
        let resolver = c.classify("crates/dns/src/resolver.rs");
        assert!(resolver.bounded_loops && !resolver.untrusted);
        let scanner = c.classify("crates/net/src/scanner.rs");
        assert!(scanner.bounded_loops && !scanner.untrusted);
        assert!(c.classify("src/lib.rs").crate_root);
        let free = c.classify("crates/corpus/src/worldgen.rs");
        assert!(!free.untrusted && !free.wire_codec && !free.crate_root);
        // The pool substrate is linted under R1/R3 and, as a crate
        // root, R4.
        let par = c.classify("crates/par/src/lib.rs");
        assert!(par.untrusted && !par.wire_codec && par.crate_root);
        // The observability crate is held to the same bar as the
        // parsers it instruments.
        let obs_root = c.classify("crates/obs/src/lib.rs");
        assert!(obs_root.untrusted && obs_root.crate_root);
        let obs_json = c.classify("crates/obs/src/json.rs");
        assert!(obs_json.untrusted && !obs_json.wire_codec);
        // Certificate validation is in the R2/R7 arithmetic scope.
        let cert = c.classify("crates/cert/src/validate.rs");
        assert!(cert.untrusted && cert.wire_codec);
        // The store codec: reader fully scoped, writer arithmetic-only.
        let srd = c.classify("crates/store/src/reader.rs");
        assert!(srd.untrusted && srd.wire_codec && srd.bounded_loops);
        let swr = c.classify("crates/store/src/writer.rs");
        assert!(!swr.untrusted && swr.wire_codec && !swr.bounded_loops);
    }

    #[test]
    fn allow_next_fn_suppresses_whole_function() {
        let class = FileClass {
            untrusted: true,
            ..Default::default()
        };
        let (d, n) = lint_source(
            "t.rs",
            "// lint:allow-next-fn(R1): literal macro panics by contract\n\
             fn f(x: Option<u8>, y: Option<u8>) -> u8 {\n\
                 x.unwrap() + y.unwrap()\n\
             }",
            class,
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(n, 1);
        // The span stops at the item's closing brace.
        let (d, _) = lint_source(
            "t.rs",
            "// lint:allow-next-fn(R1): covers f only\n\
             fn f(x: Option<u8>) -> u8 {\n\
                 x.unwrap()\n\
             }\n\
             fn g(y: Option<u8>) -> u8 {\n\
                 y.unwrap()\n\
             }",
            class,
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::R1);
        assert_eq!(d[0].line, 6);
        // A span with nothing to suppress is flagged unused.
        let (d, _) = lint_source(
            "t.rs",
            "// lint:allow-next-fn(R1): stale\nfn f() -> u8 { 1 }",
            class,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::R0);
        assert!(d[0].message.contains("unused"), "{d:?}");
    }

    #[test]
    fn lex_cache_hits_on_same_content_and_invalidates_on_change() {
        // Unique path so counters aren't shared with other tests.
        let rel = "cache-test/unique.rs";
        let a = lex_cached(rel, "fn a() {}");
        let b = lex_cached(rel, "fn a() {}");
        assert_eq!(a.tokens.len(), b.tokens.len());
        let (hits1, _) = lex_cache_stats();
        assert!(hits1 >= 1, "second identical lex must hit the cache");
        // Changed content under the same path must re-lex.
        let c = lex_cached(rel, "fn a() { let x = 1; }");
        assert!(c.tokens.len() > b.tokens.len());
    }

    #[test]
    fn allow_suppresses_exactly_one_line_and_requires_reason() {
        let class = FileClass {
            untrusted: true,
            ..Default::default()
        };
        let (d, n) = lint_source(
            "t.rs",
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint:allow(R1): bounded by caller\n}",
            class,
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(n, 1);

        let (d, _) = lint_source(
            "t.rs",
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint:allow(R1)\n}",
            class,
        );
        assert!(d.iter().any(|d| d.rule == Rule::R0), "{d:?}");
        assert!(d.iter().any(|d| d.rule == Rule::R1), "unreasoned allow must not suppress");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let class = FileClass {
            untrusted: true,
            ..Default::default()
        };
        let (d, _) = lint_source(
            "t.rs",
            "// lint:allow(R1): no longer needed\nfn f() -> u8 { 1 }",
            class,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::R0);
        assert!(d[0].message.contains("unused"));
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let class = FileClass {
            untrusted: true,
            ..Default::default()
        };
        let (d, _) = lint_source(
            "t.rs",
            "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(R1): checked by caller\n    x.unwrap()\n}",
            class,
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
