//! End-to-end fixtures for the crate-wide layer: R8 reachability and
//! R9 determinism driven through [`mx_lint::lint_sources`], including
//! `lint:allow` suppression — the merge-then-allow plumbing the unit
//! tests in `graph.rs`/`rules.rs` cannot see.

use mx_lint::{lint_sources, LintConfig, Rule};

fn sources(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect()
}

fn config() -> LintConfig {
    LintConfig {
        untrusted: Vec::new(),
        wire_codecs: Vec::new(),
        bounded_loops: Vec::new(),
        deterministic: Vec::new(),
        entry_points: Vec::new(),
        skip_dirs: Vec::new(),
    }
}

fn rules_of(report: &mx_lint::Report) -> Vec<Rule> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

/// Taint crosses two hops and two files: `ingest` (entry point) calls
/// `mid` in another file, `mid` calls `deep`, and `deep` unwraps. The
/// diagnostic lands on the sink line in `deep.rs` and names both the
/// entry and the hop count.
#[test]
fn two_hop_cross_file_taint_lands_on_the_sink() {
    let srcs = sources(&[
        (
            "crates/a/src/input.rs",
            "pub fn ingest(b: &[u8]) -> usize { mid(b) }\n",
        ),
        (
            "crates/a/src/mid.rs",
            "pub(crate) fn mid(b: &[u8]) -> usize { deep(b) }\n",
        ),
        (
            "crates/a/src/deep.rs",
            "pub(crate) fn deep(b: &[u8]) -> usize {\n    b.first().copied().map(usize::from).unwrap()\n}\n",
        ),
    ]);
    let mut cfg = config();
    cfg.entry_points = vec!["crates/a/src/input.rs::ingest".into()];
    let report = lint_sources(&srcs, &cfg);
    assert_eq!(rules_of(&report), [Rule::R8], "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.file, "crates/a/src/deep.rs");
    assert_eq!(d.line, 2);
    assert!(
        d.message.contains("`deep` is reachable from untrusted input")
            && d.message.contains("via entry `crates/a/src/input.rs::ingest`")
            && d.message.contains("1 more hop(s)"),
        "{}",
        d.message
    );
}

/// Unrestricted-`pub` fns of `untrusted`-classed files seed taint with
/// no explicit entry point; the sink in the sibling file is flagged
/// while the untrusted file itself stays R1's business.
#[test]
fn untrusted_pub_fns_seed_taint() {
    let srcs = sources(&[
        (
            "crates/a/src/wire.rs",
            "pub fn ingest(b: &[u8]) -> usize { helper(b.len(), 4) }\n",
        ),
        (
            "crates/a/src/util.rs",
            "pub(crate) fn helper(len: usize, padding: usize) -> usize { len + padding }\n",
        ),
    ]);
    let mut cfg = config();
    cfg.untrusted = vec!["crates/a/src/wire.rs".into()];
    let report = lint_sources(&srcs, &cfg);
    let r8: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::R8)
        .collect();
    assert_eq!(r8.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(r8[0].file, "crates/a/src/util.rs");
    assert!(r8[0].message.contains("may overflow"), "{}", r8[0].message);
}

/// A sink nobody reaches from an entry point stays quiet.
#[test]
fn unreachable_sink_is_quiet() {
    let srcs = sources(&[
        (
            "crates/a/src/input.rs",
            "pub fn ingest(b: &[u8]) -> usize { b.len() }\n",
        ),
        (
            "crates/a/src/orphan.rs",
            "pub(crate) fn orphan(v: Option<u8>) -> u8 { v.unwrap() }\n",
        ),
    ]);
    let mut cfg = config();
    cfg.entry_points = vec!["crates/a/src/input.rs::ingest".into()];
    let report = lint_sources(&srcs, &cfg);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

/// A trailing `lint:allow(R8)` on the sink line suppresses the merged
/// crate-wide finding *and* counts as used — no residual R0.
#[test]
fn lint_allow_r8_suppresses_the_merged_finding() {
    let srcs = sources(&[
        (
            "crates/a/src/input.rs",
            "pub fn ingest(v: Option<u8>) -> u8 { deep(v) }\n",
        ),
        (
            "crates/a/src/deep.rs",
            "pub(crate) fn deep(v: Option<u8>) -> u8 {\n    v.unwrap() // lint:allow(R8): fixture exercises suppression\n}\n",
        ),
    ]);
    let mut cfg = config();
    cfg.entry_points = vec!["crates/a/src/input.rs::ingest".into()];
    let report = lint_sources(&srcs, &cfg);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.allows_total, 1);
}

/// Hash iteration in a `deterministic`-scoped file fires R9; the same
/// code outside the scope does not.
#[test]
fn r9_fires_only_in_deterministic_scope() {
    let src = "\
use std::collections::HashMap;
pub fn emit(m: &HashMap<String, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}
";
    let srcs = sources(&[("crates/a/src/out.rs", src)]);
    let mut cfg = config();
    cfg.deterministic = vec!["crates/a/src/out.rs".into()];
    let report = lint_sources(&srcs, &cfg);
    assert_eq!(rules_of(&report), [Rule::R9], "{:?}", report.diagnostics);
    assert_eq!(report.diagnostics[0].line, 4);

    let unscoped = lint_sources(&srcs, &config());
    assert!(unscoped.is_clean(), "{:?}", unscoped.diagnostics);
}

/// A `*_volatile!` probe on the iteration line marks the value Per-Run:
/// exempt by declaration.
#[test]
fn r9_volatile_line_is_exempt() {
    let src = "\
use std::collections::HashMap;
pub fn probe(m: &HashMap<String, u32>) {
    counter_volatile!(\"peek\", m.values().sum::<u32>() as u64);
}
";
    let srcs = sources(&[("crates/a/src/out.rs", src)]);
    let mut cfg = config();
    cfg.deterministic = vec!["crates/a/src/out.rs".into()];
    let report = lint_sources(&srcs, &cfg);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

/// `lint:allow(R9)` suppresses a clock read in scope.
#[test]
fn lint_allow_r9_suppresses_clock_read() {
    let src = "\
pub fn stamp() -> std::time::Instant {
    // lint:allow(R9): fixture exercises suppression
    std::time::Instant::now()
}
";
    let srcs = sources(&[("crates/a/src/out.rs", src)]);
    let mut cfg = config();
    cfg.deterministic = vec!["crates/a/src/out.rs".into()];
    let report = lint_sources(&srcs, &cfg);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.allows_total, 1);
}

/// The same sources linted twice produce byte-identical diagnostic
/// streams — the ordering contract the reporters build on.
#[test]
fn diagnostics_are_deterministically_ordered() {
    let srcs = sources(&[
        (
            "crates/a/src/input.rs",
            "pub fn ingest(v: Option<u8>) -> u8 { deep(v) }\n",
        ),
        (
            "crates/a/src/deep.rs",
            "pub(crate) fn deep(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
        ),
    ]);
    let mut cfg = config();
    cfg.entry_points = vec!["crates/a/src/input.rs::ingest".into()];
    let a = lint_sources(&srcs, &cfg);
    let b = lint_sources(&srcs, &cfg);
    let render = |r: &mx_lint::Report| {
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(!a.is_clean());
    assert_eq!(render(&a), render(&b));
}
