//! The seeded-violation fixture must keep firing: if a refactor of the
//! lexer or rules ever stops catching one of these constructs, this test
//! fails before the workspace gate silently goes blind.

use std::path::Path;

use mx_lint::{lint_file, FileClass, Rule};

fn fixture_diags() -> Vec<mx_lint::Diagnostic> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("fixtures/violations.rs");
    let class = FileClass {
        untrusted: true,
        wire_codec: true,
        crate_root: false,
        bounded_loops: true,
        deterministic: true,
    };
    let (diags, _) = lint_file(root, &path, class).expect("fixture readable");
    diags
}

#[test]
fn every_rule_fires_on_the_fixture() {
    let diags = fixture_diags();
    for rule in [Rule::R0, Rule::R1, Rule::R2, Rule::R3, Rule::R5, Rule::R6, Rule::R9] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{rule} did not fire on the fixture; diagnostics: {diags:#?}"
        );
    }
}

#[test]
fn fixture_counts_are_exact() {
    let diags = fixture_diags();
    let count = |r: Rule| diags.iter().filter(|d| d.rule == r).count();
    // 4 panicking constructs + 1 indexing site.
    assert_eq!(count(Rule::R1), 5, "{diags:#?}");
    assert_eq!(count(Rule::R2), 1, "{diags:#?}");
    // Unbounded with_capacity + unbounded recursion.
    assert_eq!(count(Rule::R3), 2, "{diags:#?}");
    // The unbounded busy-wait.
    assert_eq!(count(Rule::R5), 1, "{diags:#?}");
    // The deliberately unused allow.
    assert_eq!(count(Rule::R0), 1, "{diags:#?}");
    // The stringly-typed error signature.
    assert_eq!(count(Rule::R6), 1, "{diags:#?}");
    // Hash-order iteration + host clock + env read.
    assert_eq!(count(Rule::R9), 3, "{diags:#?}");
}

#[test]
fn cli_exits_nonzero_on_fixture_and_zero_on_workspace() {
    let lint_bin = env!("CARGO_BIN_EXE_mx-lint");
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));

    let fixture = manifest.join("fixtures/violations.rs");
    let out = std::process::Command::new(lint_bin)
        .args(["--file", &fixture.to_string_lossy()])
        .output()
        .expect("run mx-lint on fixture");
    assert_eq!(out.status.code(), Some(1), "fixture must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R1"), "diagnostics on stdout: {stdout}");

    let workspace_root = manifest.parent().and_then(Path::parent).expect("repo root");
    let out = std::process::Command::new(lint_bin)
        .args(["--root", &workspace_root.to_string_lossy()])
        .output()
        .expect("run mx-lint on workspace");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must be lint-clean; output:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
