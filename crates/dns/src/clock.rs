//! Deterministic simulated time.
//!
//! The study spans nine semi-annual snapshots (June 2017 – June 2021); the
//! simulation advances a shared clock to each snapshot date, which drives
//! DNS TTL expiry and certificate validity windows. No wall-clock time is
//! ever consulted, keeping every run reproducible.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;


/// Seconds since the Unix epoch, as used throughout the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Construct from a civil date (UTC midnight). Uses Howard Hinnant's
    /// `days_from_civil` algorithm; valid for all dates of interest.
    pub fn from_ymd(year: i64, month: u32, day: u32) -> Timestamp {
        let y = if month <= 2 { year - 1 } else { year };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as u64; // [0, 399]
        let m = month as u64;
        let d = day as u64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        let days = era * 146097 + doe as i64 - 719468;
        Timestamp((days as u64) * 86_400)
    }

    /// Decompose into (year, month, day) UTC.
    pub fn to_ymd(self) -> (i64, u32, u32) {
        let z = (self.0 / 86_400) as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = (z - era * 146_097) as u64; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe as i64 + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        (if m <= 2 { y + 1 } else { y }, m, d)
    }

    /// Seconds since epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Add a number of days.
    pub fn plus_days(self, days: u64) -> Timestamp {
        Timestamp(self.0 + days * 86_400)
    }

    /// Add seconds.
    pub fn plus_secs(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// ISO `YYYY-MM` label, the granularity the paper's x-axes use.
    pub fn ym_label(self) -> String {
        let (y, m, _) = self.to_ymd();
        format!("{y:04}-{m:02}")
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A shared, monotonically advancing simulated clock.
///
/// Cloning shares the underlying instant (it is an `Arc`).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
    charged: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at the Unix epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Self {
        let c = Self::new();
        c.set(t);
        c
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::Relaxed))
    }

    /// Jump to an absolute time. Panics if this would move time backwards —
    /// TTL caches and certificate validity assume monotonic time.
    pub fn set(&self, t: Timestamp) {
        let prev = self.now.swap(t.0, Ordering::Relaxed);
        assert!(prev <= t.0, "SimClock moved backwards: {prev} -> {}", t.0);
    }

    /// Advance by `secs` seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.now.fetch_add(secs, Ordering::Relaxed);
    }

    /// Advance by whole days.
    pub fn advance_days(&self, days: u64) {
        self.advance_secs(days * 86_400);
    }

    /// Charge simulated cost (retry backoff, tarpit waits) WITHOUT
    /// advancing `now`. Advancing shared time from concurrently running
    /// workers would make TTL expiry and certificate validity depend on
    /// scheduling order; atomic adds to a side counter commute, so the
    /// total stays thread-count invariant while `now` stays stable
    /// within a round.
    pub fn charge(&self, secs: u64) {
        self.charged.fetch_add(secs, Ordering::Relaxed);
    }

    /// Total simulated seconds charged via [`SimClock::charge`] since
    /// construction (shared across clones).
    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        assert_eq!(Timestamp::from_ymd(1970, 1, 1).secs(), 0);
        assert_eq!(Timestamp(0).to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // The paper's snapshot anchors.
        let t = Timestamp::from_ymd(2017, 6, 8);
        assert_eq!(t.to_string(), "2017-06-08");
        let t = Timestamp::from_ymd(2021, 6, 8);
        assert_eq!(t.to_string(), "2021-06-08");
        assert_eq!(t.ym_label(), "2021-06");
    }

    #[test]
    fn ymd_roundtrip_sweep() {
        // Every 17 days across the study period round-trips exactly.
        let mut t = Timestamp::from_ymd(2016, 1, 1);
        let end = Timestamp::from_ymd(2023, 1, 1);
        while t < end {
            let (y, m, d) = t.to_ymd();
            assert_eq!(Timestamp::from_ymd(y, m, d), t);
            t = t.plus_days(17);
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(
            Timestamp::from_ymd(2020, 2, 29).plus_days(1).to_ymd(),
            (2020, 3, 1)
        );
        assert_eq!(
            Timestamp::from_ymd(2019, 2, 28).plus_days(1).to_ymd(),
            (2019, 3, 1)
        );
    }

    #[test]
    fn clock_advances_and_shares() {
        let c = SimClock::starting_at(Timestamp::from_ymd(2017, 6, 8));
        let c2 = c.clone();
        c.advance_days(183);
        assert_eq!(c2.now(), Timestamp::from_ymd(2017, 12, 8));
    }

    #[test]
    fn charge_accumulates_without_advancing_now() {
        let c = SimClock::starting_at(Timestamp::from_ymd(2020, 1, 1));
        let c2 = c.clone();
        c.charge(30);
        c2.charge(12);
        assert_eq!(c.charged(), 42);
        assert_eq!(c2.charged(), 42);
        assert_eq!(c.now(), Timestamp::from_ymd(2020, 1, 1));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clock_is_monotonic() {
        let c = SimClock::starting_at(Timestamp::from_ymd(2020, 1, 1));
        c.set(Timestamp::from_ymd(2019, 1, 1));
    }
}
