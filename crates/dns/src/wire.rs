//! DNS wire-format primitives: a cursor-based reader and writer with RFC
//! 1035 §4.1.4 name compression on both paths.

use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::name::{Name, NameError, MAX_LABEL_LEN};

/// Hard cap on a DNS message we will produce or accept. Generous enough for
/// any simulated response while still bounding memory.
pub const MAX_MESSAGE_LEN: usize = 16 * 1024;

/// Errors while encoding or decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Read past the end of the buffer.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label length octet used the reserved 0b10/0b01 prefixes.
    BadLabelLength(u8),
    /// Name-level validation failed (too long, bad bytes).
    BadName(NameError),
    /// RDLENGTH disagreed with the actual RDATA encoding.
    BadRdLength {
        /// The RDLENGTH value from the wire.
        declared: u16,
        /// Bytes the RDATA decode actually consumed.
        actual: usize,
    },
    /// A TXT character-string exceeded 255 bytes.
    StringTooLong(usize),
    /// Message exceeded [`MAX_MESSAGE_LEN`] while encoding.
    MessageTooLong,
    /// Trailing bytes after a complete message (strict decode).
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabelLength(b) => write!(f, "reserved label length {b:#04x}"),
            WireError::BadName(e) => write!(f, "invalid name: {e}"),
            WireError::BadRdLength { declared, actual } => {
                write!(f, "RDLENGTH {declared} != actual {actual}")
            }
            WireError::StringTooLong(n) => write!(f, "character-string of {n} bytes"),
            WireError::MessageTooLong => write!(f, "message exceeds {MAX_MESSAGE_LEN} bytes"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<NameError> for WireError {
    fn from(e: NameError) -> Self {
        WireError::BadName(e)
    }
}

/// Wire writer with name compression.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
    /// Suffix (as dotted string) -> offset of its first occurrence.
    compress: HashMap<String, u16>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length of the encoded buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn check_len(&self) -> Result<(), WireError> {
        if self.buf.len() > MAX_MESSAGE_LEN {
            Err(WireError::MessageTooLong)
        } else {
            Ok(())
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) -> Result<(), WireError> {
        self.buf.push(v);
        self.check_len()
    }

    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self.check_len()
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> Result<(), WireError> {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self.check_len()
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) -> Result<(), WireError> {
        self.buf.extend_from_slice(v);
        self.check_len()
    }

    /// Append an IPv4 address (4 bytes).
    pub fn put_ipv4(&mut self, a: Ipv4Addr) -> Result<(), WireError> {
        self.put_bytes(&a.octets())
    }

    /// Append an IPv6 address (16 bytes).
    pub fn put_ipv6(&mut self, a: Ipv6Addr) -> Result<(), WireError> {
        self.put_bytes(&a.octets())
    }

    /// A `<character-string>`: one length octet then up to 255 bytes.
    pub fn put_char_string(&mut self, s: &str) -> Result<(), WireError> {
        let b = s.as_bytes();
        let len = u8::try_from(b.len()).map_err(|_| WireError::StringTooLong(b.len()))?;
        self.put_u8(len)?;
        self.put_bytes(b)
    }

    /// One length-prefixed label. `Name` guarantees labels fit in 63
    /// bytes, but the invariant is re-checked rather than assumed.
    fn put_label(&mut self, label: &str) -> Result<(), WireError> {
        let len = u8::try_from(label.len())
            .ok()
            .filter(|&l| usize::from(l) <= MAX_LABEL_LEN)
            .ok_or_else(|| WireError::BadName(NameError::LabelTooLong(label.to_string())))?;
        self.put_u8(len)?;
        self.put_bytes(label.as_bytes())
    }

    /// Encode a name, emitting a compression pointer to the longest
    /// already-encoded suffix when possible and registering new suffixes.
    pub fn put_name(&mut self, name: &Name) -> Result<(), WireError> {
        let mut rest: &[String] = name.labels();
        while let Some((label, tail)) = rest.split_first() {
            let suffix = rest.join(".");
            if let Some(&off) = self.compress.get(&suffix) {
                // Pointers must fit in 14 bits; only offsets < 0x4000 are
                // ever inserted below.
                self.put_u16(0xC000 | off)?;
                return Ok(());
            }
            if let Ok(here) = u16::try_from(self.buf.len()) {
                if here < 0x4000 {
                    self.compress.insert(suffix, here);
                }
            }
            self.put_label(label)?;
            rest = tail;
        }
        self.put_u8(0) // root label
    }

    /// Encode a name with no compression (used inside RDATA where some
    /// implementations choke on pointers; our SOA/MX use compression, which
    /// RFC 1035 permits for well-known types, but TXT-like blobs must not).
    pub fn put_name_uncompressed(&mut self, name: &Name) -> Result<(), WireError> {
        for label in name.labels() {
            self.put_label(label)?;
        }
        self.put_u8(0)
    }

    /// Reserve a u16 slot (e.g. RDLENGTH), returning its offset for
    /// [`WireWriter::patch_u16`].
    pub fn reserve_u16(&mut self) -> Result<usize, WireError> {
        let off = self.buf.len();
        self.put_u16(0)?;
        Ok(off)
    }

    /// Back-patch a previously reserved u16. Fails if the slot was never
    /// reserved (offset out of range).
    pub fn patch_u16(&mut self, offset: usize, v: u16) -> Result<(), WireError> {
        let slot = self
            .buf
            .get_mut(offset..offset + 2)
            .ok_or(WireError::Truncated)?;
        slot.copy_from_slice(&v.to_be_bytes());
        Ok(())
    }
}

/// Wire reader over a full message (needed for pointer resolution).
#[derive(Debug)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over a full message buffer.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let v = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b: [u8; 2] = self
            .get_bytes(2)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        Ok(u16::from_be_bytes(b))
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b: [u8; 4] = self
            .get_bytes(4)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        Ok(u32::from_be_bytes(b))
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let b = self.data.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(b)
    }

    /// Read an IPv4 address (4 bytes).
    pub fn get_ipv4(&mut self) -> Result<Ipv4Addr, WireError> {
        let b: [u8; 4] = self
            .get_bytes(4)?
            .try_into()
            .map_err(|_| WireError::Truncated)?;
        Ok(Ipv4Addr::from(b))
    }

    /// Read an IPv6 address (16 bytes).
    pub fn get_ipv6(&mut self) -> Result<Ipv6Addr, WireError> {
        let b = self.get_bytes(16)?;
        let mut o = [0u8; 16];
        o.copy_from_slice(b);
        Ok(Ipv6Addr::from(o))
    }

    /// Read a `<character-string>` (length octet + bytes).
    pub fn get_char_string(&mut self) -> Result<String, WireError> {
        let len = self.get_u8()? as usize;
        let b = self.get_bytes(len)?;
        // DNS character-strings are bytes; we keep them lossily as UTF-8.
        Ok(String::from_utf8_lossy(b).into_owned())
    }

    /// Decode a possibly-compressed name starting at the cursor. Pointers
    /// must point strictly backwards, which also bounds the loop.
    pub fn get_name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut end_pos = self.pos; // cursor after the in-line part
        let mut min_ptr = self.data.len(); // each pointer must decrease
        loop {
            let len = *self.data.get(pos).ok_or(WireError::Truncated)?;
            match len & 0xC0 {
                0x00 => {
                    pos += 1;
                    if len == 0 {
                        if !jumped {
                            end_pos = pos;
                        }
                        break;
                    }
                    let end = pos
                        .checked_add(len as usize)
                        .ok_or(WireError::Truncated)?;
                    let b = self.data.get(pos..end).ok_or(WireError::Truncated)?;
                    pos = end;
                    if !jumped {
                        end_pos = pos;
                    }
                    let label = String::from_utf8_lossy(b).to_ascii_lowercase();
                    labels.push(label);
                    if labels.len() > 128 {
                        return Err(WireError::BadName(NameError::NameTooLong));
                    }
                }
                0xC0 => {
                    let b2 = *self.data.get(pos + 1).ok_or(WireError::Truncated)?;
                    if !jumped {
                        end_pos = pos + 2;
                    }
                    let target = (((len & 0x3F) as usize) << 8) | b2 as usize;
                    if target >= min_ptr || target >= pos {
                        return Err(WireError::BadPointer);
                    }
                    min_ptr = target;
                    pos = target;
                    jumped = true;
                }
                other => return Err(WireError::BadLabelLength(other)),
            }
        }
        self.pos = end_pos;
        Name::from_labels(labels).map_err(WireError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(7).unwrap();
        w.put_u16(0xBEEF).unwrap();
        w.put_u32(0xDEADBEEF).unwrap();
        w.put_ipv4("10.1.2.3".parse().unwrap()).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_ipv4().unwrap(), "10.1.2.3".parse::<Ipv4Addr>().unwrap());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let mut w = WireWriter::new();
        w.put_name(&dns_name!("mx1.provider.com")).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 3); // "mx1"
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_name().unwrap(), dns_name!("mx1.provider.com"));
    }

    #[test]
    fn compression_emits_pointer_and_decodes() {
        let mut w = WireWriter::new();
        w.put_name(&dns_name!("mx1.provider.com")).unwrap();
        let first_len = w.len();
        w.put_name(&dns_name!("mx2.provider.com")).unwrap();
        let bytes = w.into_bytes();
        // Second name: 1 len + 3 bytes "mx2" + 2-byte pointer = 6 bytes.
        assert_eq!(bytes.len() - first_len, 6);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_name().unwrap(), dns_name!("mx1.provider.com"));
        assert_eq!(r.get_name().unwrap(), dns_name!("mx2.provider.com"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn identical_name_is_a_pure_pointer() {
        let mut w = WireWriter::new();
        w.put_name(&dns_name!("a.example.com")).unwrap();
        let first = w.len();
        w.put_name(&dns_name!("a.example.com")).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len() - first, 2);
        let mut r = WireReader::new(&bytes);
        r.get_name().unwrap();
        assert_eq!(r.get_name().unwrap(), dns_name!("a.example.com"));
    }

    #[test]
    fn root_name() {
        let mut w = WireWriter::new();
        w.put_name(&Name::root()).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0]);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_name().unwrap(), Name::root());
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer to offset 2 from offset 0: forward -> invalid.
        let bytes = [0xC0, 0x02, 0x00];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_name().unwrap_err(), WireError::BadPointer);
    }

    #[test]
    fn pointer_loop_rejected() {
        // name at 0: label "a" then pointer to itself at 0 -> loop.
        let bytes = [0x01, b'a', 0xC0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_name().unwrap_err(),
            WireError::BadPointer | WireError::BadName(_)
        ));
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let bytes = [0x80, 0x01];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_name().unwrap_err(), WireError::BadLabelLength(0x80));
    }

    #[test]
    fn truncated_name_rejected() {
        let bytes = [0x05, b'a', b'b'];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_name().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn char_string_roundtrip() {
        let mut w = WireWriter::new();
        w.put_char_string("v=spf1 include:_spf.google.com ~all").unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            r.get_char_string().unwrap(),
            "v=spf1 include:_spf.google.com ~all"
        );
    }

    #[test]
    fn char_string_too_long() {
        let mut w = WireWriter::new();
        let s = "x".repeat(256);
        assert_eq!(
            w.put_char_string(&s).unwrap_err(),
            WireError::StringTooLong(256)
        );
    }

    #[test]
    fn patch_u16() {
        let mut w = WireWriter::new();
        let slot = w.reserve_u16().unwrap();
        w.put_u32(1).unwrap();
        w.patch_u16(slot, 0x1234);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[0..2], &[0x12, 0x34]);
    }

    #[test]
    fn names_after_pointer_keep_cursor() {
        // Encode two names, decode them, then a trailing u16 must still be
        // readable at the right position.
        let mut w = WireWriter::new();
        w.put_name(&dns_name!("example.com")).unwrap();
        w.put_name(&dns_name!("mail.example.com")).unwrap();
        w.put_u16(0xAAAA).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.get_name().unwrap();
        r.get_name().unwrap();
        assert_eq!(r.get_u16().unwrap(), 0xAAAA);
    }
}
