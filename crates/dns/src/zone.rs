//! Authoritative zone data and lookup semantics.
//!
//! Implements the parts of RFC 1034 §4.3.2 the measurement needs done
//! *right*: the NXDOMAIN vs NODATA distinction (Table 4 of the paper
//! separates "no MX IP" cases, which requires faithful negative answers),
//! CNAME processing at a node, wildcard synthesis, and delegation
//! (referral) when a query falls below a delegated child.

use std::collections::{BTreeMap, BTreeSet};


use crate::name::Name;
use crate::rr::{RData, Record, RecordType, Soa};

/// Outcome of looking a (name, type) up in a single zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Records of the requested type exist at the name (possibly
    /// synthesised from a wildcard).
    Answer(Vec<Record>),
    /// The name exists (or matched a wildcard) and owns a CNAME; the chain
    /// element is returned and the caller restarts at the target.
    Cname(Record),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The name lies below a delegation; NS records of the child zone cut.
    Referral(Vec<Record>),
    /// The name is not within this zone at all.
    OutOfZone,
}

/// An authoritative zone: an origin, a SOA and a set of records.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    soa: Soa,
    soa_ttl: u32,
    /// All records, keyed by owner name (absolute).
    records: BTreeMap<Name, Vec<Record>>,
}

impl Zone {
    /// Create an empty zone with a generated SOA.
    pub fn new(origin: Name) -> Zone {
        let mname = origin.child("ns1").unwrap_or_else(|_| origin.clone());
        let rname = origin
            .child("hostmaster")
            .unwrap_or_else(|_| origin.clone());
        Zone {
            origin,
            soa: Soa {
                mname,
                rname,
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            },
            soa_ttl: 3600,
            records: BTreeMap::new(),
        }
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The zone's SOA data.
    pub fn soa(&self) -> &Soa {
        &self.soa
    }

    /// The SOA as a record (used in negative-answer authority sections).
    pub fn soa_record(&self) -> Record {
        Record::new(self.origin.clone(), self.soa_ttl, RData::Soa(self.soa.clone()))
    }

    /// Negative-caching TTL (RFC 2308: min(SOA TTL, SOA.minimum)).
    pub fn negative_ttl(&self) -> u32 {
        self.soa_ttl.min(self.soa.minimum)
    }

    /// Bump the SOA serial (zone edits during longitudinal evolution).
    pub fn bump_serial(&mut self) {
        self.soa.serial = self.soa.serial.wrapping_add(1);
    }

    /// Replace the SOA data (used by the master-file parser).
    pub fn set_soa(&mut self, soa: Soa) {
        self.soa = soa;
    }

    /// Add a record. Panics if the owner is outside the zone — generator
    /// bugs should fail loudly.
    pub fn add(&mut self, record: Record) {
        assert!(
            record.name.is_subdomain_of(&self.origin),
            "record {} outside zone {}",
            record.name,
            self.origin
        );
        self.records.entry(record.name.clone()).or_default().push(record);
    }

    /// Convenience: add an A/MX/CNAME/etc. by parts.
    pub fn add_rr(&mut self, name: Name, ttl: u32, rdata: RData) {
        self.add(Record::new(name, ttl, rdata));
    }

    /// Remove all records at `name` of type `rtype`; returns removed count.
    pub fn remove(&mut self, name: &Name, rtype: RecordType) -> usize {
        match self.records.get_mut(name) {
            None => 0,
            Some(v) => {
                let before = v.len();
                v.retain(|r| r.rtype() != rtype);
                let removed = before - v.len();
                if v.is_empty() {
                    self.records.remove(name);
                }
                removed
            }
        }
    }

    /// Total record count (excluding the implicit SOA).
    pub fn record_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Iterate all records.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// Raw records of one type at one owner, ignoring delegation cuts —
    /// used for glue fetching (glue A records live *below* the cut that
    /// would otherwise turn the lookup into a referral).
    pub fn records_at(&self, name: &Name, rtype: RecordType) -> Vec<Record> {
        self.records
            .get(name)
            .map(|rs| {
                rs.iter()
                    .filter(|r| r.rtype() == rtype)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Does any name exist at or below `name`? (Controls NXDOMAIN vs the
    /// empty-non-terminal case.)
    fn exists(&self, name: &Name) -> bool {
        if self.records.contains_key(name) {
            return true;
        }
        // Empty non-terminal: some stored name is a strict subdomain.
        self.records
            .range(name.clone()..)
            .take_while(|(n, _)| n.is_subdomain_of(name))
            .next()
            .is_some()
    }

    /// Find the closest delegation point strictly between origin and name.
    fn delegation_for(&self, name: &Name) -> Option<Vec<Record>> {
        // Walk ancestors of `name` from just below origin down to name.
        let mut cut: Option<Vec<Record>> = None;
        let mut current = name.clone();
        let mut chain = Vec::new();
        while current != self.origin {
            chain.push(current.clone());
            current = current.parent()?;
        }
        // chain is name..=child-of-origin; check top-down.
        for n in chain.iter().rev() {
            if let Some(rs) = self.records.get(n) {
                let ns: Vec<Record> = rs
                    .iter()
                    .filter(|r| r.rtype() == RecordType::Ns)
                    .cloned()
                    .collect();
                if !ns.is_empty() && n != name {
                    cut = Some(ns);
                    break;
                }
                if !ns.is_empty() && n == name {
                    // NS at the queried name itself: also a referral unless
                    // it's the origin (handled by loop bound).
                    cut = Some(ns);
                    break;
                }
            }
        }
        cut
    }

    /// Look up (name, rtype) per RFC 1034 §4.3.2.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> ZoneLookup {
        if !name.is_subdomain_of(&self.origin) {
            return ZoneLookup::OutOfZone;
        }
        // Delegations first: anything at/below a zone cut is referred,
        // except queries at the origin itself.
        if name != &self.origin {
            if let Some(ns) = self.delegation_for(name) {
                return ZoneLookup::Referral(ns);
            }
        }
        if let Some(rs) = self.records.get(name) {
            // CNAME handling: if the node owns a CNAME and the query is not
            // for CNAME/ANY, return the chain element.
            let cname = rs.iter().find(|r| r.rtype() == RecordType::Cname);
            if let Some(c) = cname {
                if rtype != RecordType::Cname && rtype != RecordType::Any {
                    return ZoneLookup::Cname(c.clone());
                }
            }
            let matched: Vec<Record> = rs
                .iter()
                .filter(|r| rtype == RecordType::Any || r.rtype() == rtype)
                .cloned()
                .collect();
            if !matched.is_empty() {
                return ZoneLookup::Answer(matched);
            }
            return ZoneLookup::NoData;
        }
        if self.exists(name) {
            // Empty non-terminal.
            return ZoneLookup::NoData;
        }
        // Wildcard synthesis: the closest encloser's `*` child, per RFC
        // 1034/4592, applies only if the query name does not exist.
        if let Some(wild) = self.closest_wildcard(name) {
            let rs = match self.records.get(&wild) {
                Some(rs) => rs,
                // closest_wildcard only returns stored names, but keep
                // the lookup total rather than panicking on a bug.
                None => return ZoneLookup::NoData,
            };
            let cname = rs.iter().find(|r| r.rtype() == RecordType::Cname);
            if let Some(c) = cname {
                if rtype != RecordType::Cname && rtype != RecordType::Any {
                    let mut synth = c.clone();
                    synth.name = name.clone();
                    return ZoneLookup::Cname(synth);
                }
            }
            let matched: Vec<Record> = rs
                .iter()
                .filter(|r| rtype == RecordType::Any || r.rtype() == rtype)
                .map(|r| {
                    let mut synth = r.clone();
                    synth.name = name.clone();
                    synth
                })
                .collect();
            if !matched.is_empty() {
                return ZoneLookup::Answer(matched);
            }
            return ZoneLookup::NoData;
        }
        ZoneLookup::NxDomain
    }

    /// Find the wildcard owner that would synthesise answers for `name`:
    /// `*.<closest-encloser>` where the closest encloser is the longest
    /// existing ancestor of `name`.
    fn closest_wildcard(&self, name: &Name) -> Option<Name> {
        let mut ancestor = name.parent()?;
        loop {
            let wild = ancestor.child("*").ok()?;
            if self.records.contains_key(&wild) && self.exists(&ancestor) {
                return Some(wild);
            }
            if self.records.contains_key(&wild) && ancestor == self.origin {
                return Some(wild);
            }
            // Wildcard applies from the closest encloser only: if the
            // ancestor exists without a wildcard child, stop.
            if self.exists(&ancestor) {
                return None;
            }
            if ancestor == self.origin {
                return None;
            }
            ancestor = ancestor.parent()?;
        }
    }

    /// The set of distinct owner names (diagnostics / tests).
    pub fn owner_names(&self) -> BTreeSet<&Name> {
        self.records.keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;
    use std::net::Ipv4Addr;

    fn zone() -> Zone {
        let mut z = Zone::new(dns_name!("example.com"));
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx1.example.com"),
            },
        );
        z.add_rr(
            dns_name!("mx1.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        );
        z.add_rr(
            dns_name!("www.example.com"),
            300,
            RData::Cname(dns_name!("web.example.com")),
        );
        z.add_rr(
            dns_name!("web.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        );
        z.add_rr(
            dns_name!("*.pages.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 99)),
        );
        z.add_rr(
            dns_name!("child.example.com"),
            3600,
            RData::Ns(dns_name!("ns1.child.example.com")),
        );
        // Empty non-terminal: only a deep name under "ent".
        z.add_rr(
            dns_name!("deep.ent.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 50)),
        );
        z
    }

    #[test]
    fn answer_and_nodata() {
        let z = zone();
        match z.lookup(&dns_name!("example.com"), RecordType::Mx) {
            ZoneLookup::Answer(rs) => assert_eq!(rs.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            z.lookup(&dns_name!("mx1.example.com"), RecordType::Mx),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn nxdomain() {
        let z = zone();
        assert_eq!(
            z.lookup(&dns_name!("nope.example.com"), RecordType::A),
            ZoneLookup::NxDomain
        );
    }

    #[test]
    fn out_of_zone() {
        let z = zone();
        assert_eq!(
            z.lookup(&dns_name!("example.org"), RecordType::A),
            ZoneLookup::OutOfZone
        );
    }

    #[test]
    fn cname_chain_element() {
        let z = zone();
        match z.lookup(&dns_name!("www.example.com"), RecordType::A) {
            ZoneLookup::Cname(r) => {
                assert_eq!(r.rdata, RData::Cname(dns_name!("web.example.com")));
            }
            other => panic!("{other:?}"),
        }
        // Query for CNAME itself answers directly.
        match z.lookup(&dns_name!("www.example.com"), RecordType::Cname) {
            ZoneLookup::Answer(rs) => assert_eq!(rs.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_synthesis() {
        let z = zone();
        match z.lookup(&dns_name!("anything.pages.example.com"), RecordType::A) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs[0].name, dns_name!("anything.pages.example.com"));
                assert_eq!(rs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 99)));
            }
            other => panic!("{other:?}"),
        }
        // Wildcard does not apply to the wildcard owner's parent itself...
        assert_eq!(
            z.lookup(&dns_name!("pages.example.com"), RecordType::A),
            ZoneLookup::NoData,
            "existing encloser is NODATA, not synthesised"
        );
        // ...and does not descend past an existing name.
        match z.lookup(&dns_name!("a.b.pages.example.com"), RecordType::A) {
            ZoneLookup::Answer(rs) => assert_eq!(rs[0].name, dns_name!("a.b.pages.example.com")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_nodata_for_other_types() {
        let z = zone();
        assert_eq!(
            z.lookup(&dns_name!("x.pages.example.com"), RecordType::Mx),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let z = zone();
        assert_eq!(
            z.lookup(&dns_name!("ent.example.com"), RecordType::A),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn referral_below_cut() {
        let z = zone();
        match z.lookup(&dns_name!("host.child.example.com"), RecordType::A) {
            ZoneLookup::Referral(ns) => {
                assert_eq!(ns[0].rdata, RData::Ns(dns_name!("ns1.child.example.com")));
            }
            other => panic!("{other:?}"),
        }
        // At the cut itself, also a referral.
        assert!(matches!(
            z.lookup(&dns_name!("child.example.com"), RecordType::A),
            ZoneLookup::Referral(_)
        ));
    }

    #[test]
    fn remove_records() {
        let mut z = zone();
        assert_eq!(z.remove(&dns_name!("example.com"), RecordType::Mx), 1);
        assert_eq!(
            z.lookup(&dns_name!("example.com"), RecordType::Mx),
            ZoneLookup::NoData
        );
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn add_outside_zone_panics() {
        let mut z = zone();
        z.add_rr(dns_name!("other.org"), 60, RData::A(Ipv4Addr::LOCALHOST));
    }

    #[test]
    fn negative_ttl_uses_min() {
        let z = zone();
        assert_eq!(z.negative_ttl(), 300);
    }
}
