//! Domain names with RFC 1035 semantics.

use std::fmt;
use std::str::FromStr;


/// Maximum length of a single label, in bytes (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name on the wire, in bytes, including length octets
/// and the root label (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Errors constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (e.g. `a..b`).
    EmptyLabel,
    /// A label exceeded [`MAX_LABEL_LEN`] bytes.
    LabelTooLong(String),
    /// The whole name exceeded [`MAX_NAME_LEN`] wire bytes.
    NameTooLong,
    /// A label contained a byte we do not accept (whitespace, control,
    /// non-ASCII or a dot inside a label).
    BadByte(u8),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {l:?}"),
            NameError::NameTooLong => write!(f, "name exceeds 255 wire bytes"),
            NameError::BadByte(b) => write!(f, "invalid byte {b:#04x} in name"),
        }
    }
}

impl std::error::Error for NameError {}

/// A fully-qualified domain name.
///
/// Labels are stored lower-cased (DNS comparisons are case-insensitive per
/// RFC 4343) and without the trailing root dot; the root name has zero
/// labels. `Name` implements `Ord` by the canonical right-to-left label
/// order so that related names sort near each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Name {
    labels: Vec<String>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse a dotted name. Accepts an optional trailing dot; `"."` and `""`
    /// both denote the root. Underscores and hyphens are accepted anywhere
    /// (measurement reality: `_dmarc`, hosts with leading digits, etc.).
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Self::root());
        }
        let mut labels = Vec::new();
        for raw in s.split('.') {
            if raw.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if raw.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(raw.to_string()));
            }
            for &b in raw.as_bytes() {
                let ok = b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'*';
                if !ok {
                    return Err(NameError::BadByte(b));
                }
            }
            labels.push(raw.to_ascii_lowercase());
        }
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// Construct from pre-validated labels (used by the wire decoder).
    pub(crate) fn from_labels(labels: Vec<String>) -> Result<Self, NameError> {
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// The labels, left to right (`www`, `example`, `com`).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels; 0 for the root.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Is this the root name?
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Wire-format length in bytes (length octets + label bytes + root 0).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The parent name (one label removed from the left); `None` at root.
    pub fn parent(&self) -> Option<Name> {
        let (_, rest) = self.labels.split_first()?;
        Some(Name {
            labels: rest.to_vec(),
        })
    }

    /// Prepend `label`, returning the child name.
    pub fn child(&self, label: &str) -> Result<Name, NameError> {
        let l = label.to_ascii_lowercase();
        if l.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if l.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(l));
        }
        let labels: Vec<String> = std::iter::once(l)
            .chain(self.labels.iter().cloned())
            .collect();
        Self::from_labels(labels)
    }

    /// Join two names: `self` becomes the leftmost part (`mail` + `foo.com`
    /// = `mail.foo.com`).
    pub fn join(&self, suffix: &Name) -> Result<Name, NameError> {
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&suffix.labels);
        Self::from_labels(labels)
    }

    /// True if `self` equals `other` or is a descendant of it. The root is
    /// an ancestor of everything.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        self.labels
            .iter()
            .rev()
            .zip(other.labels.iter().rev())
            .all(|(a, b)| a == b)
    }

    /// Strict-descendant test: subdomain but not equal.
    pub fn is_strict_subdomain_of(&self, other: &Name) -> bool {
        self.labels.len() > other.labels.len() && self.is_subdomain_of(other)
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&str> {
        self.labels.first().map(|s| s.as_str())
    }

    /// Replace the leftmost label with `*` (used for wildcard synthesis).
    pub fn to_wildcard(&self) -> Option<Name> {
        self.parent().and_then(|p| p.child("*").ok())
    }

    /// Is the leftmost label `*`?
    pub fn is_wildcard(&self) -> bool {
        self.first_label() == Some("*")
    }

    /// Dotted string without trailing dot; `.` for the root.
    pub fn to_dotted(&self) -> String {
        if self.labels.is_empty() {
            ".".to_string()
        } else {
            self.labels.join(".")
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dotted())
    }
}

impl FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Canonical DNS order: compare labels right to left.
        self.labels
            .iter()
            .rev()
            .cmp(other.labels.iter().rev())
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Convenience: `name!("example.com")`-style construction in tests and
/// generators; panics on invalid input.
// lint:allow-next-fn(R1): literal-construction macro; panicking on a bad compile-time literal is the contract
#[macro_export]
macro_rules! dns_name {
    ($s:expr) => {
        $crate::Name::parse($s).expect("valid DNS name literal")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = Name::parse("WWW.Example.COM.").unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.label_count(), 3);
        assert_eq!(Name::parse(".").unwrap(), Name::root());
        assert_eq!(Name::root().to_string(), ".");
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(Name::parse("a..b"), Err(NameError::EmptyLabel));
        assert!(matches!(
            Name::parse(&format!("{}.com", "x".repeat(64))),
            Err(NameError::LabelTooLong(_))
        ));
        assert!(matches!(Name::parse("a b.com"), Err(NameError::BadByte(_))));
        let long = vec!["abcdefgh"; 32].join("."); // 32*9 + 1 > 255
        assert_eq!(Name::parse(&long), Err(NameError::NameTooLong));
    }

    #[test]
    fn case_insensitive_eq() {
        assert_eq!(
            Name::parse("MX.Google.COM").unwrap(),
            Name::parse("mx.google.com").unwrap()
        );
    }

    #[test]
    fn hierarchy() {
        let n = dns_name!("mail.example.com");
        assert_eq!(n.parent().unwrap(), dns_name!("example.com"));
        assert!(n.is_subdomain_of(&dns_name!("example.com")));
        assert!(n.is_subdomain_of(&dns_name!("com")));
        assert!(n.is_subdomain_of(&Name::root()));
        assert!(n.is_subdomain_of(&n));
        assert!(!n.is_strict_subdomain_of(&n));
        assert!(!dns_name!("example.com").is_subdomain_of(&n));
        assert!(!dns_name!("badexample.com").is_subdomain_of(&dns_name!("example.com")));
    }

    #[test]
    fn child_and_join() {
        let base = dns_name!("example.com");
        assert_eq!(base.child("mx1").unwrap(), dns_name!("mx1.example.com"));
        assert_eq!(
            dns_name!("a.b").join(&dns_name!("c.d")).unwrap(),
            dns_name!("a.b.c.d")
        );
    }

    #[test]
    fn wildcards() {
        let n = dns_name!("host.example.com");
        assert_eq!(n.to_wildcard().unwrap(), dns_name!("*.example.com"));
        assert!(dns_name!("*.example.com").is_wildcard());
        assert!(!n.is_wildcard());
    }

    #[test]
    fn ordering_groups_siblings() {
        let mut v = vec![
            dns_name!("b.example.com"),
            dns_name!("example.org"),
            dns_name!("a.example.com"),
            dns_name!("example.com"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                dns_name!("example.com"),
                dns_name!("a.example.com"),
                dns_name!("b.example.com"),
                dns_name!("example.org"),
            ]
        );
    }

    #[test]
    fn wire_len() {
        assert_eq!(Name::root().wire_len(), 1);
        assert_eq!(dns_name!("com").wire_len(), 5);
        assert_eq!(dns_name!("example.com").wire_len(), 13);
    }
}
