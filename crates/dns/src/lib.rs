//! # mx-dns — DNS substrate
//!
//! A from-scratch DNS implementation sufficient to reproduce the
//! measurement pipeline of *Who's Got Your Mail?* (IMC '21): the study's
//! OpenINTEL-style data collection resolves each target domain's MX records
//! and then the A records of the names inside them. This crate provides:
//!
//! * [`Name`] — domain names with RFC 1035 length limits, case-insensitive
//!   comparison and ordering;
//! * [`Record`], [`RData`], [`RecordType`] — resource records (A, AAAA, NS,
//!   CNAME, SOA, PTR, MX, TXT) plus an opaque escape hatch;
//! * [`Message`] — full wire-format encoding and decoding, including name
//!   compression pointers on both paths;
//! * [`Zone`] and [`Authority`] — authoritative data with correct
//!   NXDOMAIN/NODATA distinction, CNAME handling, wildcards and referrals;
//! * [`StubResolver`] — a caching stub resolver (positive + negative cache,
//!   TTL expiry against a [`SimClock`], CNAME chasing) and the
//!   [`resolver::MxResolution`] convenience used by the measurement layer;
//! * [`SimClock`] / [`Timestamp`] — the deterministic time source shared by
//!   the whole simulation (TTLs, certificate validity, snapshot dates).
//!
//! Everything is synchronous and deterministic; the network is abstracted
//! behind the [`resolver::Transport`] trait which `mx-net` implements over
//! the simulated Internet.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod iterative;
pub mod master;
pub mod message;
pub mod name;
pub mod resolver;
pub mod rr;
pub mod server;
pub mod wire;
pub mod zone;

pub use clock::{SimClock, Timestamp};
pub use iterative::IterativeResolver;
pub use master::{parse_zone, to_master, MasterError};
pub use message::{Header, Message, Opcode, Question, Rcode};
pub use name::{Name, NameError};
pub use resolver::{ResolveError, StubResolver, Transport};
pub use rr::{RData, Record, RecordClass, RecordType};
pub use server::Authority;
pub use wire::{WireError, WireReader, WireWriter};
pub use zone::{Zone, ZoneLookup};
