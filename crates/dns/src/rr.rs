//! Resource records: types, classes and RDATA.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};


use crate::name::Name;

/// DNS record types (the subset the measurement needs, plus QTYPEs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 host address (RFC 1035).
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical-name alias.
    Cname,
    /// Start of authority.
    Soa,
    /// Pointer (reverse mapping).
    Ptr,
    /// Mail exchanger — the record this whole study revolves around.
    Mx,
    /// Text strings (SPF policies live here).
    Txt,
    /// IPv6 host address (RFC 3596).
    Aaaa,
    /// QTYPE `*` (ANY).
    Any,
    /// Anything else, carried numerically so unknown records survive a
    /// decode/encode round trip.
    Other(u16),
}

impl RecordType {
    /// Numeric type code (RFC 1035 / 3596).
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Any => 255,
            RecordType::Other(c) => c,
        }
    }

    /// From a numeric code.
    pub fn from_code(code: u16) -> RecordType {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            255 => RecordType::Any,
            c => RecordType::Other(c),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Any => write!(f, "ANY"),
            RecordType::Other(c) => write!(f, "TYPE{c}"),
        }
    }
}

/// DNS classes. Only `IN` matters here; others are carried numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet class (the only one in practical use).
    In,
    /// QCLASS `*`.
    Any,
    /// Any other class, carried numerically.
    Other(u16),
}

impl RecordClass {
    /// Numeric class code.
    pub fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Any => 255,
            RecordClass::Other(c) => c,
        }
    }

    /// Decode a numeric class code.
    pub fn from_code(code: u16) -> RecordClass {
        match code {
            1 => RecordClass::In,
            255 => RecordClass::Any,
            c => RecordClass::Other(c),
        }
    }
}

/// Start-of-authority data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary master server name.
    pub mname: Name,
    /// Responsible mailbox, encoded as a name.
    pub rname: Name,
    /// Zone version.
    pub serial: u32,
    /// Secondary refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval after a failed refresh (seconds).
    pub retry: u32,
    /// When secondaries discard the zone (seconds).
    pub expire: u32,
    /// Minimum TTL; also the negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name-server target.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Reverse-mapping target.
    Ptr(Name),
    /// Start-of-authority data.
    Soa(Soa),
    /// Mail exchanger: lower preference = higher priority; the root name
    /// with preference 0 is the RFC 7505 null MX.
    Mx {
        /// Preference value (lowest wins).
        preference: u16,
        /// The receiving MTA's hostname.
        exchange: Name,
    },
    /// One or more character strings, each at most 255 bytes.
    Txt(Vec<String>),
    /// Unknown type, raw bytes.
    Opaque {
        /// Numeric record type.
        rtype: u16,
        /// Raw RDATA bytes.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Soa(_) => RecordType::Soa,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Opaque { rtype, .. } => RecordType::from_code(*rtype),
        }
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Ptr(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Txt(strings) => {
                let quoted: Vec<String> = strings.iter().map(|s| format!("{s:?}")).collect();
                write!(f, "{}", quoted.join(" "))
            }
            RData::Opaque { rtype, data } => write!(f, "\\# TYPE{} {} bytes", rtype, data.len()),
        }
    }
}

/// A full resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record class (almost always `IN`).
    pub class: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for class-IN records.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        Record {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// The record's type.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} IN {} {}",
            self.name,
            self.ttl,
            self.rtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Any,
            RecordType::Other(999),
        ] {
            assert_eq!(RecordType::from_code(t.code()), t);
        }
        // Known types decode to the named variant, not Other.
        assert_eq!(RecordType::from_code(15), RecordType::Mx);
    }

    #[test]
    fn class_codes_roundtrip() {
        for c in [RecordClass::In, RecordClass::Any, RecordClass::Other(4)] {
            assert_eq!(RecordClass::from_code(c.code()), c);
        }
    }

    #[test]
    fn display_forms() {
        let r = Record::new(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("aspmx.l.google.com"),
            },
        );
        assert_eq!(r.to_string(), "example.com 3600 IN MX 10 aspmx.l.google.com");
        let a = Record::new(dns_name!("mx.foo.com"), 60, RData::A("1.2.3.4".parse().unwrap()));
        assert_eq!(a.to_string(), "mx.foo.com 60 IN A 1.2.3.4");
    }

    #[test]
    fn rdata_type_mapping() {
        assert_eq!(
            RData::Txt(vec!["v=spf1".into()]).rtype(),
            RecordType::Txt
        );
        assert_eq!(
            RData::Opaque {
                rtype: 99,
                data: vec![1, 2]
            }
            .rtype(),
            RecordType::Other(99)
        );
    }
}
