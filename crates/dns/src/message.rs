//! DNS messages: header, question and full encode/decode.

use std::fmt;


use crate::name::Name;
use crate::rr::{RData, Record, RecordClass, RecordType, Soa};
use crate::wire::{WireError, WireReader, WireWriter};

/// Operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Server status request.
    Status,
    /// Zone-change notification.
    Notify,
    /// Dynamic update.
    Update,
    /// Any other opcode, carried numerically.
    Other(u8),
}

impl Opcode {
    /// Numeric opcode.
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(c) => c & 0x0F,
        }
    }

    /// Decode a numeric opcode.
    pub fn from_code(c: u8) -> Opcode {
        match c & 0x0F {
            0 => Opcode::Query,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            c => Opcode::Other(c),
        }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// Success.
    NoError,
    /// Malformed query.
    FormErr,
    /// Server-side failure.
    ServFail,
    /// The queried name does not exist.
    NxDomain,
    /// Opcode not implemented.
    NotImp,
    /// Policy refusal.
    Refused,
    /// Any other rcode, carried numerically.
    Other(u8),
}

impl Rcode {
    /// Numeric response code.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0x0F,
        }
    }

    /// Decode a numeric response code.
    pub fn from_code(c: u8) -> Rcode {
        match c & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            c => Rcode::Other(c),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Other(c) => write!(f, "RCODE{c}"),
        }
    }
}

/// Message header (flags are expanded into fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction id, echoed by responses.
    pub id: u16,
    /// Is this a response?
    pub qr: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A query header with a given transaction id.
    pub fn query(id: u16) -> Header {
        Header {
            id,
            qr: false,
            opcode: Opcode::Query,
            aa: false,
            tc: false,
            rd: true,
            ra: false,
            rcode: Rcode::NoError,
        }
    }

    fn flags(&self) -> u16 {
        let mut f = 0u16;
        if self.qr {
            f |= 1 << 15;
        }
        f |= u16::from(self.opcode.code()) << 11;
        if self.aa {
            f |= 1 << 10;
        }
        if self.tc {
            f |= 1 << 9;
        }
        if self.rd {
            f |= 1 << 8;
        }
        if self.ra {
            f |= 1 << 7;
        }
        f |= u16::from(self.rcode.code());
        f
    }

    fn from_flags(id: u16, f: u16) -> Header {
        Header {
            id,
            qr: f & (1 << 15) != 0,
            opcode: Opcode::from_code(((f >> 11) & 0x0F) as u8),
            aa: f & (1 << 10) != 0,
            tc: f & (1 << 9) != 0,
            rd: f & (1 << 8) != 0,
            ra: f & (1 << 7) != 0,
            rcode: Rcode::from_code((f & 0x0F) as u8),
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// The name being asked about.
    pub name: Name,
    /// Requested record type.
    pub qtype: RecordType,
    /// Requested class.
    pub qclass: RecordClass,
}

impl Question {
    /// A class-IN question.
    pub fn new(name: Name, qtype: RecordType) -> Question {
        Question {
            name,
            qtype,
            qclass: RecordClass::In,
        }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} IN {}", self.name, self.qtype)
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header with flags and codes.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (SOA/NS records).
    pub authorities: Vec<Record>,
    /// Additional section (e.g. glue addresses).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Build a standard recursive query for one question.
    pub fn query(id: u16, name: Name, qtype: RecordType) -> Message {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(name, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Start a response mirroring this query's id, question and RD bit.
    pub fn response(&self) -> Message {
        let mut h = self.header;
        h.qr = true;
        h.aa = false;
        h.ra = false;
        Message {
            header: h,
            questions: self.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// First question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = WireWriter::new();
        w.put_u16(self.header.id)?;
        w.put_u16(self.header.flags())?;
        w.put_u16(section_count(self.questions.len())?)?;
        w.put_u16(section_count(self.answers.len())?)?;
        w.put_u16(section_count(self.authorities.len())?)?;
        w.put_u16(section_count(self.additionals.len())?)?;
        for q in &self.questions {
            w.put_name(&q.name)?;
            w.put_u16(q.qtype.code())?;
            w.put_u16(q.qclass.code())?;
        }
        for r in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            encode_record(&mut w, r)?;
        }
        Ok(w.into_bytes())
    }

    /// Decode from wire bytes; rejects trailing garbage.
    pub fn decode(data: &[u8]) -> Result<Message, WireError> {
        let mut r = WireReader::new(data);
        let id = r.get_u16()?;
        let flags = r.get_u16()?;
        let header = Header::from_flags(id, flags);
        let qd = usize::from(r.get_u16()?);
        let an = usize::from(r.get_u16()?);
        let ns = usize::from(r.get_u16()?);
        let ar = usize::from(r.get_u16()?);
        // Counts are attacker-claimed: pre-allocate at most
        // MAX_SECTION_PREALLOC entries and let push() grow beyond that
        // only as records actually decode.
        let mut questions = Vec::with_capacity(qd.min(MAX_SECTION_PREALLOC));
        for _ in 0..qd {
            let name = r.get_name()?;
            let qtype = RecordType::from_code(r.get_u16()?);
            let qclass = RecordClass::from_code(r.get_u16()?);
            questions.push(Question {
                name,
                qtype,
                qclass,
            });
        }
        let answers = decode_section(&mut r, an)?;
        let authorities = decode_section(&mut r, ns)?;
        let additionals = decode_section(&mut r, ar)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

/// Pre-allocation clamp for attacker-claimed section counts: a count
/// field can claim 65535 records with no bytes behind it, so capacity
/// beyond this is only committed as records actually parse.
const MAX_SECTION_PREALLOC: usize = 64;

fn section_count(n: usize) -> Result<u16, WireError> {
    u16::try_from(n).map_err(|_| WireError::MessageTooLong)
}

fn decode_section(r: &mut WireReader<'_>, count: usize) -> Result<Vec<Record>, WireError> {
    let mut v = Vec::with_capacity(count.min(MAX_SECTION_PREALLOC));
    for _ in 0..count {
        v.push(decode_record(r)?);
    }
    Ok(v)
}

fn encode_record(w: &mut WireWriter, r: &Record) -> Result<(), WireError> {
    w.put_name(&r.name)?;
    w.put_u16(r.rtype().code())?;
    w.put_u16(r.class.code())?;
    w.put_u32(r.ttl)?;
    let slot = w.reserve_u16()?;
    let start = w.len();
    match &r.rdata {
        RData::A(a) => w.put_ipv4(*a)?,
        RData::Aaaa(a) => w.put_ipv6(*a)?,
        RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => w.put_name(n)?,
        RData::Soa(s) => {
            w.put_name(&s.mname)?;
            w.put_name(&s.rname)?;
            w.put_u32(s.serial)?;
            w.put_u32(s.refresh)?;
            w.put_u32(s.retry)?;
            w.put_u32(s.expire)?;
            w.put_u32(s.minimum)?;
        }
        RData::Mx {
            preference,
            exchange,
        } => {
            w.put_u16(*preference)?;
            w.put_name(exchange)?;
        }
        RData::Txt(strings) => {
            for s in strings {
                w.put_char_string(s)?;
            }
        }
        RData::Opaque { data, .. } => w.put_bytes(data)?,
    }
    let len = u16::try_from(w.len() - start).map_err(|_| WireError::MessageTooLong)?;
    w.patch_u16(slot, len)?;
    Ok(())
}

fn decode_record(r: &mut WireReader<'_>) -> Result<Record, WireError> {
    let name = r.get_name()?;
    let rtype = RecordType::from_code(r.get_u16()?);
    let class = RecordClass::from_code(r.get_u16()?);
    let ttl = r.get_u32()?;
    let declared = r.get_u16()?;
    let rdlen = usize::from(declared);
    let end = r.pos().checked_add(rdlen).ok_or(WireError::Truncated)?;
    let rdata = match rtype {
        RecordType::A => RData::A(r.get_ipv4()?),
        RecordType::Aaaa => RData::Aaaa(r.get_ipv6()?),
        RecordType::Ns => RData::Ns(r.get_name()?),
        RecordType::Cname => RData::Cname(r.get_name()?),
        RecordType::Ptr => RData::Ptr(r.get_name()?),
        RecordType::Soa => RData::Soa(Soa {
            mname: r.get_name()?,
            rname: r.get_name()?,
            serial: r.get_u32()?,
            refresh: r.get_u32()?,
            retry: r.get_u32()?,
            expire: r.get_u32()?,
            minimum: r.get_u32()?,
        }),
        RecordType::Mx => RData::Mx {
            preference: r.get_u16()?,
            exchange: r.get_name()?,
        },
        RecordType::Txt => {
            let mut strings = Vec::new();
            while r.pos() < end {
                strings.push(r.get_char_string()?);
            }
            RData::Txt(strings)
        }
        other => RData::Opaque {
            rtype: other.code(),
            data: r.get_bytes(rdlen)?.to_vec(),
        },
    };
    if r.pos() != end {
        return Err(WireError::BadRdLength {
            declared,
            actual: r.pos().abs_diff(end - rdlen),
        });
    }
    Ok(Record {
        name,
        class,
        ttl,
        rdata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;
    use std::net::Ipv4Addr;

    fn sample_message() -> Message {
        let mut m = Message::query(0x1234, dns_name!("example.com"), RecordType::Mx);
        let mut resp = m.response();
        resp.header.aa = true;
        resp.answers.push(Record::new(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx1.provider.com"),
            },
        ));
        resp.answers.push(Record::new(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 20,
                exchange: dns_name!("mx2.provider.com"),
            },
        ));
        resp.additionals.push(Record::new(
            dns_name!("mx1.provider.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        m = resp;
        m
    }

    #[test]
    fn header_flags_roundtrip() {
        let h = Header {
            id: 7,
            qr: true,
            opcode: Opcode::Query,
            aa: true,
            tc: false,
            rd: true,
            ra: true,
            rcode: Rcode::NxDomain,
        };
        let h2 = Header::from_flags(7, h.flags());
        assert_eq!(h, h2);
    }

    #[test]
    fn message_roundtrip() {
        let m = sample_message();
        let bytes = m.encode().unwrap();
        let m2 = Message::decode(&bytes).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn compression_shrinks_encoding() {
        let m = sample_message();
        let bytes = m.encode().unwrap();
        // Without compression "provider.com" and "example.com" would repeat.
        // 3 answer/additional names + question name: generous bound check.
        assert!(bytes.len() < 110, "got {} bytes", bytes.len());
    }

    #[test]
    fn all_rdata_types_roundtrip() {
        let records = vec![
            Record::new(dns_name!("a.test"), 60, RData::A("1.2.3.4".parse().unwrap())),
            Record::new(dns_name!("b.test"), 60, RData::Aaaa("2001:db8::1".parse().unwrap())),
            Record::new(dns_name!("c.test"), 60, RData::Ns(dns_name!("ns1.test"))),
            Record::new(dns_name!("d.test"), 60, RData::Cname(dns_name!("target.test"))),
            Record::new(dns_name!("e.test"), 60, RData::Ptr(dns_name!("host.test"))),
            Record::new(
                dns_name!("f.test"),
                60,
                RData::Soa(Soa {
                    mname: dns_name!("ns1.test"),
                    rname: dns_name!("hostmaster.test"),
                    serial: 2021060800,
                    refresh: 7200,
                    retry: 900,
                    expire: 1209600,
                    minimum: 300,
                }),
            ),
            Record::new(
                dns_name!("g.test"),
                60,
                RData::Mx {
                    preference: 0,
                    exchange: Name::root(),
                },
            ),
            Record::new(
                dns_name!("h.test"),
                60,
                RData::Txt(vec!["v=spf1 -all".into(), "second".into()]),
            ),
            Record::new(
                dns_name!("i.test"),
                60,
                RData::Opaque {
                    rtype: 99,
                    data: vec![1, 2, 3, 4, 5],
                },
            ),
        ];
        let mut m = Message::query(1, dns_name!("test"), RecordType::Any);
        m.header.qr = true;
        m.answers = records;
        let bytes = m.encode().unwrap();
        let m2 = Message::decode(&bytes).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_message().encode().unwrap();
        bytes.push(0);
        assert_eq!(
            Message::decode(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn truncated_message_rejected() {
        let bytes = sample_message().encode().unwrap();
        for cut in [1, 5, 12, 20, bytes.len() - 1] {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rcode_display() {
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Rcode::NoError.to_string(), "NOERROR");
    }

    #[test]
    fn null_mx_encodes() {
        // RFC 7505 null MX: preference 0, root exchange.
        let mut m = Message::query(2, dns_name!("nomail.test"), RecordType::Mx);
        m.header.qr = true;
        m.answers.push(Record::new(
            dns_name!("nomail.test"),
            60,
            RData::Mx {
                preference: 0,
                exchange: Name::root(),
            },
        ));
        let bytes = m.encode().unwrap();
        let m2 = Message::decode(&bytes).unwrap();
        match &m2.answers[0].rdata {
            RData::Mx {
                preference,
                exchange,
            } => {
                assert_eq!(*preference, 0);
                assert!(exchange.is_root());
            }
            other => panic!("unexpected rdata {other:?}"),
        }
    }
}
