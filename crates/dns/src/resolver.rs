//! A caching stub resolver and the MX-resolution convenience used by the
//! OpenINTEL-style measurement layer.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use crate::clock::SimClock;
use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::rr::{RData, Record, RecordType};

/// How a resolution attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The name does not exist (NXDOMAIN), possibly cached.
    NxDomain(Name),
    /// Transport-level failure (server unreachable, malformed reply).
    Network(String),
    /// The server answered with an error rcode other than NXDOMAIN.
    ServerFailure(Rcode),
    /// A CNAME chain exceeded the hop budget.
    CnameChainTooLong(Name),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain(n) => write!(f, "NXDOMAIN for {n}"),
            ResolveError::Network(e) => write!(f, "network error: {e}"),
            ResolveError::ServerFailure(rc) => write!(f, "server failure: {rc}"),
            ResolveError::CnameChainTooLong(n) => write!(f, "CNAME chain too long at {n}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Abstract query transport: `mx-net` implements this over the simulated
/// Internet; tests implement it with an in-process [`crate::Authority`].
pub trait Transport {
    /// Send `query` to `server` and return its response.
    fn query(&self, server: Ipv4Addr, query: &Message) -> Result<Message, ResolveError>;
}

impl<T: Transport + ?Sized> Transport for &T {
    fn query(&self, server: Ipv4Addr, query: &Message) -> Result<Message, ResolveError> {
        (**self).query(server, query)
    }
}

#[derive(Debug, Clone)]
enum CacheEntry {
    Positive { records: Vec<Record>, expires: u64 },
    Negative { rcode: Rcode, expires: u64 },
}

/// One MX target after full resolution: preference, exchange name and the
/// IPv4 addresses the exchange resolves to (empty when resolution failed —
/// the paper's "No MX IP" bucket in Table 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxTarget {
    /// MX preference (lowest wins).
    pub preference: u16,
    /// The exchange hostname from the MX record.
    pub exchange: Name,
    /// IPv4 addresses the exchange resolved to.
    pub addrs: Vec<Ipv4Addr>,
}

/// Result of resolving a domain's mail setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxResolution {
    /// The domain whose mail setup was resolved.
    pub domain: Name,
    /// Sorted by (preference, exchange).
    pub targets: Vec<MxTarget>,
    /// RFC 7505 null MX (`0 .`) published — domain explicitly receives no
    /// mail.
    pub null_mx: bool,
}

impl MxResolution {
    /// Targets sharing the lowest (most preferred) preference value — the
    /// paper's "primary MX record(s)" used for provider attribution.
    pub fn primary_targets(&self) -> &[MxTarget] {
        let Some(best) = self.targets.first().map(|t| t.preference) else {
            return &[];
        };
        let end = self
            .targets
            .iter()
            .position(|t| t.preference != best)
            .unwrap_or(self.targets.len());
        &self.targets[..end]
    }

    /// True when no usable MX target exists.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// A caching stub resolver.
///
/// * positive answers cached per (name, type) until the smallest record TTL
///   expires;
/// * NXDOMAIN / NODATA cached per RFC 2308 using the SOA negative TTL when
///   the server provided one;
/// * CNAME chains chased across queries with a hop budget;
/// * deterministic transaction ids (a simple counter) so simulations are
///   reproducible.
pub struct StubResolver<T: Transport> {
    transport: T,
    server: Ipv4Addr,
    clock: SimClock,
    cache: RefCell<HashMap<(Name, RecordType), CacheEntry>>,
    next_id: RefCell<u16>,
    stats: RefCell<ResolverStats>,
}

/// Counters exposed for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries that went to the transport.
    pub queries_sent: u64,
    /// Answers served from the positive cache.
    pub cache_hits: u64,
    /// Answers served from the negative cache.
    pub negative_hits: u64,
}

impl<T: Transport> StubResolver<T> {
    /// Create a resolver speaking to `server` via `transport`.
    pub fn new(transport: T, server: Ipv4Addr, clock: SimClock) -> Self {
        StubResolver {
            transport,
            server,
            clock,
            cache: RefCell::new(HashMap::new()),
            next_id: RefCell::new(1),
            stats: RefCell::new(ResolverStats::default()),
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ResolverStats {
        *self.stats.borrow()
    }

    /// Drop all cached entries.
    pub fn flush_cache(&self) {
        self.cache.borrow_mut().clear();
    }

    fn fresh_id(&self) -> u16 {
        let mut id = self.next_id.borrow_mut();
        let v = *id;
        *id = id.wrapping_add(1).max(1);
        v
    }

    /// Resolve (name, rtype) to the matching records, following CNAMEs.
    pub fn resolve(&self, name: &Name, rtype: RecordType) -> Result<Vec<Record>, ResolveError> {
        let mut current = name.clone();
        let mut out: Vec<Record> = Vec::new();
        for _hop in 0..12 {
            let records = self.resolve_one(&current, rtype)?;
            // Partition into target-type records and CNAMEs for `current`.
            let mut next: Option<Name> = None;
            for r in records {
                match &r.rdata {
                    RData::Cname(t) if r.rtype() != rtype
                        && r.name == current => {
                            next = Some(t.clone());
                        }
                    _ if rtype == RecordType::Any
                        || (r.rtype() == rtype && r.name == current) => {
                            out.push(r);
                        }
                    _ => {}
                }
            }
            if !out.is_empty() {
                return Ok(out);
            }
            match next {
                Some(t) => current = t,
                None => return Ok(out), // NODATA
            }
        }
        Err(ResolveError::CnameChainTooLong(name.clone()))
    }

    /// One cache-aware query without cross-query CNAME chasing. Returns all
    /// answer-section records (which may include in-zone CNAME chains).
    fn resolve_one(
        &self,
        name: &Name,
        rtype: RecordType,
    ) -> Result<Vec<Record>, ResolveError> {
        let key = (name.clone(), rtype);
        let now = self.clock.now().secs();
        if let Some(entry) = self.cache.borrow().get(&key) {
            match entry {
                CacheEntry::Positive { records, expires } if *expires > now => {
                    self.stats.borrow_mut().cache_hits += 1;
                    return Ok(records.clone());
                }
                CacheEntry::Negative { rcode, expires } if *expires > now => {
                    self.stats.borrow_mut().negative_hits += 1;
                    return match rcode {
                        Rcode::NxDomain => Err(ResolveError::NxDomain(name.clone())),
                        _ => Ok(Vec::new()), // cached NODATA
                    };
                }
                _ => {}
            }
        }
        let query = Message::query(self.fresh_id(), name.clone(), rtype);
        self.stats.borrow_mut().queries_sent += 1;
        let resp = self.transport.query(self.server, &query)?;
        if resp.header.id != query.header.id {
            return Err(ResolveError::Network("transaction id mismatch".into()));
        }
        match resp.header.rcode {
            Rcode::NoError => {}
            Rcode::NxDomain => {
                let ttl = negative_ttl(&resp).unwrap_or(300);
                self.cache.borrow_mut().insert(
                    key,
                    CacheEntry::Negative {
                        rcode: Rcode::NxDomain,
                        expires: now + ttl as u64,
                    },
                );
                return Err(ResolveError::NxDomain(name.clone()));
            }
            rc => return Err(ResolveError::ServerFailure(rc)),
        }
        let records = resp.answers.clone();
        if records.is_empty() {
            let ttl = negative_ttl(&resp).unwrap_or(300);
            self.cache.borrow_mut().insert(
                key,
                CacheEntry::Negative {
                    rcode: Rcode::NoError,
                    expires: now + ttl as u64,
                },
            );
            return Ok(Vec::new());
        }
        let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0).max(1);
        self.cache.borrow_mut().insert(
            key,
            CacheEntry::Positive {
                records: records.clone(),
                expires: now + min_ttl as u64,
            },
        );
        Ok(records)
    }

    /// Resolve A records for `name`, following CNAMEs.
    pub fn resolve_a(&self, name: &Name) -> Result<Vec<Ipv4Addr>, ResolveError> {
        let rs = self.resolve(name, RecordType::A)?;
        Ok(rs
            .iter()
            .filter_map(|r| match r.rdata {
                RData::A(a) => Some(a),
                _ => None,
            })
            .collect())
    }

    /// The full MX resolution for a domain: fetch MX records, then resolve
    /// each exchange's A records. Per-exchange failures yield empty `addrs`
    /// rather than failing the whole resolution (matching how OpenINTEL
    /// records partial data).
    pub fn resolve_mx(&self, domain: &Name) -> Result<MxResolution, ResolveError> {
        let records = self.resolve(domain, RecordType::Mx)?;
        let mut targets: Vec<MxTarget> = Vec::new();
        let mut null_mx = false;
        for r in &records {
            if let RData::Mx {
                preference,
                exchange,
            } = &r.rdata
            {
                if exchange.is_root() {
                    null_mx = true;
                    continue;
                }
                let addrs = self.resolve_a(exchange).unwrap_or_default();
                targets.push(MxTarget {
                    preference: *preference,
                    exchange: exchange.clone(),
                    addrs,
                });
            }
        }
        targets.sort_by(|a, b| {
            a.preference
                .cmp(&b.preference)
                .then_with(|| a.exchange.cmp(&b.exchange))
        });
        Ok(MxResolution {
            domain: domain.clone(),
            targets,
            null_mx,
        })
    }
}

/// Extract the RFC 2308 negative TTL from a response's SOA, if present.
fn negative_ttl(resp: &Message) -> Option<u32> {
    resp.authorities.iter().find_map(|r| match &r.rdata {
        RData::Soa(soa) => Some(r.ttl.min(soa.minimum)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;
    use crate::server::Authority;
    use crate::zone::Zone;
    use std::cell::Cell;

    /// In-process transport over an Authority, with a query counter.
    struct Direct<'a> {
        auth: &'a Authority,
        calls: Cell<u64>,
    }

    impl Transport for Direct<'_> {
        fn query(&self, _server: Ipv4Addr, q: &Message) -> Result<Message, ResolveError> {
            self.calls.set(self.calls.get() + 1);
            Ok(self.auth.answer(q))
        }
    }

    fn world() -> Authority {
        let mut a = Authority::new();
        let mut z = Zone::new(dns_name!("example.com"));
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx1.provider.net"),
            },
        );
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 20,
                exchange: dns_name!("backup.example.com"),
            },
        );
        z.add_rr(
            dns_name!("backup.example.com"),
            300,
            RData::A("192.0.2.2".parse().unwrap()),
        );
        z.add_rr(
            dns_name!("www.example.com"),
            300,
            RData::Cname(dns_name!("cdn.provider.net")),
        );
        a.add_zone(z);
        let mut p = Zone::new(dns_name!("provider.net"));
        p.add_rr(
            dns_name!("mx1.provider.net"),
            300,
            RData::A("198.51.100.25".parse().unwrap()),
        );
        p.add_rr(
            dns_name!("cdn.provider.net"),
            300,
            RData::A("198.51.100.80".parse().unwrap()),
        );
        a.add_zone(p);
        let mut n = Zone::new(dns_name!("nullmx.test"));
        n.add_rr(
            dns_name!("nullmx.test"),
            300,
            RData::Mx {
                preference: 0,
                exchange: Name::root(),
            },
        );
        a.add_zone(n);
        a
    }

    fn resolver<'a>(auth: &'a Authority, clock: SimClock) -> StubResolver<Direct<'a>> {
        StubResolver::new(
            Direct {
                auth,
                calls: Cell::new(0),
            },
            Ipv4Addr::new(10, 0, 0, 53),
            clock,
        )
    }

    #[test]
    fn resolve_mx_full() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("example.com")).unwrap();
        assert_eq!(mx.targets.len(), 2);
        assert_eq!(mx.targets[0].exchange, dns_name!("mx1.provider.net"));
        assert_eq!(
            mx.targets[0].addrs,
            vec!["198.51.100.25".parse::<Ipv4Addr>().unwrap()]
        );
        assert_eq!(mx.primary_targets().len(), 1);
        assert!(!mx.null_mx);
    }

    #[test]
    fn cross_zone_cname_chase() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let addrs = r.resolve_a(&dns_name!("www.example.com")).unwrap();
        assert_eq!(addrs, vec!["198.51.100.80".parse::<Ipv4Addr>().unwrap()]);
    }

    #[test]
    fn positive_cache_hits() {
        let auth = world();
        let clock = SimClock::new();
        let r = resolver(&auth, clock.clone());
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        let s = r.stats();
        assert_eq!(s.queries_sent, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn cache_expires_with_clock() {
        let auth = world();
        let clock = SimClock::new();
        let r = resolver(&auth, clock.clone());
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        clock.advance_secs(301); // ttl is 300
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        assert_eq!(r.stats().queries_sent, 2);
    }

    #[test]
    fn negative_cache() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let e = r.resolve_a(&dns_name!("missing.example.com")).unwrap_err();
        assert!(matches!(e, ResolveError::NxDomain(_)));
        let e = r.resolve_a(&dns_name!("missing.example.com")).unwrap_err();
        assert!(matches!(e, ResolveError::NxDomain(_)));
        let s = r.stats();
        assert_eq!(s.queries_sent, 1);
        assert_eq!(s.negative_hits, 1);
    }

    #[test]
    fn nodata_is_empty_not_error() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let rs = r.resolve(&dns_name!("backup.example.com"), RecordType::Mx).unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn null_mx_detected() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("nullmx.test")).unwrap();
        assert!(mx.null_mx);
        assert!(mx.is_empty());
        assert!(mx.primary_targets().is_empty());
    }

    #[test]
    fn primary_targets_split_same_preference() {
        let mut auth = Authority::new();
        let mut z = Zone::new(dns_name!("multi.test"));
        for ex in ["mx-a.multi.test", "mx-b.multi.test", "mx-c.multi.test"] {
            z.add_rr(
                dns_name!("multi.test"),
                300,
                RData::Mx {
                    preference: 10,
                    exchange: dns_name!(ex),
                },
            );
            z.add_rr(dns_name!(ex), 300, RData::A("192.0.2.9".parse().unwrap()));
        }
        z.add_rr(
            dns_name!("multi.test"),
            300,
            RData::Mx {
                preference: 20,
                exchange: dns_name!("mx-backup.multi.test"),
            },
        );
        z.add_rr(
            dns_name!("mx-backup.multi.test"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        );
        auth.add_zone(z);
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("multi.test")).unwrap();
        assert_eq!(mx.targets.len(), 4);
        assert_eq!(mx.primary_targets().len(), 3);
    }

    #[test]
    fn missing_exchange_yields_empty_addrs() {
        let mut auth = Authority::new();
        let mut z = Zone::new(dns_name!("dangling.test"));
        z.add_rr(
            dns_name!("dangling.test"),
            300,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("gone.dangling.test"),
            },
        );
        auth.add_zone(z);
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("dangling.test")).unwrap();
        assert_eq!(mx.targets.len(), 1);
        assert!(mx.targets[0].addrs.is_empty(), "dangling MX: no addresses");
    }
}
