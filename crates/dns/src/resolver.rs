//! A caching stub resolver and the MX-resolution convenience used by the
//! OpenINTEL-style measurement layer.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use crate::clock::SimClock;
use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::rr::{RData, Record, RecordType};

/// How a resolution attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The name does not exist (NXDOMAIN), possibly cached.
    NxDomain(Name),
    /// Transport-level failure (server unreachable, malformed reply).
    Network(String),
    /// The server answered with an error rcode other than NXDOMAIN.
    ServerFailure(Rcode),
    /// A CNAME chain exceeded the hop budget.
    CnameChainTooLong(Name),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain(n) => write!(f, "NXDOMAIN for {n}"),
            ResolveError::Network(e) => write!(f, "network error: {e}"),
            ResolveError::ServerFailure(rc) => write!(f, "server failure: {rc}"),
            ResolveError::CnameChainTooLong(n) => write!(f, "CNAME chain too long at {n}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Abstract query transport: `mx-net` implements this over the simulated
/// Internet; tests implement it with an in-process [`crate::Authority`].
pub trait Transport {
    /// Send `query` to `server` and return its response.
    fn query(&self, server: Ipv4Addr, query: &Message) -> Result<Message, ResolveError>;

    /// Send retry number `attempt` (0-based) of `query` to `server`.
    /// Fault-injecting transports override this so each attempt draws an
    /// independent failure coin; the default ignores `attempt`.
    fn query_attempt(
        &self,
        server: Ipv4Addr,
        query: &Message,
        attempt: u32,
    ) -> Result<Message, ResolveError> {
        let _ = attempt;
        self.query(server, query)
    }
}

impl<T: Transport + ?Sized> Transport for &T {
    fn query(&self, server: Ipv4Addr, query: &Message) -> Result<Message, ResolveError> {
        (**self).query(server, query)
    }

    fn query_attempt(
        &self,
        server: Ipv4Addr,
        query: &Message,
        attempt: u32,
    ) -> Result<Message, ResolveError> {
        (**self).query_attempt(server, query, attempt)
    }
}

/// Maximum transport attempts per query (1 initial + 2 retries).
pub const MAX_DNS_ATTEMPTS: u32 = 3;

/// Base backoff charged to the simulated clock before retry `n` (doubles
/// per retry: 2s, 4s, ...).
pub const DNS_BACKOFF_SECS: u64 = 2;

/// 48-bit trace tag for a DNS name — pure in the name, so the tagged
/// event set is identical at any thread count. Allocation-free (zero)
/// while tracing is off, keeping the hot path cheap.
fn name_trace_tag(name: &Name) -> u64 {
    if !mx_obs::trace_enabled() {
        return 0;
    }
    mx_obs::trace::tag64(name.to_string().as_bytes())
}

#[derive(Debug, Clone)]
enum CacheEntry {
    Positive { records: Vec<Record>, expires: u64 },
    Negative { rcode: Rcode, expires: u64 },
}

/// One MX target after full resolution: preference, exchange name and the
/// IPv4 addresses the exchange resolves to (empty when resolution failed —
/// the paper's "No MX IP" bucket in Table 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxTarget {
    /// MX preference (lowest wins).
    pub preference: u16,
    /// The exchange hostname from the MX record.
    pub exchange: Name,
    /// IPv4 addresses the exchange resolved to.
    pub addrs: Vec<Ipv4Addr>,
}

/// How one lookup inside an MX resolution degraded: which name was
/// affected, whether it ultimately failed, and how hard the resolver
/// tried. An entry with `error: None` recovered on retry; an entry with
/// `error: Some(..)` exhausted its budget (or hit a terminal error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxDegradation {
    /// The name whose lookup degraded (the domain for the MX query
    /// itself, or an exchange hostname for its A resolution).
    pub name: Name,
    /// The terminal error, when the lookup ultimately failed.
    pub error: Option<ResolveError>,
    /// Extra transport attempts (retries) consumed by this lookup.
    pub retries: u32,
}

/// Result of resolving a domain's mail setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxResolution {
    /// The domain whose mail setup was resolved.
    pub domain: Name,
    /// Sorted by (preference, exchange).
    pub targets: Vec<MxTarget>,
    /// RFC 7505 null MX (`0 .`) published — domain explicitly receives no
    /// mail.
    pub null_mx: bool,
    /// Lookups that needed retries or failed outright (the paper's
    /// "No MX IP" bucket records *why* an exchange has no addresses).
    pub degraded: Vec<MxDegradation>,
}

impl MxResolution {
    /// Targets sharing the lowest (most preferred) preference value — the
    /// paper's "primary MX record(s)" used for provider attribution.
    pub fn primary_targets(&self) -> &[MxTarget] {
        let Some(best) = self.targets.first().map(|t| t.preference) else {
            return &[];
        };
        let end = self
            .targets
            .iter()
            .position(|t| t.preference != best)
            .unwrap_or(self.targets.len());
        &self.targets[..end]
    }

    /// True when no usable MX target exists.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// A caching stub resolver.
///
/// * positive answers cached per (name, type) until the smallest record TTL
///   expires;
/// * NXDOMAIN / NODATA cached per RFC 2308 using the SOA negative TTL when
///   the server provided one;
/// * CNAME chains chased across queries with a hop budget;
/// * deterministic transaction ids (a simple counter) so simulations are
///   reproducible.
pub struct StubResolver<T: Transport> {
    transport: T,
    server: Ipv4Addr,
    clock: SimClock,
    cache: RefCell<HashMap<(Name, RecordType), CacheEntry>>,
    next_id: RefCell<u16>,
    stats: RefCell<ResolverStats>,
    /// Retries consumed since the last [`StubResolver::begin_lookup`];
    /// lets `resolve_mx` attribute retry cost to individual lookups.
    lookup_retries: std::cell::Cell<u32>,
}

/// Counters exposed for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries that went to the transport (including retries).
    pub queries_sent: u64,
    /// Answers served from the positive cache.
    pub cache_hits: u64,
    /// Answers served from the negative cache.
    pub negative_hits: u64,
    /// Transport retries after a retryable failure (timeout, SERVFAIL,
    /// truncation).
    pub retries: u64,
    /// Times the whole cache was dropped via `flush_cache`.
    pub flushes: u64,
}

impl<T: Transport> StubResolver<T> {
    /// Create a resolver speaking to `server` via `transport`.
    pub fn new(transport: T, server: Ipv4Addr, clock: SimClock) -> Self {
        StubResolver {
            transport,
            server,
            clock,
            cache: RefCell::new(HashMap::new()),
            next_id: RefCell::new(1),
            stats: RefCell::new(ResolverStats::default()),
            lookup_retries: std::cell::Cell::new(0),
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ResolverStats {
        *self.stats.borrow()
    }

    /// Drop all cached entries.
    pub fn flush_cache(&self) {
        self.cache.borrow_mut().clear();
        self.stats.borrow_mut().flushes += 1;
    }

    /// Reset the per-lookup retry counter (see
    /// [`StubResolver::last_lookup_retries`]).
    pub fn begin_lookup(&self) {
        self.lookup_retries.set(0);
    }

    /// Retries consumed since the last `begin_lookup` — callers that
    /// want per-lookup degradation accounting bracket each logical
    /// lookup with `begin_lookup` and read this afterwards.
    pub fn last_lookup_retries(&self) -> u32 {
        self.lookup_retries.get()
    }

    fn fresh_id(&self) -> u16 {
        let mut id = self.next_id.borrow_mut();
        let v = *id;
        *id = id.wrapping_add(1).max(1);
        v
    }

    /// Resolve (name, rtype) to the matching records, following CNAMEs.
    pub fn resolve(&self, name: &Name, rtype: RecordType) -> Result<Vec<Record>, ResolveError> {
        let mut current = name.clone();
        let mut out: Vec<Record> = Vec::new();
        for _hop in 0..12 {
            let records = self.resolve_one(&current, rtype)?;
            // Partition into target-type records and CNAMEs for `current`.
            let mut next: Option<Name> = None;
            for r in records {
                match &r.rdata {
                    RData::Cname(t) if r.rtype() != rtype
                        && r.name == current => {
                            next = Some(t.clone());
                        }
                    _ if rtype == RecordType::Any
                        || (r.rtype() == rtype && r.name == current) => {
                            out.push(r);
                        }
                    _ => {}
                }
            }
            if !out.is_empty() {
                return Ok(out);
            }
            match next {
                Some(t) => current = t,
                None => return Ok(out), // NODATA
            }
        }
        Err(ResolveError::CnameChainTooLong(name.clone()))
    }

    /// One cache-aware query without cross-query CNAME chasing. Returns all
    /// answer-section records (which may include in-zone CNAME chains).
    fn resolve_one(
        &self,
        name: &Name,
        rtype: RecordType,
    ) -> Result<Vec<Record>, ResolveError> {
        let key = (name.clone(), rtype);
        let now = self.clock.now().secs();
        if let Some(entry) = self.cache.borrow().get(&key) {
            match entry {
                CacheEntry::Positive { records, expires } if *expires > now => {
                    self.stats.borrow_mut().cache_hits += 1;
                    mx_obs::counter!(mx_obs::names::DNS_CACHE_HITS).incr();
                    return Ok(records.clone());
                }
                CacheEntry::Negative { rcode, expires } if *expires > now => {
                    self.stats.borrow_mut().negative_hits += 1;
                    mx_obs::counter!(mx_obs::names::DNS_CACHE_NEGATIVE_HITS).incr();
                    return match rcode {
                        Rcode::NxDomain => Err(ResolveError::NxDomain(name.clone())),
                        _ => Ok(Vec::new()), // cached NODATA
                    };
                }
                _ => {}
            }
        }
        let query = Message::query(self.fresh_id(), name.clone(), rtype);
        let mut attempt = 0u32;
        let resp = loop {
            if attempt > 0 {
                // Deterministic exponential backoff, charged as simulated
                // cost (never advances `now`, so TTLs stay stable within
                // a round).
                let backoff = DNS_BACKOFF_SECS << (attempt - 1);
                self.clock.charge(backoff);
                self.stats.borrow_mut().retries += 1;
                self.lookup_retries.set(self.lookup_retries.get() + 1);
                mx_obs::counter!(mx_obs::names::DNS_RETRIES).incr();
                mx_obs::counter!(mx_obs::names::DNS_BACKOFF_SIM_SECS).add(backoff);
                // Tagged so the timeline shows *which* lookup backed
                // off; the tag is pure in the name, so the event set
                // stays thread-invariant.
                mx_obs::stage!(
                    mx_obs::names::STAGE_DNS_LOOKUP,
                    mx_obs::names::STAGE_OBSERVE_RESOLVE
                )
                .charge_sim_tagged(backoff, self.clock.now().secs(), name_trace_tag(name));
            }
            self.stats.borrow_mut().queries_sent += 1;
            mx_obs::counter!(mx_obs::names::DNS_QUERIES).incr();
            let outcome = self.transport.query_attempt(self.server, &query, attempt);
            // Timeouts, SERVFAILs and truncated replies are retryable;
            // NXDOMAIN and decode-level errors are definitive.
            let retryable = match &outcome {
                Err(ResolveError::Network(_)) => true,
                Ok(resp) => {
                    resp.header.tc || matches!(resp.header.rcode, Rcode::ServFail)
                }
                Err(_) => false,
            };
            attempt += 1;
            if !retryable || attempt >= MAX_DNS_ATTEMPTS {
                break outcome?;
            }
        };
        if resp.header.id != query.header.id {
            return Err(ResolveError::Network("transaction id mismatch".into()));
        }
        if resp.header.tc {
            // Still truncated after exhausting the budget: the answer
            // section cannot be trusted to be complete.
            return Err(ResolveError::Network("response truncated".into()));
        }
        match resp.header.rcode {
            Rcode::NoError => {}
            Rcode::NxDomain => {
                let ttl = negative_ttl(&resp).unwrap_or(300);
                self.cache.borrow_mut().insert(
                    key,
                    CacheEntry::Negative {
                        rcode: Rcode::NxDomain,
                        expires: now + ttl as u64,
                    },
                );
                return Err(ResolveError::NxDomain(name.clone()));
            }
            rc => return Err(ResolveError::ServerFailure(rc)),
        }
        let records = resp.answers.clone();
        if records.is_empty() {
            let ttl = negative_ttl(&resp).unwrap_or(300);
            self.cache.borrow_mut().insert(
                key,
                CacheEntry::Negative {
                    rcode: Rcode::NoError,
                    expires: now + ttl as u64,
                },
            );
            return Ok(Vec::new());
        }
        let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0).max(1);
        self.cache.borrow_mut().insert(
            key,
            CacheEntry::Positive {
                records: records.clone(),
                expires: now + min_ttl as u64,
            },
        );
        Ok(records)
    }

    /// Resolve A records for `name`, following CNAMEs.
    pub fn resolve_a(&self, name: &Name) -> Result<Vec<Ipv4Addr>, ResolveError> {
        let rs = self.resolve(name, RecordType::A)?;
        Ok(rs
            .iter()
            .filter_map(|r| match r.rdata {
                RData::A(a) => Some(a),
                _ => None,
            })
            .collect())
    }

    /// The full MX resolution for a domain: fetch MX records, then resolve
    /// each exchange's A records. Per-exchange failures yield empty `addrs`
    /// rather than failing the whole resolution (matching how OpenINTEL
    /// records partial data).
    pub fn resolve_mx(&self, domain: &Name) -> Result<MxResolution, ResolveError> {
        let _obs = mx_obs::stage!(
            mx_obs::names::STAGE_DNS_LOOKUP,
            mx_obs::names::STAGE_OBSERVE_RESOLVE
        )
        .enter_tagged(self.clock.now().secs(), name_trace_tag(domain));
        self.begin_lookup();
        let records = self.resolve(domain, RecordType::Mx)?;
        let mut degraded: Vec<MxDegradation> = Vec::new();
        if self.last_lookup_retries() > 0 {
            degraded.push(MxDegradation {
                name: domain.clone(),
                error: None,
                retries: self.last_lookup_retries(),
            });
        }
        let mut targets: Vec<MxTarget> = Vec::new();
        let mut null_mx = false;
        for r in &records {
            if let RData::Mx {
                preference,
                exchange,
            } = &r.rdata
            {
                if exchange.is_root() {
                    null_mx = true;
                    continue;
                }
                self.begin_lookup();
                let addrs = match self.resolve_a(exchange) {
                    Ok(addrs) => {
                        if self.last_lookup_retries() > 0 {
                            degraded.push(MxDegradation {
                                name: exchange.clone(),
                                error: None,
                                retries: self.last_lookup_retries(),
                            });
                        }
                        addrs
                    }
                    Err(e) => {
                        degraded.push(MxDegradation {
                            name: exchange.clone(),
                            error: Some(e),
                            retries: self.last_lookup_retries(),
                        });
                        Vec::new()
                    }
                };
                targets.push(MxTarget {
                    preference: *preference,
                    exchange: exchange.clone(),
                    addrs,
                });
            }
        }
        targets.sort_by(|a, b| {
            a.preference
                .cmp(&b.preference)
                .then_with(|| a.exchange.cmp(&b.exchange))
        });
        Ok(MxResolution {
            domain: domain.clone(),
            targets,
            null_mx,
            degraded,
        })
    }
}

/// Extract the RFC 2308 negative TTL from a response's SOA, if present.
fn negative_ttl(resp: &Message) -> Option<u32> {
    resp.authorities.iter().find_map(|r| match &r.rdata {
        RData::Soa(soa) => Some(r.ttl.min(soa.minimum)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;
    use crate::server::Authority;
    use crate::zone::Zone;
    use std::cell::Cell;

    /// In-process transport over an Authority, with a query counter.
    struct Direct<'a> {
        auth: &'a Authority,
        calls: Cell<u64>,
    }

    impl Transport for Direct<'_> {
        fn query(&self, _server: Ipv4Addr, q: &Message) -> Result<Message, ResolveError> {
            self.calls.set(self.calls.get() + 1);
            Ok(self.auth.answer(q))
        }
    }

    fn world() -> Authority {
        let mut a = Authority::new();
        let mut z = Zone::new(dns_name!("example.com"));
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx1.provider.net"),
            },
        );
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 20,
                exchange: dns_name!("backup.example.com"),
            },
        );
        z.add_rr(
            dns_name!("backup.example.com"),
            300,
            RData::A("192.0.2.2".parse().unwrap()),
        );
        z.add_rr(
            dns_name!("www.example.com"),
            300,
            RData::Cname(dns_name!("cdn.provider.net")),
        );
        a.add_zone(z);
        let mut p = Zone::new(dns_name!("provider.net"));
        p.add_rr(
            dns_name!("mx1.provider.net"),
            300,
            RData::A("198.51.100.25".parse().unwrap()),
        );
        p.add_rr(
            dns_name!("cdn.provider.net"),
            300,
            RData::A("198.51.100.80".parse().unwrap()),
        );
        a.add_zone(p);
        let mut n = Zone::new(dns_name!("nullmx.test"));
        n.add_rr(
            dns_name!("nullmx.test"),
            300,
            RData::Mx {
                preference: 0,
                exchange: Name::root(),
            },
        );
        a.add_zone(n);
        a
    }

    fn resolver<'a>(auth: &'a Authority, clock: SimClock) -> StubResolver<Direct<'a>> {
        StubResolver::new(
            Direct {
                auth,
                calls: Cell::new(0),
            },
            Ipv4Addr::new(10, 0, 0, 53),
            clock,
        )
    }

    #[test]
    fn resolve_mx_full() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("example.com")).unwrap();
        assert_eq!(mx.targets.len(), 2);
        assert_eq!(mx.targets[0].exchange, dns_name!("mx1.provider.net"));
        assert_eq!(
            mx.targets[0].addrs,
            vec!["198.51.100.25".parse::<Ipv4Addr>().unwrap()]
        );
        assert_eq!(mx.primary_targets().len(), 1);
        assert!(!mx.null_mx);
    }

    #[test]
    fn cross_zone_cname_chase() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let addrs = r.resolve_a(&dns_name!("www.example.com")).unwrap();
        assert_eq!(addrs, vec!["198.51.100.80".parse::<Ipv4Addr>().unwrap()]);
    }

    #[test]
    fn positive_cache_hits() {
        let auth = world();
        let clock = SimClock::new();
        let r = resolver(&auth, clock.clone());
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        let s = r.stats();
        assert_eq!(s.queries_sent, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn cache_expires_with_clock() {
        let auth = world();
        let clock = SimClock::new();
        let r = resolver(&auth, clock.clone());
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        clock.advance_secs(301); // ttl is 300
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        assert_eq!(r.stats().queries_sent, 2);
    }

    #[test]
    fn negative_cache() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let e = r.resolve_a(&dns_name!("missing.example.com")).unwrap_err();
        assert!(matches!(e, ResolveError::NxDomain(_)));
        let e = r.resolve_a(&dns_name!("missing.example.com")).unwrap_err();
        assert!(matches!(e, ResolveError::NxDomain(_)));
        let s = r.stats();
        assert_eq!(s.queries_sent, 1);
        assert_eq!(s.negative_hits, 1);
    }

    #[test]
    fn nodata_is_empty_not_error() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let rs = r.resolve(&dns_name!("backup.example.com"), RecordType::Mx).unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn null_mx_detected() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("nullmx.test")).unwrap();
        assert!(mx.null_mx);
        assert!(mx.is_empty());
        assert!(mx.primary_targets().is_empty());
    }

    #[test]
    fn primary_targets_split_same_preference() {
        let mut auth = Authority::new();
        let mut z = Zone::new(dns_name!("multi.test"));
        for ex in ["mx-a.multi.test", "mx-b.multi.test", "mx-c.multi.test"] {
            z.add_rr(
                dns_name!("multi.test"),
                300,
                RData::Mx {
                    preference: 10,
                    exchange: dns_name!(ex),
                },
            );
            z.add_rr(dns_name!(ex), 300, RData::A("192.0.2.9".parse().unwrap()));
        }
        z.add_rr(
            dns_name!("multi.test"),
            300,
            RData::Mx {
                preference: 20,
                exchange: dns_name!("mx-backup.multi.test"),
            },
        );
        z.add_rr(
            dns_name!("mx-backup.multi.test"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        );
        auth.add_zone(z);
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("multi.test")).unwrap();
        assert_eq!(mx.targets.len(), 4);
        assert_eq!(mx.primary_targets().len(), 3);
    }

    /// Transport whose first `fail_first` attempts of every query time
    /// out; later attempts answer from the authority.
    struct Flaky<'a> {
        auth: &'a Authority,
        fail_first: u32,
        calls: Cell<u64>,
    }

    impl Transport for Flaky<'_> {
        fn query(&self, server: Ipv4Addr, q: &Message) -> Result<Message, ResolveError> {
            self.query_attempt(server, q, 0)
        }

        fn query_attempt(
            &self,
            _server: Ipv4Addr,
            q: &Message,
            attempt: u32,
        ) -> Result<Message, ResolveError> {
            self.calls.set(self.calls.get() + 1);
            if attempt < self.fail_first {
                return Err(ResolveError::Network("injected timeout".into()));
            }
            Ok(self.auth.answer(q))
        }
    }

    /// Transport that always answers SERVFAIL (optionally truncated).
    struct Broken {
        rcode: Rcode,
        tc: bool,
    }

    impl Transport for Broken {
        fn query(&self, _server: Ipv4Addr, q: &Message) -> Result<Message, ResolveError> {
            let mut m = q.response();
            m.header.rcode = self.rcode;
            m.header.tc = self.tc;
            Ok(m)
        }
    }

    #[test]
    fn retries_recover_from_transient_timeouts() {
        let auth = world();
        let clock = SimClock::new();
        let r = StubResolver::new(
            Flaky {
                auth: &auth,
                fail_first: 2,
                calls: Cell::new(0),
            },
            Ipv4Addr::new(10, 0, 0, 53),
            clock.clone(),
        );
        let addrs = r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        assert_eq!(addrs, vec!["198.51.100.25".parse::<Ipv4Addr>().unwrap()]);
        let s = r.stats();
        assert_eq!(s.queries_sent, 3, "1 initial + 2 retries");
        assert_eq!(s.retries, 2);
        // Backoff cost charged without moving `now`: 2s + 4s.
        assert_eq!(clock.charged(), 6);
        assert_eq!(clock.now().secs(), 0);
    }

    #[test]
    fn retry_budget_exhausts() {
        let auth = world();
        let r = StubResolver::new(
            Flaky {
                auth: &auth,
                fail_first: 10,
                calls: Cell::new(0),
            },
            Ipv4Addr::new(10, 0, 0, 53),
            SimClock::new(),
        );
        let e = r.resolve_a(&dns_name!("mx1.provider.net")).unwrap_err();
        assert!(matches!(e, ResolveError::Network(_)));
        let s = r.stats();
        assert_eq!(s.queries_sent, MAX_DNS_ATTEMPTS as u64);
        assert_eq!(s.retries, (MAX_DNS_ATTEMPTS - 1) as u64);
    }

    #[test]
    fn servfail_and_truncation_are_retried_then_reported() {
        let r = StubResolver::new(
            Broken {
                rcode: Rcode::ServFail,
                tc: false,
            },
            Ipv4Addr::new(10, 0, 0, 53),
            SimClock::new(),
        );
        let e = r.resolve_a(&dns_name!("mx1.provider.net")).unwrap_err();
        assert!(matches!(e, ResolveError::ServerFailure(Rcode::ServFail)));
        assert_eq!(r.stats().queries_sent, MAX_DNS_ATTEMPTS as u64);

        let r = StubResolver::new(
            Broken {
                rcode: Rcode::NoError,
                tc: true,
            },
            Ipv4Addr::new(10, 0, 0, 53),
            SimClock::new(),
        );
        let e = r.resolve_a(&dns_name!("mx1.provider.net")).unwrap_err();
        assert!(
            matches!(&e, ResolveError::Network(m) if m.contains("truncated")),
            "{e:?}"
        );
        assert_eq!(r.stats().queries_sent, MAX_DNS_ATTEMPTS as u64);
    }

    #[test]
    fn flushes_counted_in_stats() {
        let auth = world();
        let r = resolver(&auth, SimClock::new());
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        r.flush_cache();
        r.resolve_a(&dns_name!("mx1.provider.net")).unwrap();
        r.flush_cache();
        let s = r.stats();
        assert_eq!(s.flushes, 2);
        assert_eq!(s.queries_sent, 2, "flush forces a re-query");
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn resolve_mx_records_recovered_lookups() {
        let auth = world();
        let r = StubResolver::new(
            Flaky {
                auth: &auth,
                fail_first: 1,
                calls: Cell::new(0),
            },
            Ipv4Addr::new(10, 0, 0, 53),
            SimClock::new(),
        );
        let mx = r.resolve_mx(&dns_name!("example.com")).unwrap();
        assert_eq!(mx.targets.len(), 2);
        // Every query (MX + two exchange A lookups) needed one retry.
        assert_eq!(mx.degraded.len(), 3, "{:?}", mx.degraded);
        assert!(mx.degraded.iter().all(|d| d.error.is_none() && d.retries == 1));
    }

    #[test]
    fn missing_exchange_yields_empty_addrs() {
        let mut auth = Authority::new();
        let mut z = Zone::new(dns_name!("dangling.test"));
        z.add_rr(
            dns_name!("dangling.test"),
            300,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("gone.dangling.test"),
            },
        );
        auth.add_zone(z);
        let r = resolver(&auth, SimClock::new());
        let mx = r.resolve_mx(&dns_name!("dangling.test")).unwrap();
        assert_eq!(mx.targets.len(), 1);
        assert!(mx.targets[0].addrs.is_empty(), "dangling MX: no addresses");
        // The degradation record names the failing exchange and carries
        // the terminal error.
        assert_eq!(mx.degraded.len(), 1);
        assert_eq!(mx.degraded[0].name, dns_name!("gone.dangling.test"));
        assert!(matches!(
            mx.degraded[0].error,
            Some(ResolveError::NxDomain(_))
        ));
    }
}
