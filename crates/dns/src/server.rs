//! Authoritative name server logic over a set of zones.

use std::collections::BTreeMap;

use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::rr::RecordType;
use crate::zone::{Zone, ZoneLookup};

/// An authoritative server holding one or more zones, answering queries
/// with correct AA/rcode/authority-section semantics.
#[derive(Debug, Default)]
pub struct Authority {
    /// Zones keyed by origin.
    zones: BTreeMap<Name, Zone>,
}

impl Authority {
    /// An authority holding no zones.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a zone.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), zone);
    }

    /// Mutable access to a zone by origin.
    pub fn zone_mut(&mut self, origin: &Name) -> Option<&mut Zone> {
        self.zones.get_mut(origin)
    }

    /// Shared access to a zone by origin.
    pub fn zone(&self, origin: &Name) -> Option<&Zone> {
        self.zones.get(origin)
    }

    /// Number of zones held.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Iterate zones.
    pub fn zones(&self) -> impl Iterator<Item = &Zone> {
        self.zones.values()
    }

    /// The closest enclosing zone for `name`, if any.
    pub fn find_zone(&self, name: &Name) -> Option<&Zone> {
        // Walk from the name towards the root, first hit wins (most
        // specific zone).
        let mut n = Some(name.clone());
        while let Some(current) = n {
            if let Some(z) = self.zones.get(&current) {
                return Some(z);
            }
            n = current.parent();
        }
        None
    }

    /// Answer a query message. Follows CNAME chains *within* the same zone,
    /// appending each chain element, as real authoritative servers do.
    pub fn answer(&self, query: &Message) -> Message {
        let mut resp = query.response();
        let q = match query.question() {
            Some(q) => q.clone(),
            None => {
                resp.header.rcode = Rcode::FormErr;
                return resp;
            }
        };
        let zone = match self.find_zone(&q.name) {
            Some(z) => z,
            None => {
                resp.header.rcode = Rcode::Refused;
                return resp;
            }
        };
        resp.header.aa = true;
        let mut name = q.name.clone();
        // Bounded CNAME chase inside the zone.
        for _ in 0..16 {
            match zone.lookup(&name, q.qtype) {
                ZoneLookup::Answer(rs) => {
                    resp.answers.extend(rs);
                    self.add_glue(zone, &mut resp);
                    return resp;
                }
                ZoneLookup::Cname(c) => {
                    let target = match &c.rdata {
                        crate::rr::RData::Cname(t) => t.clone(),
                        _ => unreachable!("Cname lookup returns CNAME rdata"),
                    };
                    resp.answers.push(c);
                    if target.is_subdomain_of(zone.origin()) {
                        name = target;
                        continue;
                    }
                    // Out-of-zone target: the resolver restarts elsewhere.
                    return resp;
                }
                ZoneLookup::NoData => {
                    resp.authorities.push(zone.soa_record());
                    return resp;
                }
                ZoneLookup::NxDomain => {
                    // If we already followed a CNAME, the original name
                    // exists; keep NOERROR per RFC 2308 §2.1.
                    if resp.answers.is_empty() {
                        resp.header.rcode = Rcode::NxDomain;
                    }
                    resp.authorities.push(zone.soa_record());
                    return resp;
                }
                ZoneLookup::Referral(ns) => {
                    resp.header.aa = false;
                    resp.authorities.extend(ns);
                    self.add_glue(zone, &mut resp);
                    return resp;
                }
                ZoneLookup::OutOfZone => {
                    resp.header.rcode = Rcode::ServFail;
                    return resp;
                }
            }
        }
        resp.header.rcode = Rcode::ServFail; // CNAME loop inside zone
        resp
    }

    /// Add A/AAAA glue for MX exchanges and NS targets we are authoritative
    /// for, mirroring the additional-section processing of RFC 1035 §6.3 —
    /// the measurement pipeline uses these to avoid re-querying.
    fn add_glue(&self, zone: &Zone, resp: &mut Message) {
        use crate::rr::RData;
        let mut targets: Vec<Name> = Vec::new();
        for r in resp.answers.iter().chain(&resp.authorities) {
            match &r.rdata {
                RData::Mx { exchange, .. } if !exchange.is_root() => {
                    targets.push(exchange.clone())
                }
                RData::Ns(t) => targets.push(t.clone()),
                _ => {}
            }
        }
        for t in targets {
            let z = if t.is_subdomain_of(zone.origin()) {
                Some(zone)
            } else {
                self.find_zone(&t)
            };
            if let Some(z) = z {
                // Raw access: glue sits below the delegation cut, where a
                // normal lookup would return a referral instead.
                for r in z.records_at(&t, RecordType::A) {
                    if !resp.additionals.contains(&r) {
                        resp.additionals.push(r);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;
    use crate::message::Message;
    use crate::rr::RData;
    use std::net::Ipv4Addr;

    fn authority() -> Authority {
        let mut a = Authority::new();
        let mut z = Zone::new(dns_name!("example.com"));
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx.example.com"),
            },
        );
        z.add_rr(
            dns_name!("mx.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 25)),
        );
        z.add_rr(
            dns_name!("alias.example.com"),
            300,
            RData::Cname(dns_name!("mx.example.com")),
        );
        z.add_rr(
            dns_name!("extalias.example.com"),
            300,
            RData::Cname(dns_name!("target.other.org")),
        );
        a.add_zone(z);
        let mut p = Zone::new(dns_name!("provider.net"));
        p.add_rr(
            dns_name!("mx1.provider.net"),
            300,
            RData::A(Ipv4Addr::new(198, 51, 100, 25)),
        );
        a.add_zone(p);
        a
    }

    #[test]
    fn answers_mx_with_glue() {
        let a = authority();
        let q = Message::query(1, dns_name!("example.com"), RecordType::Mx);
        let r = a.answer(&q);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.header.aa);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(
            r.additionals[0].rdata,
            RData::A(Ipv4Addr::new(192, 0, 2, 25))
        );
    }

    #[test]
    fn follows_in_zone_cname() {
        let a = authority();
        let q = Message::query(2, dns_name!("alias.example.com"), RecordType::A);
        let r = a.answer(&q);
        assert_eq!(r.answers.len(), 2);
        assert!(matches!(r.answers[0].rdata, RData::Cname(_)));
        assert!(matches!(r.answers[1].rdata, RData::A(_)));
    }

    #[test]
    fn out_of_zone_cname_returned_alone() {
        let a = authority();
        let q = Message::query(3, dns_name!("extalias.example.com"), RecordType::A);
        let r = a.answer(&q);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.header.rcode, Rcode::NoError);
    }

    #[test]
    fn nxdomain_carries_soa() {
        let a = authority();
        let q = Message::query(4, dns_name!("missing.example.com"), RecordType::A);
        let r = a.answer(&q);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert!(matches!(r.authorities[0].rdata, RData::Soa(_)));
    }

    #[test]
    fn nodata_carries_soa_with_noerror() {
        let a = authority();
        let q = Message::query(5, dns_name!("mx.example.com"), RecordType::Mx);
        let r = a.answer(&q);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert!(matches!(r.authorities[0].rdata, RData::Soa(_)));
    }

    #[test]
    fn refused_outside_all_zones() {
        let a = authority();
        let q = Message::query(6, dns_name!("unknown.test"), RecordType::A);
        let r = a.answer(&q);
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn most_specific_zone_wins() {
        let mut a = authority();
        let mut sub = Zone::new(dns_name!("sub.example.com"));
        sub.add_rr(
            dns_name!("host.sub.example.com"),
            60,
            RData::A(Ipv4Addr::new(203, 0, 113, 1)),
        );
        a.add_zone(sub);
        let q = Message::query(7, dns_name!("host.sub.example.com"), RecordType::A);
        let r = a.answer(&q);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn cname_loop_is_servfail() {
        let mut a = Authority::new();
        let mut z = Zone::new(dns_name!("loop.test"));
        z.add_rr(
            dns_name!("a.loop.test"),
            60,
            RData::Cname(dns_name!("b.loop.test")),
        );
        z.add_rr(
            dns_name!("b.loop.test"),
            60,
            RData::Cname(dns_name!("a.loop.test")),
        );
        a.add_zone(z);
        let q = Message::query(8, dns_name!("a.loop.test"), RecordType::A);
        let r = a.answer(&q);
        assert_eq!(r.header.rcode, Rcode::ServFail);
    }
}
