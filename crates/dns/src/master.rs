//! RFC 1035 §5 master-file (zone file) parsing.
//!
//! Supports the subset real zone files use in practice: `$ORIGIN` and
//! `$TTL` directives, `@` for the origin, relative and absolute names,
//! blank owner fields (repeat the previous owner), `;` comments,
//! parenthesised multi-line SOA records, quoted TXT strings, and the
//! record types the measurement needs (SOA, NS, A, AAAA, CNAME, MX, TXT,
//! PTR). Class defaults to `IN` and may be written explicitly.
//!
//! ```
//! use mx_dns::{master, RecordType};
//!
//! let zone = master::parse_zone(r#"
//! $ORIGIN example.com.
//! $TTL 3600
//! @       IN SOA ns1 hostmaster ( 2021060800 7200 900 1209600 300 )
//! @       IN MX 10 aspmx.l.google.com.
//! mail    IN A  192.0.2.25
//! www     300 IN CNAME web
//! "#).unwrap();
//! assert_eq!(zone.origin().to_string(), "example.com");
//! assert_eq!(zone.record_count(), 3);
//! ```

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::name::{Name, NameError};
use crate::rr::{RData, Record, RecordType, Soa};
use crate::zone::Zone;

/// Errors while parsing a master file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for MasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MasterError {}

fn err(line: usize, message: impl Into<String>) -> MasterError {
    MasterError {
        line,
        message: message.into(),
    }
}

/// A token with the line it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Token {
    line: usize,
    text: String,
    /// Was the token quoted? (TXT strings keep spaces and case.)
    quoted: bool,
    /// Did a newline precede this token (outside parentheses)?
    starts_line: bool,
}

/// Tokenise: handle comments, quotes and parenthesised continuations.
fn tokenize(text: &str) -> Result<Vec<Token>, MasterError> {
    let mut tokens = Vec::new();
    let mut depth = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut chars = raw.chars().peekable();
        let mut fresh_line = depth == 0;
        // Leading whitespace on a fresh line means "no owner field": emit
        // an empty-owner marker so the grammar can repeat the last owner.
        if fresh_line && raw.starts_with([' ', '\t']) && !raw.trim().is_empty() {
            tokens.push(Token {
                line,
                text: String::new(),
                quoted: false,
                starts_line: true,
            });
            fresh_line = false;
        }
        while let Some(&c) = chars.peek() {
            match c {
                ';' => break, // comment to end of line
                c if c.is_whitespace() => {
                    chars.next();
                }
                '(' => {
                    depth += 1;
                    chars.next();
                }
                ')' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| err(line, "unbalanced ')'"))?;
                    chars.next();
                }
                '"' => {
                    chars.next();
                    let mut s = String::new();
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some('\\') => match chars.next() {
                                Some(e) => s.push(e),
                                None => return Err(err(line, "dangling escape")),
                            },
                            Some(c) => s.push(c),
                            None => return Err(err(line, "unterminated string")),
                        }
                    }
                    tokens.push(Token {
                        line,
                        text: s,
                        quoted: true,
                        starts_line: fresh_line,
                    });
                    fresh_line = false;
                }
                _ => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_whitespace() || c == ';' || c == '(' || c == ')' || c == '"' {
                            break;
                        }
                        s.push(c);
                        chars.next();
                    }
                    tokens.push(Token {
                        line,
                        text: s,
                        quoted: false,
                        starts_line: fresh_line,
                    });
                    fresh_line = false;
                }
            }
        }
    }
    if depth != 0 {
        return Err(err(text.lines().count(), "unbalanced '('"));
    }
    Ok(tokens)
}

/// One logical entry: the tokens of one record or directive.
fn split_entries(tokens: Vec<Token>) -> Vec<Vec<Token>> {
    let mut entries: Vec<Vec<Token>> = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    for t in tokens {
        if t.starts_line && !current.is_empty() {
            entries.push(std::mem::take(&mut current));
        }
        current.push(t);
    }
    if !current.is_empty() {
        entries.push(current);
    }
    entries
}

/// Resolve a possibly-relative name against the origin.
fn resolve_name(text: &str, origin: &Name, line: usize) -> Result<Name, MasterError> {
    if text == "@" {
        return Ok(origin.clone());
    }
    let absolute = text.ends_with('.');
    let name = Name::parse(text)
        .map_err(|e: NameError| err(line, format!("bad name {text:?}: {e}")))?;
    if absolute {
        Ok(name)
    } else {
        name.join(origin)
            .map_err(|e| err(line, format!("name too long: {e}")))
    }
}

/// Parse a complete zone file. The origin comes from `$ORIGIN` (required
/// unless every name is absolute and the first record is the zone apex
/// SOA, in which case the SOA owner becomes the origin).
pub fn parse_zone(text: &str) -> Result<Zone, MasterError> {
    let tokens = tokenize(text)?;
    let entries = split_entries(tokens);

    let mut origin: Option<Name> = None;
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;
    let mut records: Vec<Record> = Vec::new();
    let mut soa: Option<(Name, Soa, u32)> = None;

    for entry in entries {
        let Some(first) = entry.first() else {
            continue;
        };
        let line = first.line;
        // Directives.
        if !first.quoted && first.text.eq_ignore_ascii_case("$ORIGIN") {
            let arg = entry
                .get(1)
                .ok_or_else(|| err(line, "$ORIGIN needs a name"))?;
            let name = Name::parse(&arg.text)
                .map_err(|e| err(line, format!("bad $ORIGIN: {e}")))?;
            origin = Some(name);
            continue;
        }
        if !first.quoted && first.text.eq_ignore_ascii_case("$TTL") {
            let arg = entry.get(1).ok_or_else(|| err(line, "$TTL needs a value"))?;
            default_ttl = arg
                .text
                .parse()
                .map_err(|_| err(line, format!("bad $TTL {:?}", arg.text)))?;
            continue;
        }

        // Owner field (may be empty = repeat previous).
        let owner = if first.text.is_empty() {
            last_owner
                .clone()
                .ok_or_else(|| err(line, "no previous owner to repeat"))?
        } else {
            let fallback_origin = Name::root();
            let o = origin.as_ref().unwrap_or(&fallback_origin);
            resolve_name(&first.text, o, line)?
        };
        let mut idx = 1usize;

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut rtype: Option<RecordType> = None;
        while let Some(tok) = entry.get(idx) {
            let t = &tok.text;
            if !tok.quoted {
                if let Ok(v) = t.parse::<u32>() {
                    ttl = v;
                    idx += 1;
                    continue;
                }
                if t.eq_ignore_ascii_case("IN") || t.eq_ignore_ascii_case("CH") {
                    idx += 1;
                    continue;
                }
                rtype = Some(match t.to_ascii_uppercase().as_str() {
                    "SOA" => RecordType::Soa,
                    "NS" => RecordType::Ns,
                    "A" => RecordType::A,
                    "AAAA" => RecordType::Aaaa,
                    "CNAME" => RecordType::Cname,
                    "MX" => RecordType::Mx,
                    "TXT" => RecordType::Txt,
                    "PTR" => RecordType::Ptr,
                    other => return Err(err(line, format!("unsupported type {other}"))),
                });
                idx += 1;
                break;
            }
            return Err(err(line, "unexpected quoted string before type"));
        }
        let rtype = rtype.ok_or_else(|| err(line, "missing record type"))?;
        let rest = entry.get(idx..).unwrap_or(&[]);
        let origin_for_rdata = origin.clone().unwrap_or_else(Name::root);

        let rdata = match rtype {
            RecordType::A => {
                let a = rdata_field(rest, 0, line, "address")?;
                RData::A(a.text.parse::<Ipv4Addr>().map_err(|_| {
                    err(line, format!("bad IPv4 address {:?}", a.text))
                })?)
            }
            RecordType::Aaaa => {
                let a = rdata_field(rest, 0, line, "address")?;
                RData::Aaaa(a.text.parse::<Ipv6Addr>().map_err(|_| {
                    err(line, format!("bad IPv6 address {:?}", a.text))
                })?)
            }
            RecordType::Ns => RData::Ns(resolve_name(
                &rdata_field(rest, 0, line, "nsdname")?.text,
                &origin_for_rdata,
                line,
            )?),
            RecordType::Cname => RData::Cname(resolve_name(
                &rdata_field(rest, 0, line, "target")?.text,
                &origin_for_rdata,
                line,
            )?),
            RecordType::Ptr => RData::Ptr(resolve_name(
                &rdata_field(rest, 0, line, "target")?.text,
                &origin_for_rdata,
                line,
            )?),
            RecordType::Mx => {
                let pref = rdata_field(rest, 0, line, "preference")?;
                let exchange = rdata_field(rest, 1, line, "exchange")?;
                RData::Mx {
                    preference: pref
                        .text
                        .parse()
                        .map_err(|_| err(line, format!("bad preference {:?}", pref.text)))?,
                    exchange: if exchange.text == "." {
                        Name::root()
                    } else {
                        resolve_name(&exchange.text, &origin_for_rdata, line)?
                    },
                }
            }
            RecordType::Txt => {
                if rest.is_empty() {
                    return Err(err(line, "TXT needs at least one string"));
                }
                RData::Txt(rest.iter().map(|t| t.text.clone()).collect())
            }
            RecordType::Soa => {
                if rest.len() != 7 {
                    return Err(err(line, format!("SOA needs 7 fields, got {}", rest.len())));
                }
                let num = |i: usize, what: &str| -> Result<u32, MasterError> {
                    let t = rdata_field(rest, i, line, what)?;
                    t.text
                        .parse()
                        .map_err(|_| err(line, format!("bad SOA {what} {:?}", t.text)))
                };
                let soa_data = Soa {
                    mname: resolve_name(
                        &rdata_field(rest, 0, line, "mname")?.text,
                        &origin_for_rdata,
                        line,
                    )?,
                    rname: resolve_name(
                        &rdata_field(rest, 1, line, "rname")?.text,
                        &origin_for_rdata,
                        line,
                    )?,
                    serial: num(2, "serial")?,
                    refresh: num(3, "refresh")?,
                    retry: num(4, "retry")?,
                    expire: num(5, "expire")?,
                    minimum: num(6, "minimum")?,
                };
                soa = Some((owner.clone(), soa_data, ttl));
                last_owner = Some(owner);
                continue;
            }
            other => return Err(err(line, format!("unsupported type {other}"))),
        };
        records.push(Record::new(owner.clone(), ttl, rdata));
        last_owner = Some(owner);
    }

    // Determine the zone origin: explicit $ORIGIN, else the SOA owner.
    let origin = match (origin, &soa) {
        (Some(o), _) => o,
        (None, Some((owner, _, _))) => owner.clone(),
        (None, None) => {
            return Err(err(1, "zone needs $ORIGIN or an SOA record"));
        }
    };
    let mut zone = Zone::new(origin.clone());
    if let Some((owner, soa_data, _ttl)) = soa {
        if owner != origin {
            return Err(err(1, format!("SOA owner {owner} is not the origin {origin}")));
        }
        zone.set_soa(soa_data);
    }
    for r in records {
        if !r.name.is_subdomain_of(&origin) {
            return Err(err(
                1,
                format!("record owner {} outside zone {origin}", r.name),
            ));
        }
        zone.add(r);
    }
    Ok(zone)
}

fn rdata_field<'a>(
    rest: &'a [Token],
    i: usize,
    line: usize,
    what: &str,
) -> Result<&'a Token, MasterError> {
    rest.get(i)
        .ok_or_else(|| err(line, format!("missing {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;
    use crate::zone::ZoneLookup;

    const SAMPLE: &str = r#"
; example.com zone
$ORIGIN example.com.
$TTL 3600
@       IN SOA ns1 hostmaster.example.com. (
            2021060800 ; serial
            7200       ; refresh
            900        ; retry
            1209600    ; expire
            300 )      ; minimum
@       IN NS  ns1
@       IN MX  10 aspmx.l.google.com.
        IN MX  20 alt1.aspmx.l.google.com.
ns1     IN A   192.0.2.53
mail    600 IN A 192.0.2.25
mail    IN AAAA 2001:db8::25
www     IN CNAME web
web     IN A   192.0.2.80
txt     IN TXT "v=spf1 include:_spf.google.com ~all" "second string"
rev     IN PTR host.example.com.
nullmx  IN MX 0 .
"#;

    #[test]
    fn parses_complete_zone() {
        let zone = parse_zone(SAMPLE).unwrap();
        assert_eq!(zone.origin(), &dns_name!("example.com"));
        assert_eq!(zone.soa().serial, 2021060800);
        assert_eq!(zone.soa().minimum, 300);
        // Record count: NS + 2 MX + A + A + AAAA + CNAME + A + TXT + PTR + MX0
        assert_eq!(zone.record_count(), 11);
    }

    #[test]
    fn blank_owner_repeats_previous() {
        let zone = parse_zone(SAMPLE).unwrap();
        match zone.lookup(&dns_name!("example.com"), RecordType::Mx) {
            ZoneLookup::Answer(rs) => assert_eq!(rs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relative_and_absolute_names() {
        let zone = parse_zone(SAMPLE).unwrap();
        match zone.lookup(&dns_name!("mail.example.com"), RecordType::A) {
            ZoneLookup::Answer(rs) => assert_eq!(rs[0].ttl, 600),
            other => panic!("{other:?}"),
        }
        match zone.lookup(&dns_name!("example.com"), RecordType::Mx) {
            ZoneLookup::Answer(rs) => {
                // Absolute exchange kept as written.
                assert!(rs.iter().any(|r| matches!(
                    &r.rdata,
                    RData::Mx { exchange, .. } if exchange == &dns_name!("aspmx.l.google.com")
                )));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn txt_strings_and_ptr() {
        let zone = parse_zone(SAMPLE).unwrap();
        match zone.lookup(&dns_name!("txt.example.com"), RecordType::Txt) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(
                    rs[0].rdata,
                    RData::Txt(vec![
                        "v=spf1 include:_spf.google.com ~all".into(),
                        "second string".into()
                    ])
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn null_mx() {
        let zone = parse_zone(SAMPLE).unwrap();
        match zone.lookup(&dns_name!("nullmx.example.com"), RecordType::Mx) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(
                    rs[0].rdata,
                    RData::Mx {
                        preference: 0,
                        exchange: Name::root()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn origin_from_soa_when_no_directive() {
        let zone = parse_zone(
            "example.org. 3600 IN SOA ns1.example.org. h.example.org. 1 2 3 4 5\n\
             example.org. IN A 192.0.2.1\n",
        )
        .unwrap();
        assert_eq!(zone.origin(), &dns_name!("example.org"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_zone("$ORIGIN example.com.\nbad IN A not-an-ip\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad IPv4"));

        let e = parse_zone("$ORIGIN x.com.\n@ IN SOA a b 1 2 3\n").unwrap_err();
        assert!(e.message.contains("SOA needs 7"));

        let e = parse_zone("@ IN A 1.2.3.4\n").unwrap_err();
        assert!(e.message.contains("$ORIGIN"));
    }

    #[test]
    fn unbalanced_parens_rejected() {
        assert!(parse_zone("$ORIGIN x.\n@ IN SOA a b ( 1 2 3 4 5\n").is_err());
        assert!(parse_zone("$ORIGIN x.\n@ IN A ) 1.2.3.4\n").is_err());
    }

    #[test]
    fn comments_everywhere() {
        let zone = parse_zone(
            "; leading comment\n$ORIGIN c.com. ; trailing\n@ IN A 192.0.2.1 ; addr\n",
        )
        .unwrap();
        assert_eq!(zone.record_count(), 1);
    }

    #[test]
    fn roundtrip_into_authority() {
        use crate::message::Message;
        use crate::server::Authority;
        let zone = parse_zone(SAMPLE).unwrap();
        let mut auth = Authority::new();
        auth.add_zone(zone);
        let q = Message::query(1, dns_name!("example.com"), RecordType::Mx);
        let resp = auth.answer(&q);
        assert_eq!(resp.answers.len(), 2);
        // The exchanges live outside this authority: no glue expected.
        assert!(resp.additionals.is_empty());
    }
}

/// Serialise a zone back to master-file text. `parse_zone(to_master(z))`
/// reconstructs an equivalent zone (same origin, SOA and record multiset).
pub fn to_master(zone: &Zone) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "$ORIGIN {}.", zone.origin().to_dotted());
    let soa = zone.soa();
    let _ = writeln!(
        out,
        "@ {} IN SOA {}. {}. {} {} {} {} {}",
        zone.soa_record().ttl,
        soa.mname.to_dotted(),
        soa.rname.to_dotted(),
        soa.serial,
        soa.refresh,
        soa.retry,
        soa.expire,
        soa.minimum
    );
    for r in zone.iter() {
        let owner = if r.name == *zone.origin() {
            "@".to_string()
        } else {
            format!("{}.", r.name.to_dotted())
        };
        let rdata = match &r.rdata {
            RData::A(a) => format!("A {a}"),
            RData::Aaaa(a) => format!("AAAA {a}"),
            RData::Ns(n) => format!("NS {}.", n.to_dotted()),
            RData::Cname(n) => format!("CNAME {}.", n.to_dotted()),
            RData::Ptr(n) => format!("PTR {}.", n.to_dotted()),
            RData::Mx {
                preference,
                exchange,
            } => {
                if exchange.is_root() {
                    format!("MX {preference} .")
                } else {
                    format!("MX {preference} {}.", exchange.to_dotted())
                }
            }
            RData::Txt(strings) => {
                let quoted: Vec<String> = strings
                    .iter()
                    .map(|s| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")))
                    .collect();
                format!("TXT {}", quoted.join(" "))
            }
            RData::Soa(_) | RData::Opaque { .. } => continue,
        };
        let _ = writeln!(out, "{owner} {} IN {rdata}", r.ttl);
    }
    out
}

#[cfg(test)]
mod serialize_tests {
    use super::*;
    

    fn sorted_records(z: &Zone) -> Vec<String> {
        let mut v: Vec<String> = z.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn roundtrip_preserves_zone() {
        let original = parse_zone(
            r#"
$ORIGIN rt.example.
$TTL 600
@     IN SOA ns1 hostmaster 7 1 2 3 4
@     IN MX 10 aspmx.l.google.com.
@     IN MX 0 .
@     IN TXT "v=spf1 include:_spf.google.com ~all"
mx    IN A 192.0.2.1
mx    IN AAAA 2001:db8::1
www   IN CNAME mx
deep.sub IN A 192.0.2.2
"#,
        )
        .unwrap();
        let text = to_master(&original);
        let reparsed = parse_zone(&text).unwrap();
        assert_eq!(reparsed.origin(), original.origin());
        assert_eq!(reparsed.soa(), original.soa());
        assert_eq!(sorted_records(&reparsed), sorted_records(&original));
    }

    #[test]
    fn txt_quoting_survives() {
        let original = parse_zone(
            "$ORIGIN q.example.\n@ IN SOA a b 1 2 3 4 5\n@ IN TXT \"has \\\"quotes\\\" inside\"\n",
        )
        .unwrap();
        let reparsed = parse_zone(&to_master(&original)).unwrap();
        assert_eq!(sorted_records(&reparsed), sorted_records(&original));
    }
}
