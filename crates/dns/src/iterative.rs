//! An iterative resolver: full referral chasing from root hints.
//!
//! The stub resolver ([`crate::StubResolver`]) trusts one recursive server,
//! which is how OpenINTEL-style platforms are usually fronted. This module
//! implements what that recursive server does internally: start at the
//! root name servers, follow referrals (NS records + glue) down the
//! delegation tree, and restart for out-of-zone CNAME targets — RFC 1034
//! §5.3.3.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::resolver::{ResolveError, Transport};
use crate::rr::{RData, Record, RecordType};

/// Upper bound on referrals followed for one query.
const MAX_REFERRALS: usize = 24;
/// Upper bound on cross-zone CNAME restarts.
const MAX_RESTARTS: usize = 8;

/// An iterative resolver over a [`Transport`], seeded with root hints.
pub struct IterativeResolver<T: Transport> {
    transport: T,
    /// Addresses of the root name servers.
    roots: Vec<Ipv4Addr>,
    next_id: std::cell::Cell<u16>,
}

impl<T: Transport> IterativeResolver<T> {
    /// Build a resolver with the given root-server addresses.
    pub fn new(transport: T, roots: Vec<Ipv4Addr>) -> Self {
        assert!(!roots.is_empty(), "need at least one root hint");
        IterativeResolver {
            transport,
            roots,
            next_id: std::cell::Cell::new(1),
        }
    }

    fn fresh_id(&self) -> u16 {
        let id = self.next_id.get();
        self.next_id.set(id.wrapping_add(1).max(1));
        id
    }

    /// Resolve (name, rtype), following referrals and CNAMEs. Returns all
    /// matching records (empty = NODATA).
    pub fn resolve(&self, name: &Name, rtype: RecordType) -> Result<Vec<Record>, ResolveError> {
        let mut target = name.clone();
        let mut out: Vec<Record> = Vec::new();
        for _restart in 0..MAX_RESTARTS {
            match self.resolve_once(&target, rtype)? {
                Outcome::Answer(mut rs) => {
                    out.append(&mut rs);
                    return Ok(out);
                }
                Outcome::Cname(chain, next) => {
                    out.extend(chain);
                    target = next;
                }
                Outcome::NoData => return Ok(out),
            }
        }
        Err(ResolveError::CnameChainTooLong(name.clone()))
    }

    /// One full descent from the roots for a single owner name.
    fn resolve_once(&self, name: &Name, rtype: RecordType) -> Result<Outcome, ResolveError> {
        let mut servers: Vec<Ipv4Addr> = self.roots.clone();
        // Glue learned from referrals: NS target name -> addresses.
        let mut glue: HashMap<Name, Vec<Ipv4Addr>> = HashMap::new();
        for _hop in 0..MAX_REFERRALS {
            let server = *servers.first().ok_or_else(|| {
                ResolveError::Network("referral without reachable name servers".into())
            })?;
            let query = Message::query(self.fresh_id(), name.clone(), rtype);
            let resp = self.transport.query(server, &query)?;
            match resp.header.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => return Err(ResolveError::NxDomain(name.clone())),
                rc => return Err(ResolveError::ServerFailure(rc)),
            }

            // Answer section: direct answers and/or a CNAME chain element.
            let direct: Vec<Record> = resp
                .answers
                .iter()
                .filter(|r| r.rtype() == rtype && &r.name == name)
                .cloned()
                .collect();
            if !direct.is_empty() {
                return Ok(Outcome::Answer(resp.answers.clone()));
            }
            if let Some(cname) = resp
                .answers
                .iter()
                .find(|r| r.rtype() == RecordType::Cname)
            {
                let next = match &cname.rdata {
                    RData::Cname(t) => t.clone(),
                    _ => unreachable!("CNAME rtype has CNAME rdata"),
                };
                // In-zone chains may already carry the final answer.
                let tail: Vec<Record> = resp
                    .answers
                    .iter()
                    .filter(|r| r.rtype() == rtype)
                    .cloned()
                    .collect();
                if !tail.is_empty() {
                    return Ok(Outcome::Answer(resp.answers.clone()));
                }
                return Ok(Outcome::Cname(resp.answers.clone(), next));
            }

            // Referral: authority NS records point further down.
            let ns_targets: Vec<Name> = resp
                .authorities
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ns(t) => Some(t.clone()),
                    _ => None,
                })
                .collect();
            if ns_targets.is_empty() {
                // Authoritative NODATA (SOA in authority or nothing).
                return Ok(Outcome::NoData);
            }
            for r in &resp.additionals {
                if let RData::A(a) = r.rdata {
                    glue.entry(r.name.clone()).or_default().push(a);
                }
            }
            let mut next_servers = Vec::new();
            for t in &ns_targets {
                if let Some(addrs) = glue.get(t) {
                    next_servers.extend(addrs.iter().copied());
                }
            }
            if next_servers.is_empty() {
                return Err(ResolveError::Network(format!(
                    "glueless referral to {:?}",
                    ns_targets
                        .iter()
                        .map(Name::to_string)
                        .collect::<Vec<_>>()
                )));
            }
            next_servers.sort();
            next_servers.dedup();
            servers = next_servers;
        }
        Err(ResolveError::Network("referral loop".into()))
    }
}

enum Outcome {
    Answer(Vec<Record>),
    Cname(Vec<Record>, Name),
    NoData,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns_name;
    use crate::server::Authority;
    use crate::zone::Zone;

    /// A transport routing queries to per-IP authorities — a miniature
    /// delegation tree: root -> com -> example.com.
    struct MultiServer {
        servers: HashMap<Ipv4Addr, Authority>,
    }

    impl Transport for MultiServer {
        fn query(&self, server: Ipv4Addr, q: &Message) -> Result<Message, ResolveError> {
            match self.servers.get(&server) {
                Some(a) => Ok(a.answer(q)),
                None => Err(ResolveError::Network(format!("no server at {server}"))),
            }
        }
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn tree() -> MultiServer {
        let mut servers = HashMap::new();

        // Root zone: delegates com. to the TLD server, with glue.
        let mut root = Zone::new(Name::root());
        root.add_rr(dns_name!("com"), 3600, RData::Ns(dns_name!("a.gtld.net")));
        root.add_rr(dns_name!("a.gtld.net"), 3600, RData::A(ip("10.0.0.2")));
        let mut root_auth = Authority::new();
        root_auth.add_zone(root);
        servers.insert(ip("10.0.0.1"), root_auth);

        // com zone: delegates example.com, with glue.
        let mut com = Zone::new(dns_name!("com"));
        com.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Ns(dns_name!("ns1.example.com")),
        );
        com.add_rr(dns_name!("ns1.example.com"), 3600, RData::A(ip("10.0.0.3")));
        let mut com_auth = Authority::new();
        com_auth.add_zone(com);
        servers.insert(ip("10.0.0.2"), com_auth);

        // example.com zone: the answers.
        let mut ex = Zone::new(dns_name!("example.com"));
        ex.add_rr(
            dns_name!("example.com"),
            300,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx.example.com"),
            },
        );
        ex.add_rr(dns_name!("mx.example.com"), 300, RData::A(ip("192.0.2.25")));
        ex.add_rr(
            dns_name!("www.example.com"),
            300,
            RData::Cname(dns_name!("cdn.example.com")),
        );
        ex.add_rr(dns_name!("cdn.example.com"), 300, RData::A(ip("192.0.2.80")));
        ex.add_rr(
            dns_name!("ext.example.com"),
            300,
            RData::Cname(dns_name!("target.other.com")),
        );
        let mut ex_auth = Authority::new();
        ex_auth.add_zone(ex);
        servers.insert(ip("10.0.0.3"), ex_auth);

        // other.com for the cross-zone CNAME restart (delegated from com).
        let mut com_auth2 = servers.remove(&ip("10.0.0.2")).unwrap();
        let com_zone = com_auth2.zone_mut(&dns_name!("com")).unwrap();
        com_zone.add_rr(
            dns_name!("other.com"),
            3600,
            RData::Ns(dns_name!("ns1.other.com")),
        );
        com_zone.add_rr(dns_name!("ns1.other.com"), 3600, RData::A(ip("10.0.0.4")));
        servers.insert(ip("10.0.0.2"), com_auth2);
        let mut other = Zone::new(dns_name!("other.com"));
        other.add_rr(
            dns_name!("target.other.com"),
            300,
            RData::A(ip("192.0.2.99")),
        );
        let mut other_auth = Authority::new();
        other_auth.add_zone(other);
        servers.insert(ip("10.0.0.4"), other_auth);

        MultiServer { servers }
    }

    fn resolver() -> IterativeResolver<MultiServer> {
        IterativeResolver::new(tree(), vec![ip("10.0.0.1")])
    }

    #[test]
    fn follows_referrals_from_root() {
        let r = resolver();
        let rs = r.resolve(&dns_name!("example.com"), RecordType::Mx).unwrap();
        assert!(rs
            .iter()
            .any(|rec| matches!(&rec.rdata, RData::Mx { exchange, .. }
                if exchange == &dns_name!("mx.example.com"))));
    }

    #[test]
    fn in_zone_cname_answered_in_one_descent() {
        let r = resolver();
        let rs = r.resolve(&dns_name!("www.example.com"), RecordType::A).unwrap();
        assert!(rs.iter().any(|rec| rec.rdata == RData::A(ip("192.0.2.80"))));
        assert!(rs.iter().any(|rec| matches!(rec.rdata, RData::Cname(_))));
    }

    #[test]
    fn cross_zone_cname_restarts_from_root() {
        let r = resolver();
        let rs = r.resolve(&dns_name!("ext.example.com"), RecordType::A).unwrap();
        assert!(rs.iter().any(|rec| rec.rdata == RData::A(ip("192.0.2.99"))));
    }

    #[test]
    fn nxdomain_propagates() {
        let r = resolver();
        assert!(matches!(
            r.resolve(&dns_name!("missing.example.com"), RecordType::A),
            Err(ResolveError::NxDomain(_))
        ));
    }

    #[test]
    fn nodata_is_empty() {
        let r = resolver();
        let rs = r.resolve(&dns_name!("mx.example.com"), RecordType::Mx).unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn glueless_referral_is_an_error() {
        let mut ms = tree();
        // Strip the glue from the root zone.
        let root_auth = ms.servers.get_mut(&ip("10.0.0.1")).unwrap();
        let z = root_auth.zone_mut(&Name::root()).unwrap();
        z.remove(&dns_name!("a.gtld.net"), RecordType::A);
        let r = IterativeResolver::new(ms, vec![ip("10.0.0.1")]);
        assert!(matches!(
            r.resolve(&dns_name!("example.com"), RecordType::Mx),
            Err(ResolveError::Network(_))
        ));
    }
}
