//! Property-based tests: arbitrary messages survive an encode/decode round
//! trip, names compress losslessly, the decoder is total on arbitrary
//! bytes, and decoding is *stable*: re-encoding a decoded message and
//! decoding again yields the same message.
//!
//! The generators are hand-rolled over [`mx_rng`] (the build is offline,
//! so no `proptest`); every case derives from an explicit seed, so a
//! failure report's case number reproduces exactly.

use std::net::Ipv4Addr;

use mx_dns::{
    dns_name, Message, Name, RData, Record, RecordType, WireReader, WireWriter, Zone, ZoneLookup,
};
use mx_rng::SmallRng;

const CASES: u64 = 256;

/// `[a-z]([a-z0-9_-]{0,10}[a-z0-9])?` — a valid DNS label.
fn gen_label(rng: &mut SmallRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const MID: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    const LAST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    let mut s = String::new();
    s.push(*rng.choose(FIRST).unwrap() as char);
    if rng.gen_bool(0.8) {
        for _ in 0..rng.gen_range(0..10usize) {
            s.push(*rng.choose(MID).unwrap() as char);
        }
        s.push(*rng.choose(LAST).unwrap() as char);
    }
    s
}

fn gen_name(rng: &mut SmallRng) -> Name {
    let n = rng.gen_range(0..5usize);
    let labels: Vec<String> = (0..n).map(|_| gen_label(rng)).collect();
    Name::parse(&labels.join(".")).expect("generated labels are valid")
}

fn gen_ipv4(rng: &mut SmallRng) -> Ipv4Addr {
    Ipv4Addr::from(rng.next_u32())
}

fn gen_printable(rng: &mut SmallRng, max: usize) -> String {
    let n = rng.gen_range(0..=max);
    (0..n)
        .map(|_| char::from(rng.gen_range(0x20u8..=0x7E)))
        .collect()
}

fn gen_rdata(rng: &mut SmallRng) -> RData {
    match rng.gen_range(0..8u32) {
        0 => RData::A(gen_ipv4(rng)),
        1 => {
            let hi = (rng.next_u64() as u128) << 64;
            RData::Aaaa((hi | rng.next_u64() as u128).into())
        }
        2 => RData::Ns(gen_name(rng)),
        3 => RData::Cname(gen_name(rng)),
        4 => RData::Ptr(gen_name(rng)),
        5 => RData::Mx {
            preference: rng.gen_range(0..=u16::MAX),
            exchange: gen_name(rng),
        },
        6 => {
            let n = rng.gen_range(1..3usize);
            RData::Txt((0..n).map(|_| gen_printable(rng, 40)).collect())
        }
        // Range chosen to avoid codes the decoder parses structurally.
        _ => RData::Opaque {
            rtype: rng.gen_range(100u16..200),
            data: (0..rng.gen_range(0..32usize))
                .map(|_| (rng.next_u32() & 0xFF) as u8)
                .collect(),
        },
    }
}

fn gen_record(rng: &mut SmallRng) -> Record {
    Record::new(gen_name(rng), rng.gen_range(0u32..1_000_000), gen_rdata(rng))
}

fn gen_message(rng: &mut SmallRng) -> Message {
    let mut m = Message::query(rng.gen_range(0..=u16::MAX), gen_name(rng), RecordType::Mx);
    m.header.qr = rng.gen_bool(0.5);
    m.header.aa = rng.gen_bool(0.5);
    m.answers = (0..rng.gen_range(0..6usize)).map(|_| gen_record(rng)).collect();
    m.authorities = (0..rng.gen_range(0..3usize)).map(|_| gen_record(rng)).collect();
    m.additionals = (0..rng.gen_range(0..3usize)).map(|_| gen_record(rng)).collect();
    m
}

/// Encode → decode is the identity on messages.
#[test]
fn message_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0001 ^ case);
        let m = gen_message(&mut rng);
        let bytes = m.encode().unwrap();
        let m2 = Message::decode(&bytes).unwrap();
        assert_eq!(m, m2, "case {case}");
    }
}

/// A sequence of names, encoded with compression into one buffer,
/// decodes back to the same sequence.
#[test]
fn name_sequence_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0002 ^ case);
        let names: Vec<Name> = (0..rng.gen_range(1..12usize))
            .map(|_| gen_name(&mut rng))
            .collect();
        let mut w = WireWriter::new();
        for n in &names {
            w.put_name(n).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for n in &names {
            assert_eq!(&r.get_name().unwrap(), n, "case {case}");
        }
        assert_eq!(r.remaining(), 0, "case {case}");
    }
}

/// Compression never grows the encoding beyond the uncompressed form.
#[test]
fn compression_never_expands() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0003 ^ case);
        let names: Vec<Name> = (0..rng.gen_range(1..10usize))
            .map(|_| gen_name(&mut rng))
            .collect();
        let mut wc = WireWriter::new();
        let mut wu = WireWriter::new();
        for n in &names {
            wc.put_name(n).unwrap();
            wu.put_name_uncompressed(n).unwrap();
        }
        assert!(wc.len() <= wu.len(), "case {case}");
    }
}

/// The message decoder is total: arbitrary bytes never panic.
#[test]
fn decoder_is_total() {
    for case in 0..4 * CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0004 ^ case);
        let len = rng.gen_range(0..200usize);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u32() & 0xFF) as u8).collect();
        let _ = Message::decode(&bytes);
    }
}

/// The name decoder is total on arbitrary bytes, including bytes that
/// start with valid-looking label lengths and compression pointers.
#[test]
fn name_decoder_is_total() {
    for case in 0..4 * CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0005 ^ case);
        let len = rng.gen_range(0..80usize);
        let mut bytes: Vec<u8> = (0..len).map(|_| (rng.next_u32() & 0xFF) as u8).collect();
        // Half the cases: bias the first byte towards plausible labels
        // or pointer tags so the parser gets deeper before failing.
        if rng.gen_bool(0.5) && !bytes.is_empty() {
            bytes[0] = if rng.gen_bool(0.5) {
                rng.gen_range(1u8..=63)
            } else {
                0xC0 | rng.gen_range(0u8..=0x3F)
            };
        }
        let mut r = WireReader::new(&bytes);
        let _ = r.get_name();
    }
}

/// Decode is *stable*: when arbitrary bytes do decode, re-encoding the
/// result and decoding again is a fixed point (`decode ∘ encode ∘ decode
/// = decode`). This is the canonicalization property the measurement
/// pipeline relies on when it stores and replays observed messages.
#[test]
fn decode_encode_decode_is_stable() {
    let mut decoded_ok = 0u32;
    for case in 0..16 * CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0006 ^ case);
        // Mix pure-random bytes with mutated valid encodings so a useful
        // fraction decodes successfully.
        let bytes: Vec<u8> = if rng.gen_bool(0.5) {
            let m = gen_message(&mut rng);
            let mut b = m.encode().unwrap();
            // Flip up to 3 bytes.
            for _ in 0..rng.gen_range(0..4u32) {
                if b.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..b.len());
                b[i] = (rng.next_u32() & 0xFF) as u8;
            }
            b
        } else {
            (0..rng.gen_range(0..120usize))
                .map(|_| (rng.next_u32() & 0xFF) as u8)
                .collect()
        };
        if let Ok(m1) = Message::decode(&bytes) {
            decoded_ok += 1;
            let re = m1.encode().unwrap();
            let m2 = Message::decode(&re).unwrap();
            assert_eq!(m1, m2, "case {case}: decode∘encode∘decode not stable");
        }
    }
    assert!(decoded_ok > 100, "only {decoded_ok} cases decoded; generator too weak");
}

/// Zone lookups: any added (name, A) pair is found, and unknown
/// siblings under the same zone yield NXDOMAIN or NODATA, never a panic.
#[test]
fn zone_lookup_total() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0007 ^ case);
        let labels: Vec<String> = (0..rng.gen_range(1..20usize))
            .map(|_| gen_label(&mut rng))
            .collect();
        let probe = gen_label(&mut rng);
        let origin = dns_name!("zone.test");
        let mut z = Zone::new(origin.clone());
        for l in &labels {
            let name = origin.child(l).unwrap();
            z.add_rr(name, 300, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        }
        for l in &labels {
            let name = origin.child(l).unwrap();
            match z.lookup(&name, RecordType::A) {
                ZoneLookup::Answer(rs) => assert!(!rs.is_empty(), "case {case}"),
                other => panic!("case {case}: {other:?}"),
            }
        }
        let r = z.lookup(&origin.child(&probe).unwrap(), RecordType::A);
        assert!(
            matches!(r, ZoneLookup::Answer(_) | ZoneLookup::NxDomain | ZoneLookup::NoData),
            "case {case}: {r:?}"
        );
    }
}

/// Any generated zone survives a master-file round trip.
#[test]
fn master_file_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD25_0008 ^ case);
        let origin = dns_name!("prop.example");
        let mut zone = Zone::new(origin.clone());
        for _ in 0..rng.gen_range(0..15usize) {
            let label = gen_label(&mut rng);
            let ttl = rng.gen_range(60u32..86_400);
            let rdata = match rng.gen_range(0..4u32) {
                0 => RData::A(gen_ipv4(&mut rng)),
                1 => RData::Mx {
                    preference: rng.gen_range(0u16..100),
                    exchange: Name::parse(&format!("{}.prop.example", gen_label(&mut rng)))
                        .unwrap(),
                },
                2 => {
                    // Printable ASCII without '"' (master-file quoting).
                    let s: String = gen_printable(&mut rng, 30).replace('"', "x");
                    RData::Txt(vec![s])
                }
                _ => RData::Cname(
                    Name::parse(&format!("{}.prop.example", gen_label(&mut rng))).unwrap(),
                ),
            };
            zone.add_rr(origin.child(&label).unwrap(), ttl, rdata);
        }
        let text = mx_dns::to_master(&zone);
        let reparsed = mx_dns::parse_zone(&text).unwrap();
        assert_eq!(reparsed.origin(), zone.origin(), "case {case}");
        let norm = |z: &Zone| {
            let mut v: Vec<String> = z.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&reparsed), norm(&zone), "case {case}");
    }
}
