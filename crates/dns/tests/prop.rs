//! Property-based tests: arbitrary messages survive an encode/decode round
//! trip, names compress losslessly, and the zone lookup invariants hold.

use std::net::Ipv4Addr;

use mx_dns::{
    dns_name, Message, Name, RData, Record, RecordType, WireReader, WireWriter, Zone, ZoneLookup,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z]([a-z0-9_-]{0,10}[a-z0-9])?".prop_map(|s| s)
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(arb_label(), 0..5)
        .prop_map(|ls| Name::parse(&ls.join(".")).expect("generated labels are valid"))
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        arb_ipv4().prop_map(RData::A),
        any::<u128>().prop_map(|v| RData::Aaaa(v.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        prop::collection::vec("[ -~]{0,40}", 1..3).prop_map(RData::Txt),
        // Range chosen to avoid codes the decoder parses structurally.
        (100u16..200, prop::collection::vec(any::<u8>(), 0..32)).prop_map(|(rtype, data)| {
            RData::Opaque { rtype, data }
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), 0u32..1_000_000, arb_rdata())
        .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        prop::collection::vec(arb_record(), 0..6),
        prop::collection::vec(arb_record(), 0..3),
        prop::collection::vec(arb_record(), 0..3),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(id, qname, ans, auth, add, qr, aa)| {
            let mut m = Message::query(id, qname, RecordType::Mx);
            m.header.qr = qr;
            m.header.aa = aa;
            m.answers = ans;
            m.authorities = auth;
            m.additionals = add;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity on messages.
    #[test]
    fn message_roundtrip(m in arb_message()) {
        let bytes = m.encode().unwrap();
        let m2 = Message::decode(&bytes).unwrap();
        prop_assert_eq!(m, m2);
    }

    /// A sequence of names, encoded with compression into one buffer,
    /// decodes back to the same sequence.
    #[test]
    fn name_sequence_roundtrip(names in prop::collection::vec(arb_name(), 1..12)) {
        let mut w = WireWriter::new();
        for n in &names {
            w.put_name(n).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for n in &names {
            prop_assert_eq!(&r.get_name().unwrap(), n);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Compression never grows the encoding beyond the uncompressed form.
    #[test]
    fn compression_never_expands(names in prop::collection::vec(arb_name(), 1..10)) {
        let mut wc = WireWriter::new();
        let mut wu = WireWriter::new();
        for n in &names {
            wc.put_name(n).unwrap();
            wu.put_name_uncompressed(n).unwrap();
        }
        prop_assert!(wc.len() <= wu.len());
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::decode(&bytes);
    }

    /// Zone lookups: any added (name, A) pair is found, and unknown
    /// siblings under the same zone yield NXDOMAIN or NODATA, never a panic.
    #[test]
    fn zone_lookup_total(labels in prop::collection::vec(arb_label(), 1..20),
                         probe in arb_label()) {
        let origin = dns_name!("zone.test");
        let mut z = Zone::new(origin.clone());
        for l in &labels {
            let name = origin.child(l).unwrap();
            z.add_rr(name, 300, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        }
        for l in &labels {
            let name = origin.child(l).unwrap();
            match z.lookup(&name, RecordType::A) {
                ZoneLookup::Answer(rs) => prop_assert!(!rs.is_empty()),
                other => return Err(TestCaseError::fail(format!("{other:?}"))),
            }
        }
        let r = z.lookup(&origin.child(&probe).unwrap(), RecordType::A);
        prop_assert!(matches!(
            r,
            ZoneLookup::Answer(_) | ZoneLookup::NxDomain | ZoneLookup::NoData
        ));
    }
}

fn arb_zone() -> impl Strategy<Value = mx_dns::Zone> {
    let origin = dns_name!("prop.example");
    prop::collection::vec(
        (
            arb_label(),
            prop_oneof![
                arb_ipv4().prop_map(RData::A),
                (0u16..100, arb_label()).prop_map(|(preference, l)| RData::Mx {
                    preference,
                    exchange: Name::parse(&format!("{l}.prop.example")).unwrap(),
                }),
                "[ -!#-~]{0,30}".prop_map(|s| RData::Txt(vec![s])),
                arb_label().prop_map(|l| RData::Cname(
                    Name::parse(&format!("{l}.prop.example")).unwrap()
                )),
            ],
            60u32..86_400,
        ),
        0..15,
    )
    .prop_map(move |records| {
        let mut z = mx_dns::Zone::new(origin.clone());
        for (label, rdata, ttl) in records {
            let name = origin.child(&label).unwrap();
            z.add_rr(name, ttl, rdata);
        }
        z
    })
}

proptest! {
    /// Any generated zone survives a master-file round trip.
    #[test]
    fn master_file_roundtrip(zone in arb_zone()) {
        let text = mx_dns::to_master(&zone);
        let reparsed = mx_dns::parse_zone(&text).unwrap();
        prop_assert_eq!(reparsed.origin(), zone.origin());
        let norm = |z: &mx_dns::Zone| {
            let mut v: Vec<String> = z.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(norm(&reparsed), norm(&zone));
    }
}
