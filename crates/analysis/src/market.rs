//! Figure 5 / Table 6: market shares of companies, with Alexa rank strata
//! and the federal/non-federal `.gov` split; Table 5: provider-ID listing.

use std::collections::{BTreeSet, HashMap};

use mx_corpus::DomainRecord;
use mx_dns::Name;
use mx_infer::{CompanyMap, InferenceResult, ProviderId};

/// One company's share.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketShareRow {
    /// Company display name (or bare provider ID for the long tail).
    pub company: String,
    /// Credited domain weight (fractional because of split credit).
    pub weight: f64,
    /// Share of the population (weight / total domains).
    pub share: f64,
}

/// Market-share summary over a set of domains.
#[derive(Debug, Clone, Default)]
pub struct MarketShare {
    /// Rows sorted by weight, descending.
    pub rows: Vec<MarketShareRow>,
    /// Domains the shares are computed over.
    pub total_domains: usize,
}

impl MarketShare {
    /// The top `n` rows.
    pub fn top(&self, n: usize) -> &[MarketShareRow] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// Share of one company (0 when absent).
    pub fn share_of(&self, company: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.company == company)
            .map(|r| r.share)
            .unwrap_or(0.0)
    }

    /// Combined share of the top `n` companies (Figure 6's "Top5 Total").
    pub fn top_share(&self, n: usize) -> f64 {
        self.top(n).iter().map(|r| r.share).sum()
    }
}

/// Compute company market shares over (optionally a subset of) the domains
/// in an inference result.
pub fn market_share(
    result: &InferenceResult,
    companies: &CompanyMap,
    filter: Option<&dyn Fn(&Name) -> bool>,
) -> MarketShare {
    // Accumulate over domains in dotted-name byte order: f64 addition is
    // order-sensitive, and this order is shared with the store-backed
    // path, so both produce bit-identical sums (HashMap order is not
    // even stable run to run).
    let mut entries: Vec<(&Name, &mx_infer::DomainAssignment)> = result.domains.iter().collect();
    entries.sort_by_cached_key(|(name, _)| name.to_dotted());
    let mut weights: HashMap<String, f64> = HashMap::new();
    let mut total = 0usize;
    for (name, a) in entries {
        if let Some(f) = filter {
            if !f(name) {
                continue;
            }
        }
        total += 1;
        for s in &a.shares {
            let company = companies.company_or_id(&s.provider).to_string();
            *weights.entry(company).or_insert(0.0) += s.weight;
        }
    }
    let mut rows: Vec<MarketShareRow> = weights
        .into_iter()
        .map(|(company, weight)| MarketShareRow {
            company,
            weight,
            share: weight / total.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.company.cmp(&b.company)));
    MarketShare {
        rows,
        total_domains: total,
    }
}

/// Count of self-hosted domains (provider ID equals the domain's
/// registered domain, §5.2.1).
pub fn self_hosted_count(result: &InferenceResult, psl: &mx_psl::PublicSuffixList) -> usize {
    result
        .domains
        .values()
        .filter(|a| a.has_smtp && mx_infer::domainid::is_self_hosted(a, psl))
        .count()
}

/// Build a rank filter for Figure 5's Alexa strata (`rank <= cutoff`).
pub fn rank_filter(
    records: &[DomainRecord],
    cutoff: u32,
) -> impl Fn(&Name) -> bool + '_ {
    let set: BTreeSet<Name> = records
        .iter()
        .filter(|r| r.rank.is_some_and(|rk| rk <= cutoff))
        .map(|r| r.name.clone())
        .collect();
    move |n: &Name| set.contains(n)
}

/// Build a federal/non-federal filter for `.gov` (Figure 5 bottom row).
pub fn federal_filter(
    records: &[DomainRecord],
    federal: bool,
) -> impl Fn(&Name) -> bool + '_ {
    let set: BTreeSet<Name> = records
        .iter()
        .filter(|r| r.federal == federal)
        .map(|r| r.name.clone())
        .collect();
    move |n: &Name| set.contains(n)
}

/// Table 5: provider IDs observed for a company, with the ASNs their
/// infrastructure answered from.
pub fn provider_ids_of_company(
    result: &InferenceResult,
    obs: &mx_infer::ObservationSet,
    companies: &CompanyMap,
    company: &str,
) -> Vec<mx_infer::ProviderIdRow> {
    let mut rows: HashMap<ProviderId, BTreeSet<u32>> = HashMap::new();
    for a in result.mx_assignments.values() {
        if companies.company_of(&a.provider) != Some(company) {
            continue;
        }
        let entry = rows.entry(a.provider.clone()).or_default();
        for ip in &a.addrs {
            if let Some(asn) = obs.ip(*ip).and_then(|o| o.asn) {
                entry.insert(asn);
            }
        }
    }
    let mut out: Vec<mx_infer::ProviderIdRow> = rows
        .into_iter()
        .map(|(provider_id, asns)| mx_infer::ProviderIdRow { provider_id, asns })
        .collect();
    out.sort_by(|a, b| a.provider_id.cmp(&b.provider_id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
    use mx_infer::Pipeline;

    fn run() -> (Study, InferenceResult, mx_infer::ObservationSet) {
        let study = Study::generate(ScenarioConfig::small(21));
        let world = study.world_at(8);
        let data = crate::observe::observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).unwrap().clone();
        let pipeline = Pipeline::priority_based(provider_knowledge(10));
        let result = pipeline.run(&obs);
        (study, result, obs)
    }

    #[test]
    fn google_tops_alexa() {
        let (_, result, _) = run();
        let shares = market_share(&result, &company_map(), None);
        assert_eq!(shares.total_domains, 800);
        assert_eq!(shares.rows[0].company, "Google");
        assert!(shares.share_of("Google") > 0.18);
        assert!(shares.share_of("Microsoft") > 0.05);
        assert!(shares.top_share(5) > 0.3);
    }

    #[test]
    fn rank_strata_filter() {
        let (study, result, _) = run();
        let records = &study.populations[0].domains;
        let cutoff = 10_000;
        let expected = records
            .iter()
            .filter(|r| r.rank.is_some_and(|rk| rk <= cutoff))
            .count();
        let f = rank_filter(records, cutoff);
        let shares = market_share(&result, &company_map(), Some(&f));
        assert_eq!(shares.total_domains, expected);
        assert!(expected > 0 && expected < records.len());
    }

    #[test]
    fn table5_lists_provider_ids() {
        let (_, result, obs) = run();
        let rows = provider_ids_of_company(&result, &obs, &company_map(), "Microsoft");
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                ["outlook.com", "office365.us", "hotmail.com"]
                    .contains(&r.provider_id.as_str()),
                "{:?}",
                r.provider_id
            );
            assert!(r.asns.contains(&8075), "Microsoft AS present: {:?}", r.asns);
        }
    }

    #[test]
    fn self_hosted_detection_runs() {
        let (_, result, _) = run();
        let psl = mx_psl::PublicSuffixList::builtin();
        let n = self_hosted_count(&result, &psl);
        // Alexa 2021: ~7.9% self-hosted (plus VPS/fake corrected cases).
        let frac = n as f64 / 800.0;
        assert!((0.02..0.20).contains(&frac), "self-hosted fraction {frac}");
    }
}
