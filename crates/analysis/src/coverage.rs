//! Table 4: the data-availability breakdown of a snapshot.

use mx_infer::{DomainObservation, ObservationSet, ScanStatus};

/// The mutually-exclusive availability categories of Table 4, applied in
/// order: a domain lands in the first category that describes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageCategory {
    /// No MX target resolved to an address.
    NoMxIp,
    /// Addresses exist, but none appears in the scan data at all.
    NoCensys,
    /// Scanned, but no port-25 application data anywhere.
    NoPort25,
    /// SMTP data, but no valid (browser-trusted) certificate anywhere.
    NoValidCert,
    /// A valid certificate, but no valid Banner/EHLO-derived FQDN pair.
    NoValidBanner,
    /// Everything available.
    Complete,
}

impl CoverageCategory {
    /// All six, in Table 4's row order.
    pub const ALL: [CoverageCategory; 6] = [
        CoverageCategory::NoMxIp,
        CoverageCategory::NoCensys,
        CoverageCategory::NoPort25,
        CoverageCategory::NoValidCert,
        CoverageCategory::NoValidBanner,
        CoverageCategory::Complete,
    ];

    /// Row label as printed in Table 4.
    pub fn label(self) -> &'static str {
        match self {
            CoverageCategory::NoMxIp => "No MX IP",
            CoverageCategory::NoCensys => "No Censys",
            CoverageCategory::NoPort25 => "No Port 25 Data",
            CoverageCategory::NoValidCert => "No Valid SSL Cert.",
            CoverageCategory::NoValidBanner => "No Valid Banner/EHLO",
            CoverageCategory::Complete => "No Missing Data",
        }
    }
}

/// Acquisition-resilience counts behind the availability categories:
/// how much of the coverage is owed to retries, and how the uncovered
/// remainder splits between "never attempted" and "attempted but the
/// retry budget ran out".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceCounts {
    /// IPs whose data was captured only after at least one failed attempt.
    pub recovered_ips: usize,
    /// IPs that exhausted the retry budget without capturing anything.
    pub exhausted_ips: usize,
    /// IPs never attempted (owner opt-out / persistent block).
    pub never_attempted_ips: usize,
    /// Total scan attempts spent on this dataset's IPs.
    pub scan_attempts: u64,
    /// Domains whose DNS measurement needed retries but fully recovered.
    pub dns_recovered: usize,
    /// Domains whose DNS measurement failed despite the retry budget.
    pub dns_exhausted: usize,
}

impl ResilienceCounts {
    /// Derive the counts from an observation set's acquisition report.
    pub fn from_observations(obs: &ObservationSet) -> Self {
        let acq = &obs.acquisition;
        ResilienceCounts {
            recovered_ips: acq.recovered_ips(),
            exhausted_ips: acq.exhausted_ips(),
            never_attempted_ips: acq.blocked_ips(),
            scan_attempts: acq.total_attempts(),
            dns_recovered: acq
                .domains
                .values()
                .filter(|d| d.retries > 0 && !d.exhausted)
                .count(),
            dns_exhausted: acq.domains.values().filter(|d| d.exhausted).count(),
        }
    }
}

/// Per-category counts for one dataset snapshot.
#[derive(Debug, Clone, Default)]
pub struct CoverageBreakdown {
    /// Per-category counts, in [`CoverageCategory::ALL`] order.
    pub counts: Vec<(CoverageCategory, usize)>,
    /// Total domains classified.
    pub total: usize,
    /// The acquisition-resilience split behind the categories.
    pub resilience: ResilienceCounts,
}

impl CoverageBreakdown {
    /// Count of one category.
    pub fn count(&self, c: CoverageCategory) -> usize {
        self.counts
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// Classify one domain.
pub fn classify(obs: &ObservationSet, d: &DomainObservation) -> CoverageCategory {
    let addrs: Vec<_> = d
        .mx
        .targets()
        .iter()
        .flat_map(|t| t.addrs.iter().copied())
        .collect();
    if addrs.is_empty() {
        return CoverageCategory::NoMxIp;
    }
    let ip_obs: Vec<_> = addrs.iter().filter_map(|a| obs.ip(*a)).collect();
    if ip_obs
        .iter()
        .all(|o| o.scan == ScanStatus::NotCovered)
    {
        return CoverageCategory::NoCensys;
    }
    if !ip_obs.iter().any(|o| matches!(o.scan, ScanStatus::Smtp(_))) {
        return CoverageCategory::NoPort25;
    }
    if !ip_obs.iter().any(|o| o.cert_valid) {
        return CoverageCategory::NoValidCert;
    }
    let banner_ok = ip_obs.iter().any(|o| {
        o.scan.data().is_some_and(|data| {
            let b = data.banner_host().is_some_and(mx_smtp::valid_fqdn);
            let e = data.ehlo_host().is_some_and(mx_smtp::valid_fqdn);
            b && e
        })
    });
    if !banner_ok {
        return CoverageCategory::NoValidBanner;
    }
    CoverageCategory::Complete
}

/// Classify every domain of a dataset snapshot.
pub fn breakdown(obs: &ObservationSet) -> CoverageBreakdown {
    let _obs_run = mx_obs::stage!(mx_obs::names::STAGE_REPORT_COVERAGE).enter();
    let mut counts: Vec<(CoverageCategory, usize)> = CoverageCategory::ALL
        .iter()
        .map(|c| (*c, 0usize))
        .collect();
    for d in &obs.domains {
        let c = classify(obs, d);
        let slot = counts
            .iter_mut()
            .find(|(cc, _)| *cc == c)
            .expect("all categories present");
        slot.1 += 1;
    }
    CoverageBreakdown {
        counts,
        total: obs.domains.len(),
        resilience: ResilienceCounts::from_observations(obs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::{Dataset, ScenarioConfig, Study};

    #[test]
    fn categories_cover_small_world() {
        let study = Study::generate(ScenarioConfig::small(11));
        let world = study.world_at(8);
        let data = crate::observe::observe_world(&world);
        let alexa = data.dataset(Dataset::Alexa).unwrap();
        let b = breakdown(alexa);
        assert_eq!(b.total, 800);
        let sum: usize = b.counts.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, b.total, "categories are a partition");
        assert!(b.count(CoverageCategory::Complete) > 300, "complete majority");
        assert!(b.count(CoverageCategory::NoMxIp) > 0, "dangling MX present");
        assert!(
            b.count(CoverageCategory::NoValidCert) > 20,
            "no-cert bucket populated: {}",
            b.count(CoverageCategory::NoValidCert)
        );
        assert!(b.count(CoverageCategory::NoPort25) > 0, "no-smtp bucket");
        // The resilience split behind "No Censys": some IPs were never
        // attempted (opt-out), some exhausted their retry budget, and
        // some of the covered ones owe their data to retries.
        let r = b.resilience;
        assert!(r.never_attempted_ips > 0, "never-attempted bucket empty");
        assert!(r.exhausted_ips > 0, "exhausted bucket empty");
        assert!(r.recovered_ips > 0, "recovered bucket empty");
        assert!(
            r.scan_attempts > (r.recovered_ips + r.exhausted_ips) as u64,
            "attempt accounting inconsistent"
        );
        // The default worldgen plan injects no DNS faults, so nothing
        // needs (or gets) a retry; the dangling-MX domains still show up
        // as terminal DNS degradation (their exchange never resolves).
        assert_eq!(r.dns_recovered, 0);
        assert!(r.dns_exhausted > 0, "dangling exchanges unaccounted");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(CoverageCategory::NoMxIp.label(), "No MX IP");
        assert_eq!(CoverageCategory::Complete.label(), "No Missing Data");
    }
}
