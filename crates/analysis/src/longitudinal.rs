//! Figure 6: market-share time series, 2017–2021.

use mx_corpus::{company_map, provider_knowledge, Dataset, Study};
use mx_infer::{CompanyMap, Pipeline, ProviderKnowledge};
use mx_psl::PublicSuffixList;

use crate::market;
use crate::observe;

/// One point of one company's series.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Snapshot label (`2017-06`).
    pub date: String,
    /// Credited domain weight.
    pub weight: f64,
    /// Share of the dataset population at that snapshot.
    pub share: f64,
}

/// The longitudinal series of one dataset (Figure 6 column).
#[derive(Debug, Clone)]
pub struct LongitudinalSeries {
    /// The corpus the series covers.
    pub dataset: Dataset,
    /// company -> series over snapshots.
    pub companies: Vec<(String, Vec<SeriesPoint>)>,
    /// Self-hosted domain counts per snapshot.
    pub self_hosted: Vec<SeriesPoint>,
    /// Combined share of the five largest (at the last snapshot) companies.
    pub top5_total: Vec<SeriesPoint>,
    /// Snapshot labels, in order.
    pub dates: Vec<String>,
}

impl LongitudinalSeries {
    /// The series of one company, if tracked.
    pub fn company(&self, name: &str) -> Option<&[SeriesPoint]> {
        self.companies
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_slice())
    }
}

/// The companies the paper's Figure 6 highlights per panel.
pub fn security_companies() -> [&'static str; 5] {
    ["ProofPoint", "Mimecast", "Barracuda", "Cisco", "AppRiver"]
}

/// Figure 6c/f/i's web-hosting companies.
pub fn hosting_companies() -> [&'static str; 5] {
    ["GoDaddy", "OVH", "UnitedInternet", "Ukraine.ua", "NameCheap"]
}

/// Run the full study for one dataset across all its snapshots, tracking
/// `tracked` companies (plus self-hosted and top-5 totals).
pub fn run_series(
    study: &Study,
    dataset: Dataset,
    tracked: &[&str],
    knowledge: &ProviderKnowledge,
    companies: &CompanyMap,
) -> LongitudinalSeries {
    let psl = PublicSuffixList::builtin();
    let pipeline = Pipeline::priority_based(knowledge.clone());
    let mut series: Vec<(String, Vec<SeriesPoint>)> = tracked
        .iter()
        .map(|c| (c.to_string(), Vec::new()))
        .collect();
    let mut self_hosted = Vec::new();
    let mut top5_total = Vec::new();
    let mut dates = Vec::new();

    for k in 0..mx_corpus::SNAPSHOT_DATES.len() {
        let world = study.world_at(k);
        let data = observe::observe_world(&world);
        let Some(obs) = data.dataset(dataset) else {
            continue; // .gov before June 2018
        };
        let result = pipeline.run(obs);
        let shares = market::market_share(&result, companies, None);
        let date = world.date.ym_label();
        dates.push(date.clone());
        for (name, points) in &mut series {
            let row = shares.rows.iter().find(|r| &r.company == name);
            points.push(SeriesPoint {
                date: date.clone(),
                weight: row.map(|r| r.weight).unwrap_or(0.0),
                share: row.map(|r| r.share).unwrap_or(0.0),
            });
        }
        let sh = market::self_hosted_count(&result, &psl);
        self_hosted.push(SeriesPoint {
            date: date.clone(),
            weight: sh as f64,
            share: sh as f64 / shares.total_domains.max(1) as f64,
        });
        top5_total.push(SeriesPoint {
            date,
            weight: shares.top(5).iter().map(|r| r.weight).sum(),
            share: shares.top_share(5),
        });
    }

    LongitudinalSeries {
        dataset,
        companies: series,
        self_hosted,
        top5_total,
        dates,
    }
}

/// Convenience: run the Figure 6 top-companies panel for a dataset with the
/// default knowledge/company map.
pub fn default_series(study: &Study, dataset: Dataset, tracked: &[&str]) -> LongitudinalSeries {
    run_series(
        study,
        dataset,
        tracked,
        &provider_knowledge(10),
        &company_map(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::ScenarioConfig;

    #[test]
    fn alexa_trends_match_figure6() {
        let study = Study::generate(ScenarioConfig::small(41));
        let s = default_series(&study, Dataset::Alexa, &["Google", "Microsoft"]);
        assert_eq!(s.dates.len(), 9);
        let google = s.company("Google").unwrap();
        assert_eq!(google.len(), 9);
        // Growth, allowing sampling noise at this small scale.
        assert!(
            google[8].share > google[0].share - 0.01,
            "google {} -> {}",
            google[0].share,
            google[8].share
        );
        // Self-hosted declines.
        let sh = &s.self_hosted;
        assert!(
            sh[8].share < sh[0].share,
            "self-hosted {} -> {}",
            sh[0].share,
            sh[8].share
        );
        // Top-5 total grows (consolidation).
        assert!(s.top5_total[8].share > s.top5_total[0].share - 0.01);
    }

    #[test]
    fn gov_series_has_seven_points() {
        let study = Study::generate(ScenarioConfig::small(41));
        let s = default_series(&study, Dataset::Gov, &["Microsoft"]);
        assert_eq!(s.dates.len(), 7);
        assert_eq!(s.dates[0], "2018-06");
    }
}
