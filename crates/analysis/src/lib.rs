//! # mx-analysis — the study's analyses
//!
//! Everything §4–§5 of the paper computes, over the simulated Internet:
//!
//! * [`observe`] — data gathering (§4.3): run the OpenINTEL-style DNS
//!   measurement and the Censys-style port-25 scan over a materialised
//!   [`mx_corpus::World`], join them with prefix2as data and certificate
//!   validation into per-dataset [`mx_infer::ObservationSet`]s;
//! * [`accuracy`] — §3.3 / Figure 4: sample labelled domains, run all four
//!   inference strategies, score them against ground truth;
//! * [`coverage`] — Table 4: the data-availability breakdown;
//! * [`market`] — Figure 5 / Tables 5–6: company market shares, Alexa rank
//!   strata, federal vs non-federal `.gov`, provider-ID listings;
//! * [`longitudinal`] — Figure 6: per-snapshot market-share series for top
//!   companies, e-mail security companies, web-hosting companies and
//!   self-hosted domains;
//! * [`churn`] — Figure 7: category flows between the first and last
//!   snapshot;
//! * [`country`] — Figure 8: provider preference by ccTLD;
//! * [`report`] — plain-text table/series rendering shared by the
//!   experiment binaries;
//! * [`store`] — persist per-snapshot results into the `mx-store`
//!   snapshot store and recompute the market/longitudinal/churn tables
//!   from the bytes alone.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod churn;
pub mod country;
pub mod coverage;
pub mod longitudinal;
pub mod market;
pub mod observe;
pub mod report;
pub mod store;

pub use accuracy::{AccuracyCell, AccuracyReport, SampleKind};
pub use churn::{ChurnCategory, ChurnMatrix};
pub use country::CountryMatrix;
pub use coverage::{CoverageBreakdown, CoverageCategory, ResilienceCounts};
pub use longitudinal::{LongitudinalSeries, SeriesPoint};
pub use market::{MarketShare, MarketShareRow};
pub use observe::{observe_world, observe_world_with, ObserveConfig, SnapshotData};
pub use report::{pct, Table};
pub use store::{
    churn_from_store, churn_from_store_merged, domains_of_provider, domains_of_provider_merged,
    market_share_at, market_share_merged, self_hosted_at, self_hosted_merged, series_from_store,
    write_study_store, write_study_store_v1, StudyStoreExt,
};
