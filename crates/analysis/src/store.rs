//! Store-backed analyses: persist a study once, answer the paper's
//! questions from the bytes.
//!
//! [`write_study_store`] runs the pipeline over every active snapshot
//! of one dataset and serializes the per-epoch results into an
//! `mx-store` buffer; the query half ([`market_share_at`],
//! [`series_from_store`], [`churn_from_store`], …) recomputes the
//! market/longitudinal/churn tables from a [`StoreReader`] without the
//! original observations.
//!
//! Each query has two implementations. The `*_merged` variants walk
//! the epoch's delta layers row by row — the only option for
//! `mx-store/1` files, and the reference semantics. The public entry
//! points dispatch on [`StoreReader::has_indexes`]: against a
//! `mx-store/2` file they answer from the index footer instead
//! (rollup + summary for market share, the per-row digest for
//! self-hosted counts and churn, postings lists for
//! [`domains_of_provider`]) and skip the merge entirely. Both paths
//! accumulate weights in the same dotted-name byte order as the
//! in-memory analyses, so all three agree — bit-for-bit on every
//! `f64` (`tests/store_gate.rs` enforces this across seeds and thread
//! counts).

use std::collections::{HashMap, HashSet};

use mx_corpus::{Dataset, Study};
use mx_infer::{result_rows, CompanyMap, Pipeline};
use mx_psl::PublicSuffixList;
use mx_store::{DigestRow, Row, StoreError, StoreReader, StoreWriter};

use crate::churn::{ChurnCategory, ChurnMatrix};
use crate::longitudinal::{LongitudinalSeries, SeriesPoint};
use crate::market::{MarketShare, MarketShareRow};
use crate::observe;

/// Run `pipeline` over every snapshot of `study` where `dataset` is
/// active and serialize the results into one store buffer. Epochs are
/// labelled with the snapshot's `YYYY-MM` date; the first active
/// snapshot becomes the base epoch, later ones deltas.
pub fn write_study_store(
    study: &Study,
    dataset: Dataset,
    pipeline: &Pipeline,
    companies: &CompanyMap,
) -> Result<Vec<u8>, StoreError> {
    let mut writer = StoreWriter::new();
    for k in 0..mx_corpus::SNAPSHOT_DATES.len() {
        let world = study.world_at(k);
        let data = observe::observe_world(&world);
        let Some(obs) = data.dataset(dataset) else {
            continue; // .gov before June 2018
        };
        let result = pipeline.run(obs);
        writer.add_epoch(
            &world.date.ym_label(),
            result_rows(&result, companies),
            &obs.acquisition,
        )?;
    }
    Ok(writer.finish())
}

/// Like [`write_study_store`], but emitting the legacy `mx-store/1`
/// format (no index footer). Exists for compatibility fixtures and for
/// benchmarking the merge paths against a file with identical epoch
/// layers; new code should use [`write_study_store`].
pub fn write_study_store_v1(
    study: &Study,
    dataset: Dataset,
    pipeline: &Pipeline,
    companies: &CompanyMap,
) -> Result<Vec<u8>, StoreError> {
    let mut writer = StoreWriter::new();
    for k in 0..mx_corpus::SNAPSHOT_DATES.len() {
        let world = study.world_at(k);
        let data = observe::observe_world(&world);
        let Some(obs) = data.dataset(dataset) else {
            continue; // .gov before June 2018
        };
        let result = pipeline.run(obs);
        writer.add_epoch(
            &world.date.ym_label(),
            result_rows(&result, companies),
            &obs.acquisition,
        )?;
    }
    Ok(writer.finish_v1())
}

/// Store persistence as a method on [`Study`].
pub trait StudyStoreExt {
    /// Serialize this study's `dataset` snapshots under `pipeline`;
    /// see [`write_study_store`].
    fn write_store(
        &self,
        dataset: Dataset,
        pipeline: &Pipeline,
        companies: &CompanyMap,
    ) -> Result<Vec<u8>, StoreError>;
}

impl StudyStoreExt for Study {
    fn write_store(
        &self,
        dataset: Dataset,
        pipeline: &Pipeline,
        companies: &CompanyMap,
    ) -> Result<Vec<u8>, StoreError> {
        write_study_store(self, dataset, pipeline, companies)
    }
}

/// A row's company credit label: the mapped company, or the provider id
/// itself for the long tail (the store bakes the company map into its
/// interned tables, so no [`CompanyMap`] is needed at query time).
fn company_or_provider<'r>(share: &mx_store::Share<'r>) -> &'r str {
    share.company.unwrap_or(share.provider)
}

/// Company market shares over one stored epoch. Equal — including
/// every `f64` bit — to `market::market_share(result, companies,
/// None)` over the in-memory result the epoch was written from.
///
/// Answered from the v2 rollup + summary sections when the file has
/// them ([`StoreReader::has_indexes`]); falls back to
/// [`market_share_merged`] on `mx-store/1` files.
pub fn market_share_at(
    reader: &StoreReader<'_>,
    epoch: usize,
) -> Result<MarketShare, StoreError> {
    if reader.has_indexes() {
        market_share_indexed(reader, epoch)
    } else {
        market_share_merged(reader, epoch)
    }
}

/// [`market_share_at`] via the merge path: walk every resolved row of
/// the epoch and accumulate credited weights. Works on any store
/// version; the reference the v2 index path is gated against.
pub fn market_share_merged(
    reader: &StoreReader<'_>,
    epoch: usize,
) -> Result<MarketShare, StoreError> {
    let mut weights: HashMap<String, f64> = HashMap::new();
    let mut total = 0usize;
    reader.for_each_row(epoch, |_name, row| {
        total += 1;
        for s in row.shares() {
            *weights
                .entry(company_or_provider(&s).to_string())
                .or_insert(0.0) += s.weight;
        }
        Ok(())
    })?;
    let mut rows: Vec<MarketShareRow> = weights
        .into_iter()
        .map(|(company, weight)| MarketShareRow {
            company,
            weight,
            share: weight / total.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.company.cmp(&b.company)));
    Ok(MarketShare {
        rows,
        total_domains: total,
    })
}

/// [`market_share_at`] off the v2 rollup table: the per-credit weight
/// sums were accumulated at write time in the same sorted-row walk the
/// merge path replays, so the `f64`s match bit for bit; only the final
/// sort happens here.
fn market_share_indexed(
    reader: &StoreReader<'_>,
    epoch: usize,
) -> Result<MarketShare, StoreError> {
    let total = usize::try_from(reader.summary_total_rows(epoch)?).unwrap_or(usize::MAX);
    let mut rows: Vec<MarketShareRow> = Vec::new();
    reader.for_each_rollup(epoch, |credit, weight| {
        rows.push(MarketShareRow {
            company: credit.to_string(),
            weight,
            share: weight / total.max(1) as f64,
        });
        Ok(())
    })?;
    rows.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.company.cmp(&b.company)));
    Ok(MarketShare {
        rows,
        total_domains: total,
    })
}

/// Count of self-hosted domains at one stored epoch (provider ID equals
/// the domain's registered domain and the domain answers SMTP). Equal
/// to `market::self_hosted_count` over the source result.
///
/// On v2 files this counts the digest's precomputed SMTP+self-hosted
/// bits (the writer ran the PSL check at encode time with the builtin
/// list, the same one every analysis path uses) and `psl` goes unused;
/// v1 files fall back to [`self_hosted_merged`].
pub fn self_hosted_at(
    reader: &StoreReader<'_>,
    epoch: usize,
    psl: &PublicSuffixList,
) -> Result<usize, StoreError> {
    if reader.has_indexes() {
        let mut count = 0usize;
        for d in reader.digest_rows(epoch)? {
            if d.has_smtp && d.self_hosted {
                count += 1;
            }
        }
        Ok(count)
    } else {
        self_hosted_merged(reader, epoch, psl)
    }
}

/// [`self_hosted_at`] via the merge path: materialize each row's name
/// and re-run the PSL registered-domain check. Works on any store
/// version.
pub fn self_hosted_merged(
    reader: &StoreReader<'_>,
    epoch: usize,
    psl: &PublicSuffixList,
) -> Result<usize, StoreError> {
    let mut count = 0usize;
    reader.for_each_row(epoch, |name, row| {
        if row.has_smtp() && row_is_self_hosted(name, row, psl) {
            count += 1;
        }
        Ok(())
    })?;
    Ok(count)
}

/// Mirror of `mx_infer::domainid::is_self_hosted` over a stored row.
fn row_is_self_hosted(name: &str, row: &Row<'_>, psl: &PublicSuffixList) -> bool {
    let Some(rd) = psl.registered_domain(name) else {
        return false;
    };
    row.shares().any(|s| s.provider == rd)
}

/// Rebuild the Figure 6 longitudinal series for `tracked` companies
/// from a store, one point per stored epoch. Equal to
/// `longitudinal::run_series` over the study the store was written
/// from (same dates, same weights, same shares).
pub fn series_from_store(
    reader: &StoreReader<'_>,
    dataset: Dataset,
    tracked: &[&str],
) -> Result<LongitudinalSeries, StoreError> {
    let psl = PublicSuffixList::builtin();
    let mut series: Vec<(String, Vec<SeriesPoint>)> = tracked
        .iter()
        .map(|c| (c.to_string(), Vec::new()))
        .collect();
    let mut self_hosted = Vec::new();
    let mut top5_total = Vec::new();
    let mut dates = Vec::new();

    for epoch in 0..reader.epoch_count() {
        let shares = market_share_at(reader, epoch)?;
        let date = reader
            .label(epoch)
            .ok_or(StoreError::EpochOutOfRange {
                epoch,
                epochs: reader.epoch_count(),
            })?
            .to_string();
        dates.push(date.clone());
        for (name, points) in &mut series {
            let row = shares.rows.iter().find(|r| &r.company == name);
            points.push(SeriesPoint {
                date: date.clone(),
                weight: row.map(|r| r.weight).unwrap_or(0.0),
                share: row.map(|r| r.share).unwrap_or(0.0),
            });
        }
        let sh = self_hosted_at(reader, epoch, &psl)?;
        self_hosted.push(SeriesPoint {
            date: date.clone(),
            weight: sh as f64,
            share: sh as f64 / shares.total_domains.max(1) as f64,
        });
        top5_total.push(SeriesPoint {
            date,
            weight: shares.top(5).iter().map(|r| r.weight).sum(),
            share: shares.top_share(5),
        });
    }

    Ok(LongitudinalSeries {
        dataset,
        companies: series,
        self_hosted,
        top5_total,
        dates,
    })
}

/// The top-100 company set (by credited weight, excluding the big
/// three) at one stored epoch. Equal to `churn::top100_set` over the
/// source result.
pub fn top100_at(
    reader: &StoreReader<'_>,
    epoch: usize,
) -> Result<HashSet<String>, StoreError> {
    let mut rows: Vec<(String, f64)> = Vec::new();
    if reader.has_indexes() {
        reader.for_each_rollup(epoch, |credit, weight| {
            rows.push((credit.to_string(), weight));
            Ok(())
        })?;
    } else {
        let mut weights: HashMap<String, f64> = HashMap::new();
        reader.for_each_row(epoch, |_name, row| {
            for s in row.shares() {
                *weights
                    .entry(company_or_provider(&s).to_string())
                    .or_insert(0.0) += s.weight;
            }
            Ok(())
        })?;
        rows.extend(weights); // re-sorted below, hash order never leaks
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(rows
        .iter()
        .filter(|(c, _)| !matches!(c.as_str(), "Google" | "Microsoft" | "Yandex"))
        .take(100)
        .map(|(c, _)| c.clone())
        .collect())
}

/// Classify one stored row into its Figure 7 category; `None` means
/// the domain is absent at the epoch (left the dataset).
pub fn classify_row(
    name: &str,
    row: Option<&Row<'_>>,
    top100: &HashSet<String>,
    psl: &PublicSuffixList,
) -> ChurnCategory {
    let Some(row) = row else {
        return ChurnCategory::NoSmtp;
    };
    if row.share_count() == 0 || !row.has_smtp() {
        return ChurnCategory::NoSmtp;
    }
    if row_is_self_hosted(name, row, psl) {
        return ChurnCategory::SelfHosted;
    }
    let Some(top) = row.dominant() else {
        return ChurnCategory::NoSmtp;
    };
    match company_or_provider(&top) {
        "Google" => ChurnCategory::Google,
        "Microsoft" => ChurnCategory::Microsoft,
        "Yandex" => ChurnCategory::Yandex,
        other if top100.contains(other) => ChurnCategory::Top100,
        _ => ChurnCategory::Others,
    }
}

/// Classify one v2 digest record into its Figure 7 category; `None`
/// means the domain is absent at the epoch. Mirrors [`classify_row`]
/// decision for decision: the digest's credit is `None` exactly for
/// share-less rows, its self-hosted bit is the write-time PSL check,
/// and its credit string is the dominant share's
/// `company.unwrap_or(provider)`.
fn classify_digest(row: Option<&DigestRow<'_>>, top100: &HashSet<String>) -> ChurnCategory {
    let Some(row) = row else {
        return ChurnCategory::NoSmtp;
    };
    let Some(credit) = row.credit else {
        return ChurnCategory::NoSmtp; // no shares
    };
    if !row.has_smtp {
        return ChurnCategory::NoSmtp;
    }
    if row.self_hosted {
        return ChurnCategory::SelfHosted;
    }
    match credit {
        "Google" => ChurnCategory::Google,
        "Microsoft" => ChurnCategory::Microsoft,
        "Yandex" => ChurnCategory::Yandex,
        other if top100.contains(other) => ChurnCategory::Top100,
        _ => ChurnCategory::Others,
    }
}

/// The Figure 7 flow matrix between two stored epochs: every domain
/// present at `from` is classified at both ends (absence at `to` is
/// "No SMTP", as in the in-memory path, where a departed domain has no
/// assignment). Equal to `churn::churn_matrix` over the source
/// results.
///
/// On v2 files this is a lockstep walk over the two epochs' digest
/// sections — no layer merge, no per-name point lookups, no name
/// materialization (digests share the global dictionary's doc ids, so
/// equal doc means equal domain). v1 files fall back to
/// [`churn_from_store_merged`].
pub fn churn_from_store(
    reader: &StoreReader<'_>,
    from: usize,
    to: usize,
) -> Result<ChurnMatrix, StoreError> {
    if !reader.has_indexes() {
        return churn_from_store_merged(reader, from, to);
    }
    let top100 = top100_at(reader, from)?;
    let mut m = ChurnMatrix::default();
    let mut bi = reader.digest_rows(to)?;
    let mut b = bi.next();
    for a in reader.digest_rows(from)? {
        while b.as_ref().is_some_and(|d| d.doc < a.doc) {
            b = bi.next();
        }
        let to_row = b.as_ref().filter(|d| d.doc == a.doc);
        let from_cat = classify_digest(Some(&a), &top100);
        let to_cat = classify_digest(to_row, &top100);
        *m.flows.entry((from_cat, to_cat)).or_insert(0) += 1;
        m.total += 1;
    }
    Ok(m)
}

/// [`churn_from_store`] via the merge path: walk `from`'s resolved
/// rows and point-look-up each name at `to`. Works on any store
/// version; the reference the digest path is gated against.
pub fn churn_from_store_merged(
    reader: &StoreReader<'_>,
    from: usize,
    to: usize,
) -> Result<ChurnMatrix, StoreError> {
    let psl = PublicSuffixList::builtin();
    let top100 = top100_at(reader, from)?;
    let mut m = ChurnMatrix::default();
    reader.for_each_row(from, |name, row| {
        let from_cat = classify_row(name, Some(row), &top100, &psl);
        let to_row = reader.lookup(name, to)?;
        let to_cat = classify_row(name, to_row.as_ref(), &top100, &psl);
        *m.flows.entry((from_cat, to_cat)).or_insert(0) += 1;
        m.total += 1;
        Ok(())
    })?;
    Ok(m)
}

/// All domains holding a share of `provider` at one stored epoch, in
/// ascending name order. On v2 files this decodes the provider's
/// postings list straight off the index footer; v1 files fall back to
/// [`domains_of_provider_merged`], a full-epoch scan. Both walk names
/// in the same byte order, so the vectors are equal.
pub fn domains_of_provider(
    reader: &StoreReader<'_>,
    provider: &str,
    epoch: usize,
) -> Result<Vec<String>, StoreError> {
    if reader.has_indexes() {
        reader.domains_of_provider(provider, epoch)
    } else {
        domains_of_provider_merged(reader, provider, epoch)
    }
}

/// [`domains_of_provider`] via the merge path: scan every resolved row
/// of the epoch and keep the names whose share list mentions
/// `provider`. Works on any store version.
pub fn domains_of_provider_merged(
    reader: &StoreReader<'_>,
    provider: &str,
    epoch: usize,
) -> Result<Vec<String>, StoreError> {
    let mut out = Vec::new();
    reader.for_each_row(epoch, |name, row| {
        if row.shares().any(|s| s.provider == provider) {
            out.push(name.to_string());
        }
        Ok(())
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::{company_map, provider_knowledge, ScenarioConfig};

    fn setup() -> (Study, Pipeline, CompanyMap) {
        let study = Study::generate(ScenarioConfig::small(21));
        let pipeline = Pipeline::priority_based(provider_knowledge(10));
        (study, pipeline, company_map())
    }

    #[test]
    fn market_share_matches_in_memory_bitwise() {
        let (study, pipeline, companies) = setup();
        let bytes = study
            .write_store(Dataset::Alexa, &pipeline, &companies)
            .unwrap();
        let reader = StoreReader::open(&bytes).unwrap();
        assert_eq!(reader.epoch_count(), 9);

        let world = study.world_at(8);
        let data = observe::observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).unwrap();
        let result = pipeline.run(obs);
        let mem = crate::market::market_share(&result, &companies, None);

        let stored = market_share_at(&reader, 8).unwrap();
        assert_eq!(stored.total_domains, mem.total_domains);
        assert_eq!(stored.rows, mem.rows, "rows equal incl. f64 bits");
    }

    #[test]
    fn self_hosted_matches_in_memory() {
        let (study, pipeline, companies) = setup();
        let bytes = study
            .write_store(Dataset::Alexa, &pipeline, &companies)
            .unwrap();
        let reader = StoreReader::open(&bytes).unwrap();
        let psl = PublicSuffixList::builtin();

        let world = study.world_at(0);
        let data = observe::observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).unwrap();
        let result = pipeline.run(obs);
        assert_eq!(
            self_hosted_at(&reader, 0, &psl).unwrap(),
            crate::market::self_hosted_count(&result, &psl)
        );
    }

    #[test]
    fn churn_matches_in_memory() {
        let (study, pipeline, companies) = setup();
        let bytes = study
            .write_store(Dataset::Alexa, &pipeline, &companies)
            .unwrap();
        let reader = StoreReader::open(&bytes).unwrap();

        let run_at = |k: usize| {
            let world = study.world_at(k);
            let data = observe::observe_world(&world);
            let obs = data.dataset(Dataset::Alexa).unwrap().clone();
            let result = pipeline.run(&obs);
            (result, obs)
        };
        let (r0, o0) = run_at(0);
        let (r8, o8) = run_at(8);
        let mem = crate::churn::churn_matrix((&r0, &o0), (&r8, &o8), &companies);
        let stored = churn_from_store(&reader, 0, 8).unwrap();
        assert_eq!(stored.total, mem.total);
        for from in ChurnCategory::ALL {
            for to in ChurnCategory::ALL {
                assert_eq!(
                    stored.flow(from, to),
                    mem.flow(from, to),
                    "flow {from:?} -> {to:?}"
                );
            }
        }
    }

    #[test]
    fn v1_and_v2_paths_agree() {
        let (study, pipeline, companies) = setup();
        let v2 = study
            .write_store(Dataset::Alexa, &pipeline, &companies)
            .unwrap();
        let v1 = write_study_store_v1(&study, Dataset::Alexa, &pipeline, &companies).unwrap();
        let r2 = StoreReader::open(&v2).unwrap();
        let r1 = StoreReader::open(&v1).unwrap();
        assert!(r2.has_indexes());
        assert!(!r1.has_indexes());
        r2.verify_indexes().unwrap();

        // Dispatch (index-backed on r2, merged on r1) and the explicit
        // merge path all agree bit for bit.
        let psl = PublicSuffixList::builtin();
        for epoch in [0usize, 4, 8] {
            let m2 = market_share_at(&r2, epoch).unwrap();
            let m1 = market_share_at(&r1, epoch).unwrap();
            let mm = market_share_merged(&r2, epoch).unwrap();
            assert_eq!(m2.rows, m1.rows);
            assert_eq!(m2.rows, mm.rows);
            assert_eq!(m2.total_domains, mm.total_domains);
            assert_eq!(
                self_hosted_at(&r2, epoch, &psl).unwrap(),
                self_hosted_merged(&r2, epoch, &psl).unwrap()
            );
            assert_eq!(top100_at(&r2, epoch).unwrap(), top100_at(&r1, epoch).unwrap());
        }
        let c2 = churn_from_store(&r2, 0, 8).unwrap();
        let cm = churn_from_store_merged(&r2, 0, 8).unwrap();
        assert_eq!(c2.total, cm.total);
        assert_eq!(c2.flows, cm.flows);

        let provider = r2
            .providers()
            .iter()
            .find(|p| !r2.domains_of_provider(p, 8).unwrap().is_empty())
            .copied()
            .expect("some provider has postings at epoch 8");
        let d2 = domains_of_provider(&r2, provider, 8).unwrap();
        let dm = domains_of_provider_merged(&r2, provider, 8).unwrap();
        let d1 = domains_of_provider(&r1, provider, 8).unwrap();
        assert!(!d2.is_empty(), "postings list non-empty for {provider}");
        assert_eq!(d2, dm);
        assert_eq!(d2, d1);
    }

    #[test]
    fn gov_store_starts_mid_study() {
        let (study, pipeline, companies) = setup();
        let bytes = study
            .write_store(Dataset::Gov, &pipeline, &companies)
            .unwrap();
        let reader = StoreReader::open(&bytes).unwrap();
        assert_eq!(reader.epoch_count(), 7);
        assert_eq!(reader.label(0), Some("2018-06"));
        let s = series_from_store(&reader, Dataset::Gov, &["Microsoft"]).unwrap();
        assert_eq!(s.dates.len(), 7);
    }
}
