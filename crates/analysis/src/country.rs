//! Figure 8: mail-provider preferences by ccTLD.

use std::collections::BTreeMap;

use mx_corpus::DomainRecord;
use mx_infer::{CompanyMap, InferenceResult};

/// The providers Figure 8 tracks.
pub const FIG8_PROVIDERS: [&str; 4] = ["Google", "Microsoft", "Tencent", "Yandex"];

/// The fifteen ccTLDs of Figure 8, in the paper's order.
pub const FIG8_CCTLDS: [&str; 15] = [
    "br", "ar", "uk", "fr", "de", "it", "es", "ro", "ca", "au", "ru", "cn", "jp", "in", "sg",
];

/// The ccTLD × provider share matrix.
#[derive(Debug, Clone, Default)]
pub struct CountryMatrix {
    /// `(cctld, provider) -> (weight, share of the ccTLD's domains)`.
    /// Ordered so walking the matrix is deterministic.
    pub cells: BTreeMap<(String, String), (f64, f64)>,
    /// Domains per ccTLD.
    pub totals: BTreeMap<String, usize>,
}

impl CountryMatrix {
    /// Share of `provider` among `cctld` domains.
    pub fn share(&self, cctld: &str, provider: &str) -> f64 {
        self.cells
            .get(&(cctld.to_string(), provider.to_string()))
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// Number of domains under `cctld`.
    pub fn total(&self, cctld: &str) -> usize {
        self.totals.get(cctld).copied().unwrap_or(0)
    }
}

/// Compute the matrix over an inference result, using the population's
/// ccTLD annotations.
pub fn country_matrix(
    result: &InferenceResult,
    records: &[DomainRecord],
    companies: &CompanyMap,
) -> CountryMatrix {
    let mut m = CountryMatrix::default();
    for rec in records {
        let Some(cc) = rec.cctld else { continue };
        if !FIG8_CCTLDS.contains(&cc) {
            continue;
        }
        *m.totals.entry(cc.to_string()).or_insert(0) += 1;
        let Some(a) = result.domain(&rec.name) else {
            continue;
        };
        for s in &a.shares {
            let company = companies.company_or_id(&s.provider);
            if FIG8_PROVIDERS.contains(&company) {
                let cell = m
                    .cells
                    .entry((cc.to_string(), company.to_string()))
                    .or_insert((0.0, 0.0));
                cell.0 += s.weight;
            }
        }
    }
    // Convert weights to shares.
    for ((cc, _), cell) in m.cells.iter_mut() {
        let total = m.totals.get(cc).copied().unwrap_or(0).max(1);
        cell.1 = cell.0 / total as f64;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
    use mx_infer::Pipeline;

    #[test]
    fn national_biases_visible() {
        let study = Study::generate(ScenarioConfig {
            seed: 61,
            alexa_size: 4000,
            com_size: 100,
            gov_size: 50,
        });
        let world = study.world_at(8);
        let data = crate::observe::observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).unwrap();
        let result = Pipeline::priority_based(provider_knowledge(10)).run(obs);
        let m = country_matrix(&result, &study.populations[0].domains, &company_map());
        // Yandex strong in .ru, negligible in .br.
        assert!(
            m.share("ru", "Yandex") > 0.10,
            "yandex .ru share {:.3}",
            m.share("ru", "Yandex")
        );
        assert!(m.share("br", "Yandex") < 0.03);
        // Tencent essentially only in .cn.
        assert!(m.share("cn", "Tencent") > 0.10);
        assert!(m.share("de", "Tencent") < 0.02);
        // US providers widely used outside the US (e.g. .br), but
        // suppressed in .cn.
        let br_us = m.share("br", "Google") + m.share("br", "Microsoft");
        assert!(br_us > 0.3, ".br US share {br_us:.3}");
        assert!(m.share("cn", "Google") < 0.05);
        // Totals populated for all fifteen ccTLDs.
        for cc in FIG8_CCTLDS {
            assert!(m.total(cc) > 0, "no domains under .{cc}");
        }
    }
}
