//! Figure 4: relative accuracy of the four inference strategies.
//!
//! The paper samples 200 domains (a) uniformly and (b) with unique MX
//! records from each of the three corpora — always restricted to domains
//! with live SMTP servers, "to ensure a fair comparison across different
//! methods" — labels them by hand (our generator emits the labels), and
//! counts how many each strategy identifies correctly, plus how many the
//! priority-based approach examined in step 4.

use mx_corpus::{GroundTruth, TruthCategory};
use mx_dns::Name;
use mx_infer::{CompanyMap, InferenceResult, ObservationSet, Pipeline, Strategy};

/// How the evaluation sample was drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleKind {
    /// Uniform over SMTP-reachable domains.
    Uniform,
    /// Additionally, no two sampled domains share a primary MX exchange.
    UniqueMx,
}

impl SampleKind {
    /// Display label matching the paper's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            SampleKind::Uniform => "random",
            SampleKind::UniqueMx => "w/ unique MX",
        }
    }
}

/// Results for one (strategy, sample) cell of Figure 4.
#[derive(Debug, Clone)]
pub struct AccuracyCell {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// How the sample was drawn.
    pub sample: SampleKind,
    /// Domains in the sample.
    pub sample_size: usize,
    /// Correctly attributed domains.
    pub correct: usize,
    /// Sampled domains whose MX the step-4 check examined (priority-based
    /// strategy only; zero otherwise).
    pub examined: usize,
}

impl AccuracyCell {
    /// Fraction of the sample attributed correctly.
    pub fn accuracy(&self) -> f64 {
        self.correct as f64 / self.sample_size.max(1) as f64
    }
}

/// The full Figure 4 panel for one dataset.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// One cell per (strategy, sample kind).
    pub cells: Vec<AccuracyCell>,
}

impl AccuracyReport {
    /// The cell for one (strategy, sample kind) pair.
    pub fn cell(&self, strategy: Strategy, sample: SampleKind) -> &AccuracyCell {
        self.cells
            .iter()
            .find(|c| c.strategy == strategy && c.sample == sample)
            .expect("cell exists")
    }
}

/// Draw the evaluation sample: `n` SMTP-reachable domains, optionally with
/// pairwise-distinct primary MX exchanges, deterministically from `seed`.
pub fn sample_domains(
    obs: &ObservationSet,
    truth: &GroundTruth,
    kind: SampleKind,
    n: usize,
    seed: u64,
) -> Vec<Name> {
    // Eligible: live SMTP per ground truth (the paper selects "domains
    // with SMTP servers").
    let by_name: std::collections::HashMap<&Name, &mx_infer::DomainObservation> =
        obs.domains.iter().map(|d| (&d.domain, d)).collect();
    let mut eligible: Vec<&Name> = obs
        .domains
        .iter()
        .map(|d| &d.domain)
        .filter(|name| truth.of(name).is_some_and(|t| t.has_smtp))
        .collect();
    eligible.sort();
    let mut rng = mx_rng::SmallRng::seed_from_u64(seed);
    rng.shuffle(&mut eligible);
    let mut out = Vec::with_capacity(n);
    let mut seen_mx: std::collections::HashSet<&Name> = Default::default();
    for name in eligible {
        if out.len() == n {
            break;
        }
        if kind == SampleKind::UniqueMx {
            let d = by_name[name];
            let primaries = d.mx.primary_targets();
            if primaries.iter().any(|t| seen_mx.contains(&t.exchange)) {
                continue;
            }
            for t in primaries {
                seen_mx.insert(&t.exchange);
            }
        }
        out.push(name.clone());
    }
    out
}

/// Is the strategy's answer for `domain` correct per ground truth?
///
/// The paper labels domains with their mail *provider* (the operating
/// company); a company may legitimately surface under any of its provider
/// IDs (a `googlemail.com` MX is still Google). Correctness therefore
/// compares at the company level via the provider-ID → company map, which
/// also leaves unmapped long-tail IDs compared verbatim.
pub fn is_correct(
    result: &InferenceResult,
    truth: &GroundTruth,
    companies: &CompanyMap,
    domain: &Name,
) -> bool {
    let Some(t) = truth.of(domain) else {
        return false;
    };
    let Some(expected) = &t.expected_provider_id else {
        return false;
    };
    let Some(a) = result.domain(domain) else {
        return false;
    };
    match a.shares.as_slice() {
        [s] => companies.company_or_id(&s.provider) == companies.company_or_id(expected),
        _ => false,
    }
}

/// Run the full Figure 4 evaluation for one dataset snapshot.
pub fn evaluate(
    obs: &ObservationSet,
    truth: &GroundTruth,
    knowledge: mx_infer::ProviderKnowledge,
    companies: &CompanyMap,
    n: usize,
    seed: u64,
) -> AccuracyReport {
    // One inference run per strategy over the full dataset.
    let results: Vec<(Strategy, InferenceResult)> = Strategy::ALL
        .iter()
        .map(|&s| {
            let p = match s {
                Strategy::PriorityBased => Pipeline::priority_based(knowledge.clone()),
                other => Pipeline::new(other),
            };
            (s, p.run(obs))
        })
        .collect();

    let mut cells = Vec::new();
    for kind in [SampleKind::Uniform, SampleKind::UniqueMx] {
        let sample = sample_domains(obs, truth, kind, n, seed ^ kind as u64);
        for (strategy, result) in &results {
            let correct = sample
                .iter()
                .filter(|d| is_correct(result, truth, companies, d))
                .count();
            let examined = if *strategy == Strategy::PriorityBased {
                let examined_set: std::collections::BTreeSet<&Name> =
                    result.misid.examined.iter().collect();
                sample
                    .iter()
                    .filter(|domain| {
                        result.domain(domain).is_some_and(|a| {
                            // The domain is "examined" when any of its
                            // primary MX names was.
                            obs.domains
                                .iter()
                                .find(|d| &d.domain == *domain)
                                .is_some_and(|d| {
                                    d.mx.primary_targets()
                                        .iter()
                                        .any(|t| examined_set.contains(&t.exchange))
                                })
                                && !a.shares.is_empty()
                        })
                    })
                    .count()
            } else {
                0
            };
            cells.push(AccuracyCell {
                strategy: *strategy,
                sample: kind,
                sample_size: sample.len(),
                correct,
                examined,
            });
        }
    }
    AccuracyReport { cells }
}

/// Per-category accuracy diagnostics (not in the paper; useful to see
/// where each strategy fails).
pub fn accuracy_by_category(
    result: &InferenceResult,
    truth: &GroundTruth,
    companies: &CompanyMap,
) -> Vec<(TruthCategory, usize, usize)> {
    let mut by_cat: std::collections::HashMap<TruthCategory, (usize, usize)> = Default::default();
    for name in result.domains.keys() {
        let Some(t) = truth.of(name) else { continue };
        if !t.has_smtp {
            continue;
        }
        let entry = by_cat.entry(t.category).or_insert((0, 0));
        entry.1 += 1;
        if is_correct(result, truth, companies, name) {
            entry.0 += 1;
        }
    }
    let mut out: Vec<(TruthCategory, usize, usize)> = by_cat
        .into_iter()
        .map(|(c, (ok, total))| (c, ok, total))
        .collect();
    out.sort_by_key(|(c, _, _)| format!("{c:?}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};

    fn setup() -> (mx_corpus::World, ObservationSet) {
        let study = Study::generate(ScenarioConfig::small(31));
        let world = study.world_at(8);
        let data = crate::observe::observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).unwrap().clone();
        (world, obs)
    }

    #[test]
    fn priority_beats_mx_only() {
        let (world, obs) = setup();
        let report = evaluate(
            &obs,
            &world.truth,
            provider_knowledge(10),
            &company_map(),
            150,
            99,
        );
        let prio = report.cell(Strategy::PriorityBased, SampleKind::Uniform);
        let mx = report.cell(Strategy::MxOnly, SampleKind::Uniform);
        assert!(prio.accuracy() > 0.9, "priority accuracy {:.3}", prio.accuracy());
        assert!(
            prio.correct >= mx.correct,
            "priority {} vs mx {}",
            prio.correct,
            mx.correct
        );
        // Unique-MX sampling hurts MX-only much more.
        let mx_u = report.cell(Strategy::MxOnly, SampleKind::UniqueMx);
        let prio_u = report.cell(Strategy::PriorityBased, SampleKind::UniqueMx);
        assert!(
            prio_u.correct > mx_u.correct,
            "unique-mx: priority {} vs mx {}",
            prio_u.correct,
            mx_u.correct
        );
    }

    #[test]
    fn sampling_is_deterministic_and_smtp_only() {
        let (world, obs) = setup();
        let s1 = sample_domains(&obs, &world.truth, SampleKind::Uniform, 100, 7);
        let s2 = sample_domains(&obs, &world.truth, SampleKind::Uniform, 100, 7);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 100);
        for d in &s1 {
            assert!(world.truth.of(d).unwrap().has_smtp);
        }
    }

    #[test]
    fn unique_mx_sample_has_distinct_exchanges() {
        let (world, obs) = setup();
        let s = sample_domains(&obs, &world.truth, SampleKind::UniqueMx, 100, 7);
        let mut seen = std::collections::HashSet::new();
        for name in &s {
            let d = obs.domains.iter().find(|d| &d.domain == name).unwrap();
            for t in d.mx.primary_targets() {
                assert!(seen.insert(t.exchange.clone()), "duplicate MX {}", t.exchange);
            }
        }
    }

    #[test]
    fn category_diagnostics() {
        let (world, obs) = setup();
        let p = Pipeline::priority_based(provider_knowledge(10));
        let result = p.run(&obs);
        let cats = accuracy_by_category(&result, &world.truth, &company_map());
        assert!(!cats.is_empty());
        // Company-backed domains must be near-perfect.
        let company = cats
            .iter()
            .find(|(c, _, _)| *c == TruthCategory::Company)
            .unwrap();
        assert!(
            company.1 as f64 / company.2 as f64 > 0.9,
            "company accuracy {}/{}",
            company.1,
            company.2
        );
    }
}
