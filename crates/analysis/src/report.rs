//! Plain-text rendering shared by the experiment binaries.

use std::fmt::Write as _;

/// Format a fraction as a percentage with one decimal (`28.5%`).
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with a title.
    pub fn new(title: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the header row (builder style).
    pub fn headers<I, S>(mut self, headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append one data row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                if let Some(w) = widths.get_mut(i) {
                    *w = (*w).max(cell.len());
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let width = widths.get(i).copied().unwrap_or(0);
                let _ = write!(line, "{cell:<width$}  ");
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", render_row(&self.headers));
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.285), "28.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Top providers").headers(["Rank", "Company", "Share"]);
        t.row(["1", "Google", "28.5%"]);
        t.row(["2", "Microsoft", "10.8%"]);
        let s = t.render();
        assert!(s.contains("== Top providers =="));
        assert!(s.contains("Google"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        // Columns aligned: "Microsoft" starts at the same offset.
        let c1 = lines[3].find("Google").unwrap();
        let c2 = lines[4].find("Microsoft").unwrap();
        assert_eq!(c1, c2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.render(), "== empty ==\n");
    }
}
