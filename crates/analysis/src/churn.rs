//! Figure 7: the Sankey churn of Alexa domains between the first and last
//! snapshot.

use std::collections::HashMap;

use mx_dns::Name;
use mx_infer::{CompanyMap, InferenceResult, ObservationSet};
use mx_psl::PublicSuffixList;

/// The seven categories of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChurnCategory {
    /// Hosted by Google.
    Google,
    /// Hosted by Microsoft.
    Microsoft,
    /// Hosted by Yandex.
    Yandex,
    /// Any other provider ranked in the top 100 (by credited weight at the
    /// *starting* snapshot).
    Top100,
    /// Provider ID equals the domain's own registered domain.
    SelfHosted,
    /// Everything else.
    Others,
    /// No responding SMTP server.
    NoSmtp,
}

impl ChurnCategory {
    /// All seven, in the figure's order.
    pub const ALL: [ChurnCategory; 7] = [
        ChurnCategory::Google,
        ChurnCategory::Microsoft,
        ChurnCategory::Yandex,
        ChurnCategory::Top100,
        ChurnCategory::SelfHosted,
        ChurnCategory::Others,
        ChurnCategory::NoSmtp,
    ];

    /// Display label matching the figure.
    pub fn label(self) -> &'static str {
        match self {
            ChurnCategory::Google => "Google",
            ChurnCategory::Microsoft => "Microsoft",
            ChurnCategory::Yandex => "Yandex",
            ChurnCategory::Top100 => "Top100",
            ChurnCategory::SelfHosted => "Self-Hosted",
            ChurnCategory::Others => "Others",
            ChurnCategory::NoSmtp => "No SMTP",
        }
    }
}

/// The flow matrix between two snapshots.
#[derive(Debug, Clone, Default)]
pub struct ChurnMatrix {
    /// `flows[(from, to)]` = number of domains.
    pub flows: HashMap<(ChurnCategory, ChurnCategory), usize>,
    /// Total domains classified.
    pub total: usize,
}

impl ChurnMatrix {
    /// Number of domains moving `from -> to`.
    pub fn flow(&self, from: ChurnCategory, to: ChurnCategory) -> usize {
        self.flows.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Domains in `cat` at the start.
    pub fn outgoing_total(&self, cat: ChurnCategory) -> usize {
        ChurnCategory::ALL
            .iter()
            .map(|to| self.flow(cat, *to))
            .sum()
    }

    /// Domains in `cat` at the end.
    pub fn incoming_total(&self, cat: ChurnCategory) -> usize {
        ChurnCategory::ALL
            .iter()
            .map(|from| self.flow(*from, cat))
            .sum()
    }

    /// Domains that stayed in `cat`.
    pub fn retained(&self, cat: ChurnCategory) -> usize {
        self.flow(cat, cat)
    }
}

/// Classify one domain under a result.
pub fn classify(
    result: &InferenceResult,
    obs: &ObservationSet,
    companies: &CompanyMap,
    top100: &std::collections::HashSet<String>,
    psl: &PublicSuffixList,
    domain: &Name,
) -> ChurnCategory {
    let Some(a) = result.domain(domain) else {
        return ChurnCategory::NoSmtp;
    };
    if a.shares.is_empty() || !a.has_smtp {
        return ChurnCategory::NoSmtp;
    }
    let _ = obs;
    if mx_infer::domainid::is_self_hosted(a, psl) {
        return ChurnCategory::SelfHosted;
    }
    // Dominant share decides.
    let top = a
        .shares
        .iter()
        .max_by(|x, y| x.weight.total_cmp(&y.weight))
        .expect("non-empty");
    let company = companies.company_or_id(&top.provider);
    match company {
        "Google" => ChurnCategory::Google,
        "Microsoft" => ChurnCategory::Microsoft,
        "Yandex" => ChurnCategory::Yandex,
        other if top100.contains(other) => ChurnCategory::Top100,
        _ => ChurnCategory::Others,
    }
}

/// The top-100 provider set (by credited weight) at the starting snapshot,
/// excluding the big three.
pub fn top100_set(
    result: &InferenceResult,
    companies: &CompanyMap,
) -> std::collections::HashSet<String> {
    // Same ordering discipline as `market::market_share`: sum weights in
    // dotted-name byte order so the ranking (and thus the set) matches
    // the store-backed path bit for bit.
    let mut entries: Vec<(&Name, &mx_infer::DomainAssignment)> = result.domains.iter().collect();
    entries.sort_by_cached_key(|(name, _)| name.to_dotted());
    let mut weights: HashMap<String, f64> = HashMap::new();
    for (_, a) in entries {
        for s in &a.shares {
            *weights
                .entry(companies.company_or_id(&s.provider).to_string())
                .or_insert(0.0) += s.weight;
        }
    }
    let mut rows: Vec<(String, f64)> = weights.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.iter()
        .filter(|(c, _)| !matches!(c.as_str(), "Google" | "Microsoft" | "Yandex"))
        .take(100)
        .map(|(c, _)| c.clone())
        .collect()
}

/// Compute the flow matrix between two snapshots of the same domain list.
pub fn churn_matrix(
    start: (&InferenceResult, &ObservationSet),
    end: (&InferenceResult, &ObservationSet),
    companies: &CompanyMap,
) -> ChurnMatrix {
    let psl = PublicSuffixList::builtin();
    let top100 = top100_set(start.0, companies);
    let mut m = ChurnMatrix::default();
    for d in &start.1.domains {
        let from = classify(start.0, start.1, companies, &top100, &psl, &d.domain);
        let to = classify(end.0, end.1, companies, &top100, &psl, &d.domain);
        *m.flows.entry((from, to)).or_insert(0) += 1;
        m.total += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
    use mx_infer::Pipeline;

    #[test]
    fn churn_matrix_structure() {
        let study = Study::generate(ScenarioConfig::small(51));
        let pipeline = Pipeline::priority_based(provider_knowledge(10));
        let companies = company_map();

        let w0 = study.world_at(0);
        let d0 = crate::observe::observe_world(&w0);
        let obs0 = d0.dataset(Dataset::Alexa).unwrap();
        let r0 = pipeline.run(obs0);

        let w8 = study.world_at(8);
        let d8 = crate::observe::observe_world(&w8);
        let obs8 = d8.dataset(Dataset::Alexa).unwrap();
        let r8 = pipeline.run(obs8);

        let m = churn_matrix((&r0, obs0), (&r8, obs8), &companies);
        assert_eq!(m.total, 800);
        // Totals are a partition on both sides.
        let out_sum: usize = ChurnCategory::ALL.iter().map(|c| m.outgoing_total(*c)).sum();
        let in_sum: usize = ChurnCategory::ALL.iter().map(|c| m.incoming_total(*c)).sum();
        assert_eq!(out_sum, 800);
        assert_eq!(in_sum, 800);
        // Google retains the bulk of its domains and gains overall.
        assert!(m.retained(ChurnCategory::Google) > 100);
        assert!(
            m.incoming_total(ChurnCategory::Google) >= m.outgoing_total(ChurnCategory::Google)
        );
        // Self-hosted shrinks.
        assert!(
            m.incoming_total(ChurnCategory::SelfHosted)
                < m.outgoing_total(ChurnCategory::SelfHosted)
        );
        // Some ex-self-hosted domains land on Google/Microsoft.
        let to_big = m.flow(ChurnCategory::SelfHosted, ChurnCategory::Google)
            + m.flow(ChurnCategory::SelfHosted, ChurnCategory::Microsoft);
        assert!(to_big > 0, "self-hosted -> big two flows present");
    }
}
