//! Data gathering (§4.3): the OpenINTEL + Censys + CAIDA join.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use mx_corpus::{Dataset, World};
use mx_infer::{
    AcqFault, AcquisitionReport, DnsAcquisition, DomainObservation, IpAcquisition, IpObservation,
    MxObservation, MxTargetObs, ObservationSet, ScanStatus,
};
use mx_net::{openintel, Missed, PortState, Scanner};

/// The fully-joined measurement data of one snapshot.
pub struct SnapshotData {
    /// The measurement date.
    pub date: mx_dns::Timestamp,
    /// The snapshot index (0 = June 2017).
    pub snapshot: usize,
    /// One observation set per dataset active at this snapshot.
    pub per_dataset: Vec<(Dataset, ObservationSet)>,
}

impl SnapshotData {
    /// The observation set of one dataset, if present.
    pub fn dataset(&self, ds: Dataset) -> Option<&ObservationSet> {
        self.per_dataset
            .iter()
            .find(|(d, _)| *d == ds)
            .map(|(_, o)| o)
    }
}

/// Knobs for the measurement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObserveConfig {
    /// Half-width of the scan window in rounds. Zero (the default) is a
    /// single sweep; `w > 0` merges the best observation per IP across
    /// rounds `epoch - w ..= epoch + w`, the way longitudinal scan data
    /// papers over transient per-round losses.
    pub scan_width: u64,
}

/// Run the measurement over a world: per-dataset DNS measurement, a single
/// shared port-25 scan sweep over every discovered MX IP, certificate
/// validation against the world's trust store, and prefix2as annotation.
///
/// Every stage fans out over the shared `mx_par` pool — datasets for the
/// DNS measurement, IPs for the scan (inside [`Scanner::scan`]) and for
/// the cert-validation/prefix2as join, datasets again for assembly. The
/// network is immutable and each task's output is keyed by dataset or
/// address, so the snapshot is bit-identical to a serial run.
pub fn observe_world(world: &World) -> SnapshotData {
    observe_world_with(world, &ObserveConfig::default())
}

/// [`observe_world`] with explicit configuration.
pub fn observe_world_with(world: &World, cfg: &ObserveConfig) -> SnapshotData {
    let _obs_run = mx_obs::stage!(mx_obs::names::STAGE_OBSERVE).enter();
    let scanner = Scanner::new();
    let epoch = world.snapshot as u64;

    // 1. DNS measurement per dataset (OpenINTEL).
    let _s_resolve = mx_obs::stage!(
        mx_obs::names::STAGE_OBSERVE_RESOLVE,
        mx_obs::names::STAGE_OBSERVE
    )
    .enter();
    let dns_per_dataset: Vec<(Dataset, openintel::DnsSnapshot)> =
        mx_par::par_map(&world.targets, |(ds, names)| {
            (*ds, openintel::measure(&world.net, names))
        });
    let mut all_ips: Vec<Ipv4Addr> = Vec::new();
    for (_, snap) in &dns_per_dataset {
        all_ips.extend(snap.all_mx_ips());
    }
    all_ips.sort();
    all_ips.dedup();
    drop(_s_resolve);

    // 2. Port-25 scan of every MX IP (Censys).
    let _s_scan = mx_obs::stage!(
        mx_obs::names::STAGE_OBSERVE_SCAN,
        mx_obs::names::STAGE_OBSERVE
    )
    .enter();
    let scan = if cfg.scan_width == 0 {
        scanner.scan(&world.net, &all_ips, epoch)
    } else {
        scanner.scan_window(&world.net, &all_ips, epoch, cfg.scan_width)
    };
    drop(_s_scan);

    // Per-IP acquisition accounting: cost and degradation behind each row.
    let acq_by_ip: HashMap<Ipv4Addr, IpAcquisition> = all_ips
        .iter()
        .map(|&ip| {
            let acq = if let Some(o) = scan.observation(ip) {
                IpAcquisition {
                    attempts: o.attempts,
                    recovered: o.recovered,
                    exhausted: false,
                    blocked: false,
                    // `ScanFault` *is* `AcqFault` (shared `mx-acq`
                    // vocabulary); the fault carries over unchanged.
                    fault: o.fault,
                }
            } else {
                match scan.missed.get(&ip) {
                    Some(Missed::Blocked) => IpAcquisition {
                        attempts: 0,
                        recovered: false,
                        exhausted: false,
                        blocked: true,
                        fault: None,
                    },
                    Some(Missed::Exhausted { attempts }) => IpAcquisition {
                        attempts: *attempts,
                        recovered: false,
                        exhausted: true,
                        blocked: false,
                        fault: Some(AcqFault::Transient),
                    },
                    // Unreachable routing hole: no attempt ever completed.
                    None => IpAcquisition {
                        attempts: 0,
                        recovered: false,
                        exhausted: false,
                        blocked: true,
                        fault: None,
                    },
                }
            };
            (ip, acq)
        })
        .collect();

    // 3. Join: per-IP observation with ASN + cert validation.
    let _s_join = mx_obs::stage!(
        mx_obs::names::STAGE_OBSERVE_JOIN,
        mx_obs::names::STAGE_OBSERVE
    )
    .enter();
    let now = world.net.clock().now();
    let ip_obs: HashMap<Ipv4Addr, IpObservation> = mx_par::par_map(&all_ips, |&ip| {
        let asn = world.net.asn_of(ip);
        let obs = match scan.get(ip) {
            None => IpObservation::uncovered(ip, asn),
            Some(PortState::Closed) | Some(PortState::NoBanner) => IpObservation {
                ip,
                asn,
                scan: ScanStatus::NoSmtp,
                leaf_cert: None,
                cert_valid: false,
            },
            Some(PortState::Open(data)) => {
                let leaf = data.leaf_certificate().cloned();
                let cert_valid = data
                    .starttls
                    .chain()
                    .is_some_and(|chain| {
                        mx_cert::chain_trusted(chain, &world.trust, now).is_ok()
                    });
                IpObservation {
                    ip,
                    asn,
                    scan: ScanStatus::Smtp(data.clone()),
                    leaf_cert: leaf,
                    cert_valid,
                }
            }
        };
        (ip, obs)
    })
    .into_iter()
    .collect();
    drop(_s_join);

    // 4. Assemble per-dataset observation sets (sharing the IP view).
    let _s_assemble = mx_obs::stage!(
        mx_obs::names::STAGE_OBSERVE_ASSEMBLE,
        mx_obs::names::STAGE_OBSERVE
    )
    .enter();
    let per_dataset = mx_par::par_map(&dns_per_dataset, |(ds, snap)| {
            let domains: Vec<DomainObservation> = snap
                .rows
                .iter()
                .map(|(name, m)| {
                    let mx = match m {
                        openintel::MxMeasurement::NoMx => MxObservation::NoMx,
                        openintel::MxMeasurement::Error(_) => MxObservation::NoMx,
                        openintel::MxMeasurement::Records { targets, null_mx } => {
                            if targets.is_empty() && *null_mx {
                                MxObservation::NullMx
                            } else {
                                MxObservation::Targets(
                                    targets
                                        .iter()
                                        .map(|t| MxTargetObs {
                                            preference: t.preference,
                                            exchange: t.exchange.clone(),
                                            addrs: t.addrs.clone(),
                                        })
                                        .collect(),
                                )
                            }
                        }
                    };
                    DomainObservation {
                        domain: name.clone(),
                        mx,
                    }
                })
                .collect();
            // Restrict the IP view to addresses this dataset references,
            // mirroring the per-dataset tables of the paper. Acquisition
            // accounting follows the same restriction.
            let mut ips = HashMap::new();
            let mut acquisition = AcquisitionReport::default();
            for d in &domains {
                for t in d.mx.targets() {
                    for a in &t.addrs {
                        if let Some(o) = ip_obs.get(a) {
                            ips.entry(*a).or_insert_with(|| o.clone());
                        }
                        if let Some(acq) = acq_by_ip.get(a) {
                            acquisition.ips.entry(*a).or_insert(*acq);
                        }
                    }
                }
            }
            for (name, deg) in &snap.degraded {
                acquisition.domains.insert(
                    name.clone(),
                    DnsAcquisition {
                        retries: deg.retries,
                        exhausted: deg.exhausted,
                    },
                );
            }
            (
                *ds,
                ObservationSet {
                    domains,
                    ips,
                    acquisition,
                },
            )
        });

    SnapshotData {
        date: now,
        snapshot: world.snapshot,
        per_dataset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_corpus::{ScenarioConfig, Study};

    #[test]
    fn observe_small_world() {
        let study = Study::generate(ScenarioConfig::small(3));
        let world = study.world_at(8);
        let data = observe_world(&world);
        assert_eq!(data.per_dataset.len(), 3);
        let alexa = data.dataset(Dataset::Alexa).unwrap();
        assert_eq!(alexa.domains.len(), 800);
        // Most domains resolve to at least one scanned IP.
        let with_ips = alexa
            .domains
            .iter()
            .filter(|d| d.mx.targets().iter().any(|t| !t.addrs.is_empty()))
            .count();
        assert!(with_ips > 700, "{with_ips} domains with MX IPs");
        // Some certificates validated.
        let valid_certs = alexa.ips.values().filter(|o| o.cert_valid).count();
        assert!(valid_certs > 10, "{valid_certs} valid certs");
        // Some IPs deliberately uncovered (Censys gaps).
        let uncovered = alexa
            .ips
            .values()
            .filter(|o| o.scan == ScanStatus::NotCovered)
            .count();
        assert!(uncovered > 0, "fault plan produced no gaps");
        // Acquisition accounting rides along: every referenced IP has an
        // entry, retries healed some losses, opt-outs and exhausted
        // budgets are distinguished.
        let acq = &alexa.acquisition;
        assert!(acq.ips.len() >= alexa.ips.len(), "acquisition covers the IP view");
        assert!(acq.recovered_ips() > 0, "no recovered IPs recorded");
        assert!(acq.blocked_ips() > 0, "no opt-outs recorded");
        assert!(acq.exhausted_ips() > 0, "no exhausted budgets recorded");
        assert!(
            acq.total_attempts() >= acq.ips.len() as u64,
            "attempts must be at least one per attempted IP"
        );
    }

    #[test]
    fn scan_window_improves_coverage() {
        let study = Study::generate(ScenarioConfig::small(3));
        let world = study.world_at(8);
        let single = observe_world(&world);
        let windowed = observe_world_with(&world, &ObserveConfig { scan_width: 1 });
        let exhausted = |d: &SnapshotData| {
            d.dataset(Dataset::Alexa)
                .unwrap()
                .acquisition
                .exhausted_ips()
        };
        assert!(exhausted(&single) > 0, "need exhausted IPs to recover");
        assert!(
            exhausted(&windowed) < exhausted(&single),
            "window {} vs single {}",
            exhausted(&windowed),
            exhausted(&single)
        );
        // Blocked IPs stay blocked: the window cannot heal opt-outs.
        let blocked = |d: &SnapshotData| {
            d.dataset(Dataset::Alexa)
                .unwrap()
                .acquisition
                .blocked_ips()
        };
        assert_eq!(blocked(&single), blocked(&windowed));
    }

    #[test]
    fn gov_absent_before_2018() {
        let study = Study::generate(ScenarioConfig::small(3));
        let world = study.world_at(0);
        let data = observe_world(&world);
        assert!(data.dataset(Dataset::Gov).is_none());
        assert!(data.dataset(Dataset::Alexa).is_some());
    }
}
