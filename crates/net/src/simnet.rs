//! The simulated network: DNS authority + SMTP hosts + routing + faults.

use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

use mx_asn::{AsTable, Asn};
use mx_dns::resolver::{ResolveError, Transport};
use mx_dns::{Authority, Message, Name, SimClock, StubResolver, Zone};
use mx_smtp::{Connection, SmtpServer, SmtpServerConfig};

use crate::fault::{DnsFault, FaultPlan};

/// Why an SMTP connection attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectError {
    /// No host lives at this address.
    NoRoute(Ipv4Addr),
    /// Host exists but is unreachable (fault plan).
    Unreachable(Ipv4Addr),
    /// Host exists but nothing listens on port 25.
    PortClosed(Ipv4Addr),
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::NoRoute(ip) => write!(f, "no route to {ip}"),
            ConnectError::Unreachable(ip) => write!(f, "{ip} unreachable"),
            ConnectError::PortClosed(ip) => write!(f, "connection refused by {ip}:25"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// A host attached to the network.
#[derive(Debug, Clone)]
struct HostEntry {
    /// SMTP service on port 25, if any.
    smtp: Option<SmtpServerConfig>,
}

/// The simulated Internet.
///
/// Immutable once built (interior state lives in per-connection
/// [`SmtpServer`] clones and per-caller resolvers), hence freely shared
/// across scanner threads.
pub struct SimNet {
    authority: Authority,
    hosts: BTreeMap<Ipv4Addr, HostEntry>,
    as_table: AsTable,
    clock: SimClock,
    faults: FaultPlan,
    resolver_ip: Ipv4Addr,
}

impl SimNet {
    /// Start building a network. An empty root zone is pre-installed so
    /// that names outside all configured zones resolve to NXDOMAIN (as
    /// they would through the real root/TLD hierarchy) rather than REFUSED.
    pub fn builder(clock: SimClock) -> SimNetBuilder {
        let mut authority = Authority::new();
        authority.add_zone(Zone::new(Name::root()));
        SimNetBuilder {
            authority,
            hosts: BTreeMap::new(),
            as_table: AsTable::new(),
            clock,
            faults: FaultPlan::none(),
            resolver_ip: Ipv4Addr::new(10, 53, 53, 53),
        }
    }

    /// The shared simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The fault plan in effect.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Replace the fault plan (chaos experiments re-run one built world
    /// under several plans).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The address of the recursive resolver serving this network.
    pub fn resolver_ip(&self) -> Ipv4Addr {
        self.resolver_ip
    }

    /// The DNS authority (diagnostics).
    pub fn authority(&self) -> &Authority {
        &self.authority
    }

    /// The routing table.
    pub fn as_table(&self) -> &AsTable {
        &self.as_table
    }

    /// Primary ASN announcing `ip`, if routed.
    pub fn asn_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.as_table.asn_of(ip)
    }

    /// Number of attached hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Hosts that run an SMTP service.
    pub fn smtp_host_count(&self) -> usize {
        self.hosts.values().filter(|h| h.smtp.is_some()).count()
    }

    /// All attached host addresses, in address order.
    pub fn host_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.hosts.keys().copied()
    }

    /// Open a TCP connection to `ip:25`, yielding a live SMTP session.
    /// Each connection gets a fresh clone of the host's server state.
    pub fn connect_smtp(&self, ip: Ipv4Addr) -> Result<Connection, ConnectError> {
        if self.faults.is_unreachable(ip) {
            return Err(ConnectError::Unreachable(ip));
        }
        let host = self.hosts.get(&ip).ok_or(ConnectError::NoRoute(ip))?;
        let config = host.smtp.as_ref().ok_or(ConnectError::PortClosed(ip))?;
        Ok(Connection::open(SmtpServer::new(config.clone())))
    }

    /// A fresh caching stub resolver over this network.
    pub fn resolver(&self) -> StubResolver<&SimNet> {
        StubResolver::new(self, self.resolver_ip, self.clock.clone())
    }
}

impl Transport for SimNet {
    fn query(&self, server: Ipv4Addr, query: &Message) -> Result<Message, ResolveError> {
        self.query_attempt(server, query, 0)
    }

    fn query_attempt(
        &self,
        server: Ipv4Addr,
        query: &Message,
        attempt: u32,
    ) -> Result<Message, ResolveError> {
        if server != self.resolver_ip {
            return Err(ResolveError::Network(format!(
                "no DNS service at {server}"
            )));
        }
        // Keyed chaos on the authority path: the fault is a pure
        // function of (qname, day, attempt, seed), so runs are
        // reproducible and retries draw independent coins.
        if let Some(q) = query.question() {
            let day = self.clock.now().secs() / 86_400;
            match self.faults.dns_fault(&q.name.to_string(), day, attempt) {
                Some(DnsFault::Timeout) => {
                    return Err(ResolveError::Network(format!(
                        "query for {} timed out",
                        q.name
                    )));
                }
                Some(DnsFault::ServFail) => {
                    let mut resp = query.response();
                    resp.header.rcode = mx_dns::Rcode::ServFail;
                    return Ok(resp);
                }
                Some(DnsFault::Truncation) => {
                    let mut resp = query.response();
                    resp.header.tc = true;
                    return Ok(resp);
                }
                None => {}
            }
        }
        // Exercise the real wire codec both ways, as a network would.
        let bytes = query
            .encode()
            .map_err(|e| ResolveError::Network(e.to_string()))?;
        let decoded =
            Message::decode(&bytes).map_err(|e| ResolveError::Network(e.to_string()))?;
        let resp = self.authority.answer(&decoded);
        let bytes = resp
            .encode()
            .map_err(|e| ResolveError::Network(e.to_string()))?;
        Message::decode(&bytes).map_err(|e| ResolveError::Network(e.to_string()))
    }
}

/// Builder for [`SimNet`].
pub struct SimNetBuilder {
    authority: Authority,
    hosts: BTreeMap<Ipv4Addr, HostEntry>,
    as_table: AsTable,
    clock: SimClock,
    faults: FaultPlan,
    resolver_ip: Ipv4Addr,
}

impl SimNetBuilder {
    /// Add an authoritative zone.
    pub fn zone(&mut self, zone: Zone) -> &mut Self {
        self.authority.add_zone(zone);
        self
    }

    /// Mutable access to an already-added zone.
    pub fn zone_mut(&mut self, origin: &Name) -> Option<&mut Zone> {
        self.authority.zone_mut(origin)
    }

    /// Attach a host with an SMTP service on port 25.
    pub fn smtp_host(&mut self, ip: Ipv4Addr, config: SmtpServerConfig) -> &mut Self {
        self.hosts.insert(ip, HostEntry { smtp: Some(config) });
        self
    }

    /// Attach a host with no SMTP service (e.g. a web server an MX record
    /// mistakenly points at — the paper's `jeniustoto.net` case).
    pub fn silent_host(&mut self, ip: Ipv4Addr) -> &mut Self {
        self.hosts.insert(ip, HostEntry { smtp: None });
        self
    }

    /// Announce an IP prefix from an AS.
    pub fn announce(&mut self, prefix: mx_asn::Ipv4Prefix, asn: Asn) -> &mut Self {
        self.as_table.announce(prefix, mx_asn::Origin::Single(asn));
        self
    }

    /// Register AS metadata.
    pub fn register_as(&mut self, info: mx_asn::AsInfo) -> &mut Self {
        self.as_table.register_as(info);
        self
    }

    /// Set the fault plan.
    pub fn faults(&mut self, faults: FaultPlan) -> &mut Self {
        self.faults = faults;
        self
    }

    /// IPs of hosts added so far that run an SMTP service (used by world
    /// generators to sample fault-plan targets before building).
    pub fn smtp_ips(&self) -> Vec<Ipv4Addr> {
        let mut ips: Vec<Ipv4Addr> = self
            .hosts
            .iter()
            .filter(|(_, h)| h.smtp.is_some())
            .map(|(ip, _)| *ip)
            .collect();
        ips.sort();
        ips
    }

    /// Finish building.
    pub fn build(self) -> SimNet {
        SimNet {
            authority: self.authority,
            hosts: self.hosts,
            as_table: self.as_table,
            clock: self.clock,
            faults: self.faults,
            resolver_ip: self.resolver_ip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_dns::{dns_name, RData, RecordType};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn small_net() -> SimNet {
        let clock = SimClock::new();
        let mut b = SimNet::builder(clock);
        let mut z = Zone::new(dns_name!("example.com"));
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx.example.com"),
            },
        );
        z.add_rr(dns_name!("mx.example.com"), 300, RData::A(ip("192.0.2.25")));
        b.zone(z);
        b.smtp_host(ip("192.0.2.25"), SmtpServerConfig::plain("mx.example.com"));
        b.silent_host(ip("192.0.2.80"));
        b.announce("192.0.2.0/24".parse().unwrap(), 64500);
        b.build()
    }

    #[test]
    fn dns_resolution_over_network() {
        let net = small_net();
        let r = net.resolver();
        let mx = r.resolve_mx(&dns_name!("example.com")).unwrap();
        assert_eq!(mx.targets[0].addrs, vec![ip("192.0.2.25")]);
    }

    #[test]
    fn wrong_dns_server_refused() {
        let net = small_net();
        let r = StubResolver::new(&net, ip("9.9.9.9"), net.clock().clone());
        assert!(matches!(
            r.resolve(&dns_name!("example.com"), RecordType::Mx),
            Err(ResolveError::Network(_))
        ));
    }

    #[test]
    fn smtp_connect_and_banner() {
        let net = small_net();
        let mut conn = net.connect_smtp(ip("192.0.2.25")).unwrap();
        let banner = conn.read_reply().unwrap();
        assert!(banner.first_line().starts_with("mx.example.com"));
    }

    #[test]
    fn connect_errors() {
        let net = small_net();
        assert_eq!(
            net.connect_smtp(ip("203.0.113.1")).unwrap_err(),
            ConnectError::NoRoute(ip("203.0.113.1"))
        );
        assert_eq!(
            net.connect_smtp(ip("192.0.2.80")).unwrap_err(),
            ConnectError::PortClosed(ip("192.0.2.80"))
        );
    }

    #[test]
    fn unreachable_fault() {
        let clock = SimClock::new();
        let mut b = SimNet::builder(clock);
        b.smtp_host(ip("192.0.2.25"), SmtpServerConfig::plain("mx.example.com"));
        let mut faults = FaultPlan::none();
        faults.unreachable_ips.insert(ip("192.0.2.25"));
        b.faults(faults);
        let net = b.build();
        assert_eq!(
            net.connect_smtp(ip("192.0.2.25")).unwrap_err(),
            ConnectError::Unreachable(ip("192.0.2.25"))
        );
    }

    #[test]
    fn connect_error_display() {
        assert_eq!(
            ConnectError::NoRoute(ip("203.0.113.1")).to_string(),
            "no route to 203.0.113.1"
        );
        assert_eq!(
            ConnectError::Unreachable(ip("203.0.113.2")).to_string(),
            "203.0.113.2 unreachable"
        );
        assert_eq!(
            ConnectError::PortClosed(ip("203.0.113.3")).to_string(),
            "connection refused by 203.0.113.3:25"
        );
    }

    #[test]
    fn dns_faults_are_retried_transparently() {
        // Rates low enough that MAX_DNS_ATTEMPTS nearly always recovers:
        // the resolution still succeeds, stats show the retries.
        let clock = SimClock::new();
        let mut b = SimNet::builder(clock);
        let mut z = Zone::new(dns_name!("example.com"));
        for i in 0..40u32 {
            let host = dns_name!(&format!("mx{i}.example.com"));
            z.add_rr(
                dns_name!("example.com"),
                3600,
                RData::Mx {
                    preference: 10,
                    exchange: host.clone(),
                },
            );
            z.add_rr(host, 300, RData::A(Ipv4Addr::from(0xc000_0200 + i)));
        }
        b.zone(z);
        let mut faults = FaultPlan::none();
        faults.dns.servfail_rate = 0.15;
        faults.dns.timeout_rate = 0.15;
        faults.dns.truncation_rate = 0.1;
        faults.seed = 13;
        b.faults(faults);
        let net = b.build();
        let r = net.resolver();
        let mx = r.resolve_mx(&dns_name!("example.com")).unwrap();
        assert_eq!(mx.targets.len(), 40);
        let resolved = mx.targets.iter().filter(|t| !t.addrs.is_empty()).count();
        assert!(resolved > 35, "resolved {resolved}/40");
        let s = r.stats();
        assert!(s.retries > 0, "fault rates must trigger retries");
        // Retry cost was charged to the simulated clock.
        assert!(net.clock().charged() > 0);
    }

    #[test]
    fn dns_fault_injection_is_deterministic() {
        let mk = || {
            let clock = SimClock::new();
            let mut b = SimNet::builder(clock);
            let mut z = Zone::new(dns_name!("example.com"));
            z.add_rr(
                dns_name!("example.com"),
                3600,
                RData::Mx {
                    preference: 10,
                    exchange: dns_name!("mx.example.com"),
                },
            );
            z.add_rr(dns_name!("mx.example.com"), 300, RData::A(ip("192.0.2.25")));
            b.zone(z);
            let mut faults = FaultPlan::none();
            faults.dns.timeout_rate = 0.5;
            faults.seed = 77;
            b.faults(faults);
            b.build()
        };
        let a = mk().resolver().resolve_mx(&dns_name!("example.com"));
        let b = mk().resolver().resolve_mx(&dns_name!("example.com"));
        assert_eq!(a, b, "same seed, same world, same outcome");
    }

    #[test]
    fn asn_lookup() {
        let net = small_net();
        assert_eq!(net.asn_of(ip("192.0.2.25")), Some(64500));
        assert_eq!(net.asn_of(ip("8.8.8.8")), None);
    }

    #[test]
    fn connections_are_isolated() {
        let net = small_net();
        let mut a = net.connect_smtp(ip("192.0.2.25")).unwrap();
        let mut b = net.connect_smtp(ip("192.0.2.25")).unwrap();
        a.read_reply().unwrap();
        b.read_reply().unwrap();
        a.write_line("EHLO one.test").unwrap();
        assert_eq!(a.read_reply().unwrap().code.0, 250);
        // Session B is unaffected by A's progress.
        b.write_line("MAIL FROM:<x@y.z>").unwrap();
        assert_eq!(b.read_reply().unwrap().code.0, 503);
    }
}
