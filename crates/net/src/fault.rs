//! Deterministic fault injection.
//!
//! Table 4 of the paper partitions each snapshot's domains by data
//! availability: *No Censys* (the IP never appears in scan data — owner
//! opt-out or persistent scanner blind spot), *No Port 25 Data* (scanned,
//! but the port was closed or the scan failed that day), and further
//! degradations (no valid certificate, no valid banner/EHLO). The fault
//! plan reproduces these modes deterministically from a seed so each
//! simulated snapshot has realistic, reproducible holes.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use mx_cert::fnv1a;

/// Deterministic per-IP fault configuration.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// IPs whose owner requested exclusion from scanning: they never appear
    /// in scan snapshots at all ("No Censys").
    pub blocked_ips: HashSet<Ipv4Addr>,
    /// IPs that never answer on the network (blackholed/unrouted).
    pub unreachable_ips: HashSet<Ipv4Addr>,
    /// Probability in `[0, 1]` that a given (ip, epoch) scan attempt fails
    /// transiently even though the host is up.
    pub scan_failure_rate: f64,
    /// Seed mixed into every deterministic coin flip.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Deterministic uniform draw in [0,1) for a keyed event.
    fn coin(&self, ip: Ipv4Addr, epoch: u64, salt: u64) -> f64 {
        let mut key = [0u8; 24];
        key[..4].copy_from_slice(&ip.octets());
        key[4..12].copy_from_slice(&epoch.to_be_bytes());
        key[12..20].copy_from_slice(&self.seed.to_be_bytes());
        key[16..24].copy_from_slice(&salt.to_be_bytes());
        (fnv1a(&key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Is this IP excluded from scanning entirely?
    pub fn is_blocked(&self, ip: Ipv4Addr) -> bool {
        self.blocked_ips.contains(&ip)
    }

    /// Is this IP unreachable on the network?
    pub fn is_unreachable(&self, ip: Ipv4Addr) -> bool {
        self.unreachable_ips.contains(&ip)
    }

    /// Does the scan of `ip` in scan round `epoch` fail transiently?
    pub fn scan_fails(&self, ip: Ipv4Addr, epoch: u64) -> bool {
        self.scan_failure_rate > 0.0 && self.coin(ip, epoch, 0xC0FFEE) < self.scan_failure_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn block_and_unreachable_sets() {
        let mut p = FaultPlan::none();
        p.blocked_ips.insert(ip("192.0.2.1"));
        p.unreachable_ips.insert(ip("192.0.2.2"));
        assert!(p.is_blocked(ip("192.0.2.1")));
        assert!(!p.is_blocked(ip("192.0.2.2")));
        assert!(p.is_unreachable(ip("192.0.2.2")));
    }

    #[test]
    fn scan_failure_deterministic() {
        let p = FaultPlan {
            scan_failure_rate: 0.5,
            seed: 7,
            ..FaultPlan::none()
        };
        let a = p.scan_fails(ip("10.0.0.1"), 3);
        for _ in 0..10 {
            assert_eq!(p.scan_fails(ip("10.0.0.1"), 3), a);
        }
    }

    #[test]
    fn scan_failure_rate_approximate() {
        let p = FaultPlan {
            scan_failure_rate: 0.2,
            seed: 42,
            ..FaultPlan::none()
        };
        let mut fails = 0;
        let n = 10_000;
        for i in 0..n {
            let addr = Ipv4Addr::from(0x0a00_0000u32 + i);
            if p.scan_fails(addr, 0) {
                fails += 1;
            }
        }
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn zero_rate_never_fails() {
        let p = FaultPlan::none();
        assert!(!p.scan_fails(ip("10.0.0.1"), 0));
    }

    #[test]
    fn different_epochs_differ() {
        let p = FaultPlan {
            scan_failure_rate: 0.5,
            seed: 1,
            ..FaultPlan::none()
        };
        // Across many IPs, epoch 0 and epoch 1 decisions must not be
        // identical wholesale.
        let mut diff = 0;
        for i in 0..1000u32 {
            let addr = Ipv4Addr::from(0x0b00_0000 + i);
            if p.scan_fails(addr, 0) != p.scan_fails(addr, 1) {
                diff += 1;
            }
        }
        assert!(diff > 100, "only {diff} decisions changed across epochs");
    }
}
