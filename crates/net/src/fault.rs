//! Deterministic fault injection.
//!
//! Table 4 of the paper partitions each snapshot's domains by data
//! availability: *No Censys* (the IP never appears in scan data — owner
//! opt-out or persistent scanner blind spot), *No Port 25 Data* (scanned,
//! but the port was closed or the scan failed that day), and further
//! degradations (no valid certificate, no valid banner/EHLO). The fault
//! plan reproduces these modes deterministically from a seed so each
//! simulated snapshot has realistic, reproducible holes.
//!
//! v2 layers a composable chaos engine on top of the original coarse
//! modes: keyed DNS faults on the authority path (SERVFAIL, timeout,
//! truncation), SMTP session faults (mid-session drop after the banner,
//! EHLO tarpit, TLS handshake failure, garbled banner), and per-IP
//! flakiness profiles that modulate the transient failure rate. Every
//! decision is a pure function of `(key, epoch, attempt, seed)` — no
//! global state, no RNG streams — so a run is bit-identical under
//! `mx_par` at any thread count, and retries (higher `attempt`) re-draw
//! the coin instead of replaying the same failure forever.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use mx_cert::fnv1a;

/// A fault injected on the DNS authority path as seen by the stub
/// resolver's transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsFault {
    /// The server answers with rcode SERVFAIL.
    ServFail,
    /// The query is dropped; the transport reports a timeout.
    Timeout,
    /// The response comes back with the TC bit set and an empty answer
    /// section (UDP truncation without a TCP fallback path).
    Truncation,
}

/// A fault injected into an SMTP session or scan attempt. `Transient`
/// is the pre-session connect-level coin; the rest corrupt an
/// established session in a specific, paper-relevant way.
///
/// This is the shared acquisition-fault vocabulary from `mx-acq` under
/// its measurement-side name; the plan never injects the DNS variant
/// here (DNS faults are [`DnsFault`] on the resolution path).
pub use mx_acq::AcqFault as ScanFault;

/// Keyed DNS fault rates, each in `[0, 1]`; their sum must be `<= 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DnsFaults {
    /// Probability a query draws a SERVFAIL answer.
    pub servfail_rate: f64,
    /// Probability a query is dropped (timeout).
    pub timeout_rate: f64,
    /// Probability a response comes back truncated.
    pub truncation_rate: f64,
}

impl DnsFaults {
    /// No DNS faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Total probability mass of any DNS fault.
    pub fn total(&self) -> f64 {
        self.servfail_rate + self.timeout_rate + self.truncation_rate
    }
}

/// Keyed SMTP session fault rates, each in `[0, 1]`; their sum must be
/// `<= 1`. Drawn once per established session (a single coin is
/// partitioned across the variants so at most one fires per attempt).
#[derive(Debug, Clone, Copy, Default)]
pub struct SmtpFaults {
    /// Probability the server drops the connection right after its banner.
    pub drop_after_banner_rate: f64,
    /// Probability the server tarpits the EHLO exchange.
    pub ehlo_tarpit_rate: f64,
    /// Probability the TLS handshake fails after STARTTLS is accepted.
    pub tls_handshake_rate: f64,
    /// Probability the banner arrives garbled.
    pub garbled_banner_rate: f64,
}

impl SmtpFaults {
    /// No SMTP session faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Total probability mass of any session fault.
    pub fn total(&self) -> f64 {
        self.drop_after_banner_rate
            + self.ehlo_tarpit_rate
            + self.tls_handshake_rate
            + self.garbled_banner_rate
    }
}

/// Per-IP transient-failure behaviour overriding the plan-wide
/// `scan_failure_rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlakinessProfile {
    /// The IP fails transiently at this fixed rate in every epoch.
    AlwaysFlaky {
        /// Per-attempt transient-failure probability.
        rate: f64,
    },
    /// The IP degrades over time: effective rate is
    /// `min(1, base + per_epoch * epoch)`. Models hosts that rot out of
    /// the population across the study window.
    Degrading {
        /// Failure rate at epoch 0.
        base: f64,
        /// Additional failure rate per epoch.
        per_epoch: f64,
    },
}

impl FlakinessProfile {
    /// Effective transient-failure rate at `epoch`.
    pub fn rate_at(&self, epoch: u64) -> f64 {
        match *self {
            FlakinessProfile::AlwaysFlaky { rate } => rate.clamp(0.0, 1.0),
            FlakinessProfile::Degrading { base, per_epoch } => {
                (base + per_epoch * epoch as f64).clamp(0.0, 1.0)
            }
        }
    }
}

/// Deterministic fault configuration (v2: layered chaos engine).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// IPs whose owner requested exclusion from scanning: they never appear
    /// in scan snapshots at all ("No Censys").
    pub blocked_ips: HashSet<Ipv4Addr>,
    /// IPs that never answer on the network (blackholed/unrouted).
    pub unreachable_ips: HashSet<Ipv4Addr>,
    /// Probability in `[0, 1]` that a given (ip, epoch) scan attempt fails
    /// transiently even though the host is up.
    pub scan_failure_rate: f64,
    /// Keyed faults on the DNS authority path.
    pub dns: DnsFaults,
    /// Keyed SMTP session faults.
    pub smtp: SmtpFaults,
    /// Per-IP flakiness overrides for the transient-failure coin.
    pub ip_profiles: HashMap<Ipv4Addr, FlakinessProfile>,
    /// Seed mixed into every deterministic coin flip.
    pub seed: u64,
}

/// Mixer folding a retry attempt into a coin's salt so each attempt
/// re-draws independently (odd multiplier: bijective over u64).
fn attempt_salt(salt: u64, attempt: u32) -> u64 {
    salt ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.blocked_ips.is_empty()
            && self.unreachable_ips.is_empty()
            && self.scan_failure_rate == 0.0
            && self.dns.total() == 0.0
            && self.smtp.total() == 0.0
            && self.ip_profiles.is_empty()
    }

    /// Deterministic uniform draw in [0,1) for an IP-keyed event.
    fn coin(&self, ip: Ipv4Addr, epoch: u64, salt: u64) -> f64 {
        // seed and salt occupy disjoint ranges: 28-byte key
        // (ip 0..4, epoch 4..12, seed 12..20, salt 20..28).
        let mut key = [0u8; 28];
        key[..4].copy_from_slice(&ip.octets());
        key[4..12].copy_from_slice(&epoch.to_be_bytes());
        key[12..20].copy_from_slice(&self.seed.to_be_bytes());
        key[20..28].copy_from_slice(&salt.to_be_bytes());
        (fnv1a(&key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Deterministic uniform draw in [0,1) for a string-keyed event
    /// (DNS names on the authority path).
    fn coin_str(&self, name: &str, epoch: u64, salt: u64) -> f64 {
        let mut key = Vec::with_capacity(name.len() + 24);
        key.extend_from_slice(name.as_bytes());
        key.extend_from_slice(&epoch.to_be_bytes());
        key.extend_from_slice(&self.seed.to_be_bytes());
        key.extend_from_slice(&salt.to_be_bytes());
        (fnv1a(&key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Is this IP excluded from scanning entirely?
    pub fn is_blocked(&self, ip: Ipv4Addr) -> bool {
        self.blocked_ips.contains(&ip)
    }

    /// Is this IP unreachable on the network?
    pub fn is_unreachable(&self, ip: Ipv4Addr) -> bool {
        self.unreachable_ips.contains(&ip)
    }

    /// Effective transient-failure rate for `ip` at `epoch`: the
    /// flakiness profile when one is registered, otherwise the
    /// plan-wide `scan_failure_rate`.
    pub fn transient_rate(&self, ip: Ipv4Addr, epoch: u64) -> f64 {
        match self.ip_profiles.get(&ip) {
            Some(p) => p.rate_at(epoch),
            None => self.scan_failure_rate,
        }
    }

    /// Does the scan of `ip` in scan round `epoch` fail transiently?
    /// (First attempt; retries should use [`FaultPlan::scan_fails_attempt`].)
    pub fn scan_fails(&self, ip: Ipv4Addr, epoch: u64) -> bool {
        self.scan_fails_attempt(ip, epoch, 0)
    }

    /// Does scan attempt number `attempt` (0-based) of `ip` in round
    /// `epoch` fail transiently? Each attempt is an independent draw at
    /// the same effective rate, so bounded retries can recover.
    pub fn scan_fails_attempt(&self, ip: Ipv4Addr, epoch: u64, attempt: u32) -> bool {
        let rate = self.transient_rate(ip, epoch);
        if rate <= 0.0 {
            return false;
        }
        mx_obs::counter!(mx_obs::names::FAULT_SCAN_COINS).incr();
        let fired = self.coin(ip, epoch, attempt_salt(0xC0FFEE, attempt)) < rate;
        if fired {
            mx_obs::counter!(mx_obs::names::FAULT_SCAN_FIRED).incr();
        }
        fired
    }

    /// Which DNS fault, if any, hits the query for `qname` in round
    /// `epoch` on transport attempt `attempt`? One coin partitioned
    /// across the variants: at most one fault per attempt.
    pub fn dns_fault(&self, qname: &str, epoch: u64, attempt: u32) -> Option<DnsFault> {
        if self.dns.total() <= 0.0 {
            return None;
        }
        mx_obs::counter!(mx_obs::names::FAULT_DNS_COINS).incr();
        let draw = self.coin_str(qname, epoch, attempt_salt(0xD0D0_D115, attempt));
        if draw < self.dns.total() {
            mx_obs::counter!(mx_obs::names::FAULT_DNS_FIRED).incr();
        }
        if draw < self.dns.servfail_rate {
            Some(DnsFault::ServFail)
        } else if draw < self.dns.servfail_rate + self.dns.timeout_rate {
            Some(DnsFault::Timeout)
        } else if draw < self.dns.total() {
            Some(DnsFault::Truncation)
        } else {
            None
        }
    }

    /// Which SMTP session fault, if any, hits the session with `ip` in
    /// round `epoch` on attempt `attempt`? One coin partitioned across
    /// the variants: at most one fault per attempt.
    pub fn smtp_fault(&self, ip: Ipv4Addr, epoch: u64, attempt: u32) -> Option<ScanFault> {
        if self.smtp.total() <= 0.0 {
            return None;
        }
        mx_obs::counter!(mx_obs::names::FAULT_SMTP_COINS).incr();
        let draw = self.coin(ip, epoch, attempt_salt(0x5E55_10F4, attempt));
        if draw < self.smtp.total() {
            mx_obs::counter!(mx_obs::names::FAULT_SMTP_FIRED).incr();
        }
        let s = &self.smtp;
        if draw < s.drop_after_banner_rate {
            Some(ScanFault::DropAfterBanner)
        } else if draw < s.drop_after_banner_rate + s.ehlo_tarpit_rate {
            Some(ScanFault::EhloTarpit)
        } else if draw < s.drop_after_banner_rate + s.ehlo_tarpit_rate + s.tls_handshake_rate {
            Some(ScanFault::TlsHandshake)
        } else if draw < s.total() {
            Some(ScanFault::GarbledBanner)
        } else {
            None
        }
    }
}

/// A fault injected into one serving-side transport connection.
///
/// This extends the plan's pure-coin style from the *measurement*
/// transports (DNS/SMTP) to the *serving* transport (`mx-serve`): the
/// same mail-measurement system that tolerates dead primaries and
/// tarpitting banners must also survive slow, broken and hostile HTTP
/// clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnFault {
    /// The client's bytes arrive one at a time (segment boundaries are
    /// shredded but timing is unchanged) — a benign fault: a correct
    /// incremental parser must produce byte-identical responses.
    Dribble,
    /// The client disconnects mid-request after a coin-chosen fraction
    /// of its bytes.
    Disconnect,
    /// The client leads with a burst of garbage bytes before (what
    /// would have been) its request.
    Garbage,
    /// The client sends a request prefix and then stalls forever
    /// (slowloris); the server's read deadline must evict it.
    Stall,
}

/// Keyed connection fault rates, each in `[0, 1]`; their sum must be
/// `<= 1`. One coin per connection, partitioned across the variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnFaults {
    /// Probability a connection's bytes are dribbled one at a time.
    pub dribble_rate: f64,
    /// Probability the client disconnects mid-request.
    pub disconnect_rate: f64,
    /// Probability the client leads with garbage bytes.
    pub garbage_rate: f64,
    /// Probability the client stalls mid-request without closing.
    pub stall_rate: f64,
}

impl ConnFaults {
    /// No connection faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Total probability mass of any connection fault.
    pub fn total(&self) -> f64 {
        self.dribble_rate + self.disconnect_rate + self.garbage_rate + self.stall_rate
    }
}

/// Deterministic chaos plan for serving-side connections. Every
/// decision is a pure function of `(conn_id, seed)` — same coin
/// discipline as [`FaultPlan`], so a replayed request trace draws the
/// identical fault set at any thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnFaultPlan {
    /// Keyed connection fault rates.
    pub conn: ConnFaults,
    /// Seed mixed into every coin flip.
    pub seed: u64,
}

impl ConnFaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        Self::default()
    }

    /// Uniform rates: total mass `rate`, split evenly across the four
    /// variants — the shape the chaos sweep in `scripts/ci.sh` uses.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        let quarter = rate.clamp(0.0, 1.0) / 4.0;
        ConnFaultPlan {
            conn: ConnFaults {
                dribble_rate: quarter,
                disconnect_rate: quarter,
                garbage_rate: quarter,
                stall_rate: quarter,
            },
            seed,
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.conn.total() == 0.0
    }

    /// Deterministic uniform draw in [0,1) for a connection-keyed event.
    fn coin(&self, conn_id: u64, salt: u64) -> f64 {
        let mut key = [0u8; 24];
        key[..8].copy_from_slice(&conn_id.to_be_bytes());
        key[8..16].copy_from_slice(&self.seed.to_be_bytes());
        key[16..24].copy_from_slice(&salt.to_be_bytes());
        (fnv1a(&key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Which fault, if any, hits connection `conn_id`? One coin
    /// partitioned across the variants: at most one fault per
    /// connection.
    pub fn conn_fault(&self, conn_id: u64) -> Option<ConnFault> {
        if self.conn.total() <= 0.0 {
            return None;
        }
        mx_obs::counter!(mx_obs::names::FAULT_CONN_COINS).incr();
        let draw = self.coin(conn_id, 0xC0_11EC7);
        if draw < self.conn.total() {
            mx_obs::counter!(mx_obs::names::FAULT_CONN_FIRED).incr();
        }
        let c = &self.conn;
        if draw < c.dribble_rate {
            Some(ConnFault::Dribble)
        } else if draw < c.dribble_rate + c.disconnect_rate {
            Some(ConnFault::Disconnect)
        } else if draw < c.dribble_rate + c.disconnect_rate + c.garbage_rate {
            Some(ConnFault::Garbage)
        } else if draw < c.total() {
            Some(ConnFault::Stall)
        } else {
            None
        }
    }

    /// Deterministic cut fraction in [0.1, 0.9] for `Disconnect` and
    /// `Stall`: how much of the client's byte stream survives.
    pub fn cut_fraction(&self, conn_id: u64) -> f64 {
        0.1 + 0.8 * self.coin(conn_id, 0xD15C_0111)
    }

    /// Deterministic garbage prefix for `Garbage` connections: between
    /// 1 and 32 bytes derived from the coin stream, never containing
    /// CR/LF (so the garbage corrupts the request line instead of
    /// terminating it).
    pub fn garbage_bytes(&self, conn_id: u64) -> Vec<u8> {
        let len = 1 + (self.coin(conn_id, 0x6A8_BA6E) * 31.0).floor() as usize;
        let mut out = Vec::with_capacity(32);
        for i in 0..len {
            let draw = self.coin(conn_id, 0x6A8_0000 ^ i as u64);
            let b = 0x80u8.wrapping_add(((draw * 120.0).floor() as u64 & 0x7F) as u8);
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn block_and_unreachable_sets() {
        let mut p = FaultPlan::none();
        p.blocked_ips.insert(ip("192.0.2.1"));
        p.unreachable_ips.insert(ip("192.0.2.2"));
        assert!(p.is_blocked(ip("192.0.2.1")));
        assert!(!p.is_blocked(ip("192.0.2.2")));
        assert!(p.is_unreachable(ip("192.0.2.2")));
        assert!(!p.is_quiet());
        assert!(FaultPlan::none().is_quiet());
    }

    #[test]
    fn scan_failure_deterministic() {
        let p = FaultPlan {
            scan_failure_rate: 0.5,
            seed: 7,
            ..FaultPlan::none()
        };
        let a = p.scan_fails(ip("10.0.0.1"), 3);
        for _ in 0..10 {
            assert_eq!(p.scan_fails(ip("10.0.0.1"), 3), a);
        }
    }

    #[test]
    fn scan_failure_rate_approximate() {
        let p = FaultPlan {
            scan_failure_rate: 0.2,
            seed: 42,
            ..FaultPlan::none()
        };
        let mut fails = 0;
        let n = 10_000;
        for i in 0..n {
            let addr = Ipv4Addr::from(0x0a00_0000u32 + i);
            if p.scan_fails(addr, 0) {
                fails += 1;
            }
        }
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn zero_rate_never_fails() {
        let p = FaultPlan::none();
        assert!(!p.scan_fails(ip("10.0.0.1"), 0));
    }

    #[test]
    fn different_epochs_differ() {
        let p = FaultPlan {
            scan_failure_rate: 0.5,
            seed: 1,
            ..FaultPlan::none()
        };
        // Across many IPs, epoch 0 and epoch 1 decisions must not be
        // identical wholesale.
        let mut diff = 0;
        for i in 0..1000u32 {
            let addr = Ipv4Addr::from(0x0b00_0000 + i);
            if p.scan_fails(addr, 0) != p.scan_fails(addr, 1) {
                diff += 1;
            }
        }
        assert!(diff > 100, "only {diff} decisions changed across epochs");
    }

    /// Regression for the v1 key-overlap bug: seed bytes 12..20 and
    /// salt bytes 16..24 overlapped, so the salt clobbered the low half
    /// of the seed. Two seeds sharing a high half but differing in the
    /// low half must produce different draw sets.
    #[test]
    fn seeds_differing_only_in_low_half_produce_different_draws() {
        let mk = |seed: u64| FaultPlan {
            scan_failure_rate: 0.5,
            seed,
            ..FaultPlan::none()
        };
        // Same high 32 bits, different low 32 bits: under the buggy
        // 24-byte key these were indistinguishable for every salted coin.
        let a = mk(0x1234_5678_0000_0001);
        let b = mk(0x1234_5678_0000_0002);
        let mut diff = 0;
        for i in 0..1000u32 {
            let addr = Ipv4Addr::from(0x0c00_0000 + i);
            if a.scan_fails(addr, 0) != b.scan_fails(addr, 0) {
                diff += 1;
            }
        }
        assert!(diff > 100, "only {diff} decisions changed between seeds");
    }

    #[test]
    fn attempts_redraw_independently() {
        let p = FaultPlan {
            scan_failure_rate: 0.5,
            seed: 3,
            ..FaultPlan::none()
        };
        // With three attempts at rate 0.5, nearly all IPs should see at
        // least one success and at least one failure somewhere.
        let mut recovered = 0;
        let mut failed_once = 0;
        for i in 0..1000u32 {
            let addr = Ipv4Addr::from(0x0d00_0000 + i);
            let fails: Vec<bool> = (0..3).map(|a| p.scan_fails_attempt(addr, 0, a)).collect();
            if fails[0] {
                failed_once += 1;
                if !fails.iter().all(|&f| f) {
                    recovered += 1;
                }
            }
        }
        assert!(failed_once > 300, "first-attempt failures: {failed_once}");
        // P(recover | first failed) = 1 - 0.25 = 0.75.
        assert!(
            recovered as f64 / failed_once as f64 > 0.6,
            "{recovered}/{failed_once} recovered"
        );
    }

    #[test]
    fn dns_fault_partition_and_determinism() {
        let p = FaultPlan {
            dns: DnsFaults {
                servfail_rate: 0.2,
                timeout_rate: 0.2,
                truncation_rate: 0.2,
            },
            seed: 9,
            ..FaultPlan::none()
        };
        let mut counts = HashMap::new();
        for i in 0..3000 {
            let name = format!("mx{i}.example.com");
            let f = p.dns_fault(&name, 0, 0);
            assert_eq!(f, p.dns_fault(&name, 0, 0), "non-deterministic draw");
            *counts.entry(f).or_insert(0usize) += 1;
        }
        // Each bucket should land near rate 0.2 of 3000 = 600.
        for fault in [DnsFault::ServFail, DnsFault::Timeout, DnsFault::Truncation] {
            let n = counts.get(&Some(fault)).copied().unwrap_or(0);
            assert!((400..800).contains(&n), "{fault:?}: {n}");
        }
        let clean = counts.get(&None).copied().unwrap_or(0);
        assert!((1000..1400).contains(&clean), "clean: {clean}");
        // Quiet plan never faults.
        assert_eq!(FaultPlan::none().dns_fault("a.example", 0, 0), None);
    }

    #[test]
    fn smtp_fault_partition() {
        let p = FaultPlan {
            smtp: SmtpFaults {
                drop_after_banner_rate: 0.1,
                ehlo_tarpit_rate: 0.1,
                tls_handshake_rate: 0.1,
                garbled_banner_rate: 0.1,
            },
            seed: 11,
            ..FaultPlan::none()
        };
        let mut counts = HashMap::new();
        for i in 0..4000u32 {
            let addr = Ipv4Addr::from(0x0e00_0000 + i);
            *counts.entry(p.smtp_fault(addr, 2, 0)).or_insert(0usize) += 1;
        }
        for fault in [
            ScanFault::DropAfterBanner,
            ScanFault::EhloTarpit,
            ScanFault::TlsHandshake,
            ScanFault::GarbledBanner,
        ] {
            let n = counts.get(&Some(fault)).copied().unwrap_or(0);
            assert!((250..550).contains(&n), "{fault:?}: {n}");
        }
        assert_eq!(FaultPlan::none().smtp_fault(ip("10.1.1.1"), 0, 0), None);
    }

    #[test]
    fn conn_fault_partition_and_determinism() {
        let p = ConnFaultPlan::uniform(0.4, 13);
        let mut counts = HashMap::new();
        for id in 0..4000u64 {
            let f = p.conn_fault(id);
            assert_eq!(f, p.conn_fault(id), "non-deterministic draw");
            *counts.entry(f).or_insert(0usize) += 1;
        }
        for fault in [
            ConnFault::Dribble,
            ConnFault::Disconnect,
            ConnFault::Garbage,
            ConnFault::Stall,
        ] {
            let n = counts.get(&Some(fault)).copied().unwrap_or(0);
            assert!((250..550).contains(&n), "{fault:?}: {n}");
        }
        assert_eq!(ConnFaultPlan::none().conn_fault(7), None);
        assert!(ConnFaultPlan::none().is_quiet());
        assert!(!p.is_quiet());
    }

    #[test]
    fn conn_fault_helpers_bounded_and_deterministic() {
        let p = ConnFaultPlan::uniform(1.0, 99);
        for id in 0..500u64 {
            let f = p.cut_fraction(id);
            assert!((0.1..=0.9).contains(&f), "cut fraction {f}");
            assert_eq!(p.cut_fraction(id), f);
            let g = p.garbage_bytes(id);
            assert!((1..=32).contains(&g.len()), "garbage len {}", g.len());
            assert!(g.iter().all(|&b| b != b'\r' && b != b'\n'));
            assert_eq!(p.garbage_bytes(id), g);
        }
    }

    #[test]
    fn flakiness_profiles_override_plan_rate() {
        let mut p = FaultPlan {
            scan_failure_rate: 0.0,
            seed: 5,
            ..FaultPlan::none()
        };
        p.ip_profiles
            .insert(ip("10.9.9.9"), FlakinessProfile::AlwaysFlaky { rate: 1.0 });
        p.ip_profiles.insert(
            ip("10.9.9.10"),
            FlakinessProfile::Degrading {
                base: 0.0,
                per_epoch: 0.5,
            },
        );
        // AlwaysFlaky at rate 1.0 fails every attempt in every epoch.
        for attempt in 0..4 {
            assert!(p.scan_fails_attempt(ip("10.9.9.9"), 0, attempt));
            assert!(p.scan_fails_attempt(ip("10.9.9.9"), 7, attempt));
        }
        // Degrading: rate 0 at epoch 0, rate 1 from epoch 2 on.
        assert!(!p.scan_fails(ip("10.9.9.10"), 0));
        assert!(p.scan_fails(ip("10.9.9.10"), 2));
        assert_eq!(p.transient_rate(ip("10.9.9.10"), 1), 0.5);
        // Unprofiled IPs keep the plan-wide rate (zero here).
        assert!(!p.scan_fails(ip("10.0.0.1"), 0));
    }
}
