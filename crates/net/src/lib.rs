//! # mx-net — the simulated Internet
//!
//! The paper's pipeline joins two third-party data sources: **OpenINTEL**
//! (daily active DNS measurements: MX records of target domains and the A
//! records of the names inside them) and **Censys** (Internet-wide port-25
//! scans capturing banner, EHLO and STARTTLS certificates). Neither
//! longitudinal corpus is publicly re-obtainable, so this crate provides
//! the substrate both were built on: an Internet.
//!
//! * [`SimNet`] — the simulated network: an authoritative DNS tree
//!   ([`mx_dns::Authority`]), SMTP hosts keyed by IPv4 address, a global
//!   routing table ([`mx_asn::AsTable`]), a shared [`mx_dns::SimClock`],
//!   and a [`FaultPlan`];
//! * [`FaultPlan`] — deterministic fault injection reproducing the
//!   coverage gaps of Table 4: IPs whose owners opted out of scanning,
//!   unreachable hosts, and per-epoch intermittent scan failures;
//! * [`Scanner`] — the Censys analogue: drives a real
//!   [`mx_smtp::SmtpClient`] session against every target IP and records
//!   [`mx_smtp::SmtpScanData`] (or the failure mode) into a [`ScanSnapshot`];
//! * [`openintel`] — the OpenINTEL analogue: resolves MX + A records for a
//!   target-domain list through a caching [`mx_dns::StubResolver`] over the
//!   simulated network, producing [`openintel::DnsSnapshot`] rows.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod openintel;
pub mod scanner;
pub mod simnet;

pub use fault::{
    ConnFault, ConnFaultPlan, ConnFaults, DnsFault, DnsFaults, FaultPlan, FlakinessProfile,
    ScanFault, SmtpFaults,
};
pub use openintel::{DnsDegradation, DnsSnapshot, MxMeasurement};
pub use scanner::{Missed, PortState, ScanObservation, ScanSnapshot, Scanner};
pub use simnet::{ConnectError, SimNet, SimNetBuilder};
