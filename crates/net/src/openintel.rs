//! The OpenINTEL-like active DNS measurement.
//!
//! OpenINTEL structurally queries large domain lists daily for sets of
//! resource records; the paper extracts "the MX records associated with the
//! target domains, as well as the IP addresses to which the names in those
//! MX records resolved" (§4.3). This module performs exactly that
//! measurement against the simulated network.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use mx_dns::resolver::{MxTarget, ResolveError};
use mx_dns::{Name, Timestamp};

use crate::simnet::SimNet;

/// MX measurement outcome for one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MxMeasurement {
    /// MX records found (each with the A-resolution of its exchange;
    /// an exchange that did not resolve has an empty address list).
    Records {
        /// The measured targets, sorted by (preference, exchange).
        targets: Vec<SerializableMxTarget>,
        /// An RFC 7505 null MX was published.
        null_mx: bool,
    },
    /// The domain has no MX records (NODATA) or does not exist.
    NoMx,
    /// The measurement failed (resolver/transport error).
    Error(String),
}

/// Serde-friendly mirror of [`MxTarget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializableMxTarget {
    /// MX preference (lowest wins).
    pub preference: u16,
    /// The exchange hostname.
    pub exchange: Name,
    /// IPv4 addresses the exchange resolved to.
    pub addrs: Vec<Ipv4Addr>,
}

impl From<MxTarget> for SerializableMxTarget {
    fn from(t: MxTarget) -> Self {
        SerializableMxTarget {
            preference: t.preference,
            exchange: t.exchange,
            addrs: t.addrs,
        }
    }
}

impl MxMeasurement {
    /// The targets, when records were found.
    pub fn targets(&self) -> &[SerializableMxTarget] {
        match self {
            MxMeasurement::Records { targets, .. } => targets,
            _ => &[],
        }
    }

    /// The most-preferred targets (the paper attributes a domain's provider
    /// to the MX record(s) with the highest priority = lowest preference).
    pub fn primary_targets(&self) -> &[SerializableMxTarget] {
        let targets = self.targets();
        let Some(best) = targets.first().map(|t| t.preference) else {
            return &[];
        };
        let end = targets
            .iter()
            .position(|t| t.preference != best)
            .unwrap_or(targets.len());
        &targets[..end]
    }

    /// Did the domain publish at least one usable MX record?
    pub fn has_mx(&self) -> bool {
        !self.targets().is_empty()
    }
}

/// How a domain's DNS measurement degraded: retry cost and, when the
/// lookup ultimately failed, the terminal error.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DnsDegradation {
    /// Extra transport attempts (retries) across the domain's lookups.
    pub retries: u32,
    /// Some lookup ultimately failed despite the retry budget.
    pub exhausted: bool,
    /// The terminal error of the first failing lookup, when any.
    pub error: Option<ResolveError>,
}

/// One day's DNS measurement over a target list.
#[derive(Debug, Clone)]
pub struct DnsSnapshot {
    /// The simulated measurement date.
    pub date: Timestamp,
    /// Per-domain results, in domain order.
    pub rows: BTreeMap<Name, MxMeasurement>,
    /// Domains whose measurement needed retries or lost data to faults.
    pub degraded: BTreeMap<Name, DnsDegradation>,
}

impl DnsSnapshot {
    /// All distinct IPs seen across MX targets (the scanner's target list).
    pub fn all_mx_ips(&self) -> Vec<Ipv4Addr> {
        let mut ips: Vec<Ipv4Addr> = self
            .rows
            .values()
            .flat_map(|m| m.targets().iter().flat_map(|t| t.addrs.iter().copied()))
            .collect();
        ips.sort();
        ips.dedup();
        ips
    }

    /// Number of domains with at least one MX target.
    pub fn domains_with_mx(&self) -> usize {
        self.rows.values().filter(|m| m.has_mx()).count()
    }
}

/// Measure the MX configuration of every domain in `domains`.
///
/// A shared caching resolver is used across the run (the measurement
/// platform batches queries); per-domain failures are recorded, never
/// propagated.
pub fn measure(net: &SimNet, domains: &[Name]) -> DnsSnapshot {
    let resolver = net.resolver();
    let mut rows = BTreeMap::new();
    let mut degraded = BTreeMap::new();
    for domain in domains {
        let row = match resolver.resolve_mx(domain) {
            Ok(mx) => {
                if !mx.degraded.is_empty() {
                    let retries = mx.degraded.iter().map(|d| d.retries).sum();
                    let error = mx.degraded.iter().find_map(|d| d.error.clone());
                    degraded.insert(
                        domain.clone(),
                        DnsDegradation {
                            retries,
                            exhausted: error.is_some(),
                            error,
                        },
                    );
                }
                if mx.targets.is_empty() && !mx.null_mx {
                    MxMeasurement::NoMx
                } else {
                    MxMeasurement::Records {
                        targets: mx.targets.into_iter().map(Into::into).collect(),
                        null_mx: mx.null_mx,
                    }
                }
            }
            Err(e) => {
                let retries = resolver.last_lookup_retries();
                let row = match &e {
                    ResolveError::NxDomain(_) => MxMeasurement::NoMx,
                    other => MxMeasurement::Error(other.to_string()),
                };
                if retries > 0 || !matches!(e, ResolveError::NxDomain(_)) {
                    degraded.insert(
                        domain.clone(),
                        DnsDegradation {
                            retries,
                            exhausted: !matches!(e, ResolveError::NxDomain(_)),
                            error: Some(e),
                        },
                    );
                }
                row
            }
        };
        rows.insert(domain.clone(), row);
    }
    DnsSnapshot {
        date: net.clock().now(),
        rows,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_dns::{dns_name, RData, SimClock, Zone};
    use mx_smtp::SmtpServerConfig;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn net() -> SimNet {
        let clock = SimClock::starting_at(Timestamp::from_ymd(2021, 6, 8));
        let mut b = SimNet::builder(clock);
        let mut z = Zone::new(dns_name!("example.com"));
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx1.example.com"),
            },
        );
        z.add_rr(
            dns_name!("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: dns_name!("mx2.example.com"),
            },
        );
        z.add_rr(dns_name!("mx1.example.com"), 300, RData::A(ip("192.0.2.1")));
        z.add_rr(dns_name!("mx2.example.com"), 300, RData::A(ip("192.0.2.2")));
        b.zone(z);
        let mut w = Zone::new(dns_name!("web-only.com"));
        w.add_rr(dns_name!("web-only.com"), 300, RData::A(ip("192.0.2.80")));
        b.zone(w);
        let mut n = Zone::new(dns_name!("nullmx.com"));
        n.add_rr(
            dns_name!("nullmx.com"),
            300,
            RData::Mx {
                preference: 0,
                exchange: Name::root(),
            },
        );
        b.zone(n);
        let mut d = Zone::new(dns_name!("dangling.com"));
        d.add_rr(
            dns_name!("dangling.com"),
            300,
            RData::Mx {
                preference: 5,
                exchange: dns_name!("gone.dangling.com"),
            },
        );
        b.zone(d);
        b.smtp_host(ip("192.0.2.1"), SmtpServerConfig::plain("mx1.example.com"));
        b.smtp_host(ip("192.0.2.2"), SmtpServerConfig::plain("mx2.example.com"));
        b.build()
    }

    #[test]
    fn measures_mx_and_addresses() {
        let net = net();
        let snap = measure(
            &net,
            &[
                dns_name!("example.com"),
                dns_name!("web-only.com"),
                dns_name!("nonexistent.com"),
                dns_name!("nullmx.com"),
                dns_name!("dangling.com"),
            ],
        );
        assert_eq!(snap.date, Timestamp::from_ymd(2021, 6, 8));
        let ex = &snap.rows[&dns_name!("example.com")];
        assert_eq!(ex.targets().len(), 2);
        assert_eq!(ex.primary_targets().len(), 2, "equal preference");
        assert!(ex.has_mx());
        assert_eq!(snap.rows[&dns_name!("web-only.com")], MxMeasurement::NoMx);
        assert_eq!(snap.rows[&dns_name!("nonexistent.com")], MxMeasurement::NoMx);
        match &snap.rows[&dns_name!("nullmx.com")] {
            MxMeasurement::Records { targets, null_mx } => {
                assert!(targets.is_empty());
                assert!(null_mx);
            }
            other => panic!("{other:?}"),
        }
        // Dangling MX: target recorded, no addresses ("No MX IP" bucket).
        let d = &snap.rows[&dns_name!("dangling.com")];
        assert_eq!(d.targets().len(), 1);
        assert!(d.targets()[0].addrs.is_empty());
    }

    #[test]
    fn degradation_recorded_under_dns_faults() {
        let clock = SimClock::starting_at(Timestamp::from_ymd(2021, 6, 8));
        let mut b = SimNet::builder(clock);
        let mut z = Zone::new(dns_name!("example.com"));
        for i in 0..30u32 {
            let host = dns_name!(&format!("mx{i}.example.com"));
            z.add_rr(
                dns_name!(&format!("d{i}.example.com")),
                3600,
                RData::Mx {
                    preference: 10,
                    exchange: host.clone(),
                },
            );
            z.add_rr(host, 300, RData::A(ip("192.0.2.1")));
        }
        b.zone(z);
        let mut faults = crate::fault::FaultPlan::none();
        faults.dns.timeout_rate = 0.3;
        faults.seed = 19;
        b.faults(faults);
        let net = b.build();
        let domains: Vec<Name> = (0..30)
            .map(|i| dns_name!(&format!("d{i}.example.com")))
            .collect();
        let snap = measure(&net, &domains);
        assert_eq!(snap.rows.len(), 30);
        assert!(!snap.degraded.is_empty(), "timeouts must leave traces");
        let recovered = snap
            .degraded
            .values()
            .filter(|d| d.retries > 0 && !d.exhausted)
            .count();
        assert!(recovered > 0, "some lookups must recover on retry");
        // Every degraded-but-recovered domain still has its records.
        for (name, d) in &snap.degraded {
            if !d.exhausted {
                assert!(snap.rows[name].has_mx(), "{name} lost data despite recovery");
            }
        }
    }

    #[test]
    fn all_mx_ips_deduplicated() {
        let net = net();
        let snap = measure(&net, &[dns_name!("example.com"), dns_name!("dangling.com")]);
        assert_eq!(snap.all_mx_ips(), vec![ip("192.0.2.1"), ip("192.0.2.2")]);
        assert_eq!(snap.domains_with_mx(), 2);
    }
}
