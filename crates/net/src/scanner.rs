//! The Censys-like Internet scanner.
//!
//! For every target IP the scanner opens a real SMTP session over the
//! simulated network, records the banner, sends EHLO, records the response,
//! attempts STARTTLS when advertised, records the presented certificate
//! chain, and politely QUITs. Coverage gaps (owner opt-outs, transient
//! failures, closed ports) mirror the modes the paper attributes to Censys
//! in §4.2.2 and Table 4.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use mx_smtp::{ClientError, Extension, SmtpClient, SmtpScanData, StartTlsOutcome};

use crate::simnet::{ConnectError, SimNet};

/// Port-25 state observed for one IP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortState {
    /// TCP connect failed (host down / refused).
    Closed,
    /// Connected, but the application-layer conversation failed before a
    /// banner was captured.
    NoBanner,
    /// Full or partial application data captured.
    Open(SmtpScanData),
}

impl PortState {
    /// Application data, if any.
    pub fn data(&self) -> Option<&SmtpScanData> {
        match self {
            PortState::Open(d) => Some(d),
            _ => None,
        }
    }
}

/// One scan round's results. IPs absent from `results` were not covered at
/// all (blocked by owner request, or the scanner failed that round) — the
/// "No Censys" bucket.
#[derive(Debug, Clone, Default)]
pub struct ScanSnapshot {
    /// Scan round number (one per simulated snapshot date).
    pub epoch: u64,
    /// Per-IP port state; absent IPs were not covered at all.
    pub results: HashMap<Ipv4Addr, PortState>,
}

impl ScanSnapshot {
    /// Was the IP covered by this scan at all?
    pub fn covered(&self, ip: Ipv4Addr) -> bool {
        self.results.contains_key(&ip)
    }

    /// The port state, if covered.
    pub fn get(&self, ip: Ipv4Addr) -> Option<&PortState> {
        self.results.get(&ip)
    }

    /// Application data for an IP, if the port was open and spoke SMTP.
    pub fn data(&self, ip: Ipv4Addr) -> Option<&SmtpScanData> {
        self.get(ip).and_then(PortState::data)
    }

    /// Count of IPs with open, speaking SMTP servers.
    pub fn open_count(&self) -> usize {
        self.results
            .values()
            .filter(|s| matches!(s, PortState::Open(_)))
            .count()
    }
}

/// The scanner. Stateless besides configuration.
#[derive(Debug, Clone)]
pub struct Scanner {
    /// The client identity used in EHLO (Censys scans identify themselves).
    pub ehlo_name: String,
    /// Number of worker threads for large scans; `0` (the default)
    /// inherits the shared pool's configuration (`MX_THREADS` or an
    /// enclosing `mx_par::install`).
    pub parallelism: usize,
}

impl Default for Scanner {
    fn default() -> Self {
        Scanner {
            ehlo_name: "scanner.sim.internal".into(),
            parallelism: 0,
        }
    }
}

impl Scanner {
    /// A scanner with default identity and parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scan one IP, honouring the fault plan.
    /// Returns `None` when the IP is not covered this round ("No Censys").
    pub fn scan_ip(&self, net: &SimNet, ip: Ipv4Addr, epoch: u64) -> Option<PortState> {
        let faults = net.faults();
        if faults.is_blocked(ip) || faults.scan_fails(ip, epoch) {
            return None;
        }
        let conn = match net.connect_smtp(ip) {
            Ok(c) => c,
            Err(ConnectError::NoRoute(_))
            | Err(ConnectError::Unreachable(_))
            | Err(ConnectError::PortClosed(_)) => return Some(PortState::Closed),
        };
        let (mut client, _greeted_ok) = match SmtpClient::connect_raw(conn) {
            Ok(pair) => pair,
            Err(_) => return Some(PortState::NoBanner),
        };
        let banner = strip_code(client.banner());
        let mut data = SmtpScanData {
            banner,
            ehlo: None,
            ehlo_keywords: Vec::new(),
            starttls: StartTlsOutcome::NotOffered,
        };
        match client.ehlo(&self.ehlo_name) {
            Ok((reply, extensions)) => {
                data.ehlo = Some(reply.lines[0].clone());
                data.ehlo_keywords = reply.lines[1..].to_vec();
                if extensions.contains(&Extension::StartTls) {
                    data.starttls = match client.starttls() {
                        Ok(chain) => StartTlsOutcome::Completed { chain },
                        Err(ClientError::TlsFailed(_)) => StartTlsOutcome::Failed,
                        Err(_) => StartTlsOutcome::Failed,
                    };
                }
            }
            Err(_) => {
                // Banner captured; EHLO failed (tarpit or closed mid-way).
            }
        }
        let _ = client.quit();
        Some(PortState::Open(data))
    }

    /// Scan a set of IPs, fanning out over the shared `mx_par` pool when
    /// large. Each IP's result depends only on `(ip, epoch)` and the
    /// immutable network, so the snapshot is identical to a serial scan
    /// at any thread count.
    pub fn scan(&self, net: &SimNet, ips: &[Ipv4Addr], epoch: u64) -> ScanSnapshot {
        let mut snapshot = ScanSnapshot {
            epoch,
            results: HashMap::with_capacity(ips.len()),
        };
        let threads = if self.parallelism == 0 {
            mx_par::threads()
        } else {
            self.parallelism
        };
        if ips.len() < 256 || threads <= 1 {
            for &ip in ips {
                if let Some(state) = self.scan_ip(net, ip, epoch) {
                    snapshot.results.insert(ip, state);
                }
            }
            return snapshot;
        }
        let results = mx_par::install(threads, || {
            mx_par::par_map(ips, |&ip| self.scan_ip(net, ip, epoch).map(|st| (ip, st)))
        });
        snapshot.results.extend(results.into_iter().flatten());
        snapshot
    }

    /// Scan every SMTP-capable host attached to the network (plus any
    /// explicitly provided silent hosts are naturally covered through
    /// `host_ips`). This is the "Internet-wide" sweep.
    pub fn sweep(&self, net: &SimNet, epoch: u64) -> ScanSnapshot {
        let mut ips: Vec<Ipv4Addr> = net.host_ips().collect();
        ips.sort();
        self.scan(net, &ips, epoch)
    }
}

/// The banner/EHLO text without the reply code prefix.
fn strip_code(reply: &mx_smtp::Reply) -> String {
    reply.first_line().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use mx_cert::{CertificateBuilder, KeyId};
    use mx_dns::SimClock;
    use mx_smtp::{ServerQuirks, SmtpServerConfig};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn net_with_hosts() -> SimNet {
        let mut b = SimNet::builder(SimClock::new());
        // TLS-enabled provider server.
        let chain = vec![CertificateBuilder::new(1, KeyId(5))
            .common_name("mx.provider.com")
            .self_signed()];
        b.smtp_host(
            ip("10.0.0.1"),
            SmtpServerConfig::with_tls("mx.provider.com", chain),
        );
        // Plain server with a junk banner.
        let mut junk = SmtpServerConfig::plain("IP-10-0-0-2");
        junk.ehlo_host = "IP-10-0-0-2".into();
        b.smtp_host(ip("10.0.0.2"), junk);
        // Web server, no SMTP.
        b.silent_host(ip("10.0.0.3"));
        // Tarpit.
        let mut tarpit = SmtpServerConfig::plain("busy.example");
        tarpit.quirks = ServerQuirks {
            close_on_connect: true,
            starttls_rejects: false,
        };
        b.smtp_host(ip("10.0.0.4"), tarpit);
        b.build()
    }

    #[test]
    fn sweep_captures_everything() {
        let net = net_with_hosts();
        let snap = Scanner::new().sweep(&net, 0);
        assert_eq!(snap.results.len(), 4);
        // Provider: full data with cert chain.
        let d = snap.data(ip("10.0.0.1")).unwrap();
        assert_eq!(d.banner_host(), Some("mx.provider.com"));
        assert_eq!(d.ehlo_host(), Some("mx.provider.com"));
        let chain = d.starttls.chain().unwrap();
        assert_eq!(chain[0].subject_cn.as_deref(), Some("mx.provider.com"));
        // Junk banner captured verbatim.
        let d2 = snap.data(ip("10.0.0.2")).unwrap();
        assert_eq!(d2.banner_host(), Some("IP-10-0-0-2"));
        assert_eq!(d2.starttls, StartTlsOutcome::NotOffered);
        // No SMTP -> Closed.
        assert_eq!(snap.get(ip("10.0.0.3")), Some(&PortState::Closed));
        // Tarpit: 421 banner captured, no EHLO data.
        let d4 = snap.data(ip("10.0.0.4")).unwrap();
        assert!(d4.banner.contains("busy.example"));
        assert_eq!(d4.ehlo, None);
    }

    #[test]
    fn blocked_ips_missing_from_snapshot() {
        let mut b = SimNet::builder(SimClock::new());
        b.smtp_host(ip("10.0.0.1"), SmtpServerConfig::plain("a.example"));
        b.smtp_host(ip("10.0.0.2"), SmtpServerConfig::plain("b.example"));
        let mut faults = FaultPlan::none();
        faults.blocked_ips.insert(ip("10.0.0.2"));
        b.faults(faults);
        let net = b.build();
        let snap = Scanner::new().sweep(&net, 0);
        assert!(snap.covered(ip("10.0.0.1")));
        assert!(!snap.covered(ip("10.0.0.2")), "opt-out honoured");
    }

    #[test]
    fn transient_failures_vary_by_epoch() {
        let mut b = SimNet::builder(SimClock::new());
        for i in 0..200u32 {
            let addr = Ipv4Addr::from(0x0a01_0000 + i);
            b.smtp_host(addr, SmtpServerConfig::plain(format!("h{i}.example")));
        }
        let mut faults = FaultPlan::none();
        faults.scan_failure_rate = 0.3;
        faults.seed = 11;
        b.faults(faults);
        let net = b.build();
        let s0 = Scanner::new().sweep(&net, 0);
        let s1 = Scanner::new().sweep(&net, 1);
        assert!(s0.results.len() < 200 && s0.results.len() > 100);
        assert_ne!(
            s0.results.keys().collect::<std::collections::BTreeSet<_>>(),
            s1.results.keys().collect::<std::collections::BTreeSet<_>>()
        );
    }

    #[test]
    fn parallel_scan_equals_serial() {
        let mut b = SimNet::builder(SimClock::new());
        let mut ips = Vec::new();
        for i in 0..600u32 {
            let addr = Ipv4Addr::from(0x0a02_0000 + i);
            b.smtp_host(addr, SmtpServerConfig::plain(format!("h{i}.par.example")));
            ips.push(addr);
        }
        let net = b.build();
        let mut serial = Scanner::new();
        serial.parallelism = 1;
        // Force a multi-threaded scan regardless of the host's core count
        // or MX_THREADS, so the parallel path is always exercised.
        let mut par = Scanner::new();
        par.parallelism = 8;
        let a = serial.scan(&net, &ips, 0);
        let c = par.scan(&net, &ips, 0);
        assert_eq!(a.results.len(), c.results.len());
        for (ip, st) in &a.results {
            assert_eq!(c.results.get(ip), Some(st));
        }
    }
}
