//! The Censys-like Internet scanner.
//!
//! For every target IP the scanner opens a real SMTP session over the
//! simulated network, records the banner, sends EHLO, records the response,
//! attempts STARTTLS when advertised, records the presented certificate
//! chain, and politely QUITs. Coverage gaps (owner opt-outs, transient
//! failures, closed ports) mirror the modes the paper attributes to Censys
//! in §4.2.2 and Table 4.
//!
//! The acquisition layer is resilient: transient connect failures and
//! data-losing session faults are retried inside a bounded budget
//! (`MAX_SCAN_ATTEMPTS`), with deterministic exponential backoff charged
//! to the simulated clock, and every observation records how many
//! attempts it cost and which fault (if any) degraded it. A multi-round
//! [`Scanner::scan_window`] merges the best observation per IP across
//! `±width` rounds, mirroring the paper's multi-day scan fill.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use mx_smtp::{
    ClientError, Extension, SmtpClient, SmtpScanData, StartTlsFailure, StartTlsOutcome,
};

use crate::fault::ScanFault;
use crate::simnet::{ConnectError, SimNet};

/// Maximum connection attempts per (ip, round): 1 initial + 2 retries.
pub const MAX_SCAN_ATTEMPTS: u32 = 3;

/// Base backoff charged to the simulated clock before retry `n`
/// (doubles per retry: 2s, 4s, ...).
pub const SCAN_BACKOFF_SECS: u64 = 2;

/// Simulated cost of giving up on a tarpitted EHLO exchange.
pub const TARPIT_COST_SECS: u64 = 300;

/// Port-25 state observed for one IP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortState {
    /// TCP connect failed (host down / refused).
    Closed,
    /// Connected, but the application-layer conversation failed before a
    /// banner was captured.
    NoBanner,
    /// Full or partial application data captured.
    Open(SmtpScanData),
}

impl PortState {
    /// Application data, if any.
    pub fn data(&self) -> Option<&SmtpScanData> {
        match self {
            PortState::Open(d) => Some(d),
            _ => None,
        }
    }

    /// Data-fullness rank used by [`Scanner::scan_window`] to pick the
    /// best observation across rounds: cert > EHLO > banner > no banner
    /// > closed.
    pub fn fullness(&self) -> u8 {
        match self {
            PortState::Open(d) => match (&d.starttls, &d.ehlo) {
                (StartTlsOutcome::Completed { .. }, _) => 4,
                (_, Some(_)) => 3,
                _ => 2,
            },
            PortState::NoBanner => 1,
            PortState::Closed => 0,
        }
    }
}

/// One IP's observation plus its acquisition accounting: how many
/// attempts it took, which injected fault (if any) is reflected in the
/// data, and whether an earlier failed attempt was recovered by a retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanObservation {
    /// The observed port state.
    pub state: PortState,
    /// Connection attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// The fault that degraded this observation, or — when `recovered`
    /// — the fault the retries healed.
    pub fault: Option<ScanFault>,
    /// True when an earlier attempt failed but a later one captured the
    /// returned data.
    pub recovered: bool,
}

impl ScanObservation {
    /// A clean single-attempt observation (used by tests and merges).
    pub fn clean(state: PortState) -> Self {
        ScanObservation {
            state,
            attempts: 1,
            fault: None,
            recovered: false,
        }
    }
}

/// Why an IP is absent from a snapshot's results, and how hard the
/// scanner tried — Table 4's "No Censys" bucket, split into "never
/// attempted" vs "attempted and exhausted the retry budget".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Missed {
    /// Owner opt-out: the scanner never attempts the IP.
    Blocked,
    /// Every attempt in the budget failed transiently.
    Exhausted {
        /// Attempts consumed before giving up.
        attempts: u32,
    },
}

/// One scan round's results. IPs absent from `results` were not covered at
/// all (blocked by owner request, or the scanner exhausted its retry
/// budget that round) — the "No Censys" bucket; `missed` records which
/// of the two it was.
#[derive(Debug, Clone, Default)]
pub struct ScanSnapshot {
    /// Scan round number (one per simulated snapshot date).
    pub epoch: u64,
    /// Per-IP observations; absent IPs were not covered at all.
    pub results: BTreeMap<Ipv4Addr, ScanObservation>,
    /// Why each uncovered-but-targeted IP is missing.
    pub missed: BTreeMap<Ipv4Addr, Missed>,
}

impl ScanSnapshot {
    /// Was the IP covered by this scan at all?
    pub fn covered(&self, ip: Ipv4Addr) -> bool {
        self.results.contains_key(&ip)
    }

    /// The port state, if covered.
    pub fn get(&self, ip: Ipv4Addr) -> Option<&PortState> {
        self.results.get(&ip).map(|o| &o.state)
    }

    /// The full observation (state + acquisition accounting), if covered.
    pub fn observation(&self, ip: Ipv4Addr) -> Option<&ScanObservation> {
        self.results.get(&ip)
    }

    /// Application data for an IP, if the port was open and spoke SMTP.
    pub fn data(&self, ip: Ipv4Addr) -> Option<&SmtpScanData> {
        self.get(ip).and_then(PortState::data)
    }

    /// Count of IPs with open, speaking SMTP servers.
    pub fn open_count(&self) -> usize {
        self.results
            .values()
            .filter(|o| matches!(o.state, PortState::Open(_)))
            .count()
    }
}

/// The scanner. Stateless besides configuration.
#[derive(Debug, Clone)]
pub struct Scanner {
    /// The client identity used in EHLO (Censys scans identify themselves).
    pub ehlo_name: String,
    /// Number of worker threads for large scans; `0` (the default)
    /// inherits the shared pool's configuration (`MX_THREADS` or an
    /// enclosing `mx_par::install`).
    pub parallelism: usize,
}

impl Default for Scanner {
    fn default() -> Self {
        Scanner {
            ehlo_name: "scanner.sim.internal".into(),
            parallelism: 0,
        }
    }
}

/// Trace tag for a scanned IP: the address itself (fits in 32 bits, so
/// the JSON f64 round-trips exactly), pure and thread-invariant.
fn ip_trace_tag(ip: Ipv4Addr) -> u64 {
    u64::from(u32::from(ip))
}

impl Scanner {
    /// A scanner with default identity and parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scan one IP, honouring the fault plan, retrying transient and
    /// data-losing session faults inside the attempt budget.
    ///
    /// `Err` means the IP is not covered this round ("No Censys"), and
    /// says whether that was an opt-out or an exhausted budget.
    pub fn scan_ip(
        &self,
        net: &SimNet,
        ip: Ipv4Addr,
        epoch: u64,
    ) -> Result<ScanObservation, Missed> {
        let _obs = mx_obs::stage!(
            mx_obs::names::STAGE_NET_SCAN_IP,
            mx_obs::names::STAGE_NET_SCAN
        )
        .enter_tagged(net.clock().now().secs(), ip_trace_tag(ip));
        let outcome = self.scan_ip_inner(net, ip, epoch);
        record_scan_outcome(&outcome);
        outcome
    }

    /// [`Self::scan_ip`] without the observability wrapper.
    fn scan_ip_inner(
        &self,
        net: &SimNet,
        ip: Ipv4Addr,
        epoch: u64,
    ) -> Result<ScanObservation, Missed> {
        let faults = net.faults();
        if faults.is_blocked(ip) {
            return Err(Missed::Blocked);
        }
        let clock = net.clock();
        // The fault the retries are currently working around; reported
        // as `fault` on the final observation.
        let mut pending: Option<ScanFault> = None;
        // Best degraded capture so far, returned if the budget runs out
        // before a clean session.
        let mut degraded: Option<(PortState, ScanFault)> = None;
        let mut attempt = 0u32;
        while attempt < MAX_SCAN_ATTEMPTS {
            if attempt > 0 {
                let backoff = SCAN_BACKOFF_SECS << (attempt - 1);
                clock.charge(backoff);
                mx_obs::counter!(mx_obs::names::NET_SCAN_BACKOFF_SIM_SECS).add(backoff);
                mx_obs::stage!(
                    mx_obs::names::STAGE_NET_SCAN_IP,
                    mx_obs::names::STAGE_NET_SCAN
                )
                .charge_sim_tagged(backoff, clock.now().secs(), ip_trace_tag(ip));
            }
            let attempts = attempt + 1;
            let recovered = attempt > 0;
            if faults.scan_fails_attempt(ip, epoch, attempt) {
                pending = Some(ScanFault::Transient);
                attempt += 1;
                continue;
            }
            let conn = match net.connect_smtp(ip) {
                Ok(c) => c,
                // Host-level outcomes are stable across retries in the
                // simulation: treat them as definitive.
                Err(ConnectError::NoRoute(_))
                | Err(ConnectError::Unreachable(_))
                | Err(ConnectError::PortClosed(_)) => {
                    return Ok(ScanObservation {
                        state: PortState::Closed,
                        attempts,
                        fault: pending,
                        recovered,
                    });
                }
            };
            let session_fault = faults.smtp_fault(ip, epoch, attempt);
            let (mut client, _greeted_ok) = match SmtpClient::connect_raw(conn) {
                Ok(pair) => pair,
                Err(_) => {
                    return Ok(ScanObservation {
                        state: PortState::NoBanner,
                        attempts,
                        fault: pending,
                        recovered,
                    });
                }
            };
            let banner = strip_code(client.banner());
            match session_fault {
                Some(f @ ScanFault::GarbledBanner) => {
                    // The greeting arrives mangled: no usable hostname,
                    // no trustworthy session to continue.
                    let data = SmtpScanData {
                        banner: garbled_banner(ip, epoch),
                        ehlo: None,
                        ehlo_keywords: Vec::new(),
                        starttls: StartTlsOutcome::NotOffered,
                    };
                    degraded = Some((PortState::Open(data), f));
                    pending = Some(f);
                    attempt += 1;
                    continue;
                }
                Some(f @ (ScanFault::DropAfterBanner | ScanFault::EhloTarpit)) => {
                    if f == ScanFault::EhloTarpit {
                        clock.charge(TARPIT_COST_SECS);
                        mx_obs::counter!(mx_obs::names::NET_SCAN_TARPIT_SIM_SECS)
                            .add(TARPIT_COST_SECS);
                        mx_obs::stage!(
                            mx_obs::names::STAGE_NET_SCAN_IP,
                            mx_obs::names::STAGE_NET_SCAN
                        )
                        .charge_sim_tagged(TARPIT_COST_SECS, clock.now().secs(), ip_trace_tag(ip));
                    }
                    let data = SmtpScanData {
                        banner,
                        ehlo: None,
                        ehlo_keywords: Vec::new(),
                        starttls: StartTlsOutcome::NotOffered,
                    };
                    degraded = Some((PortState::Open(data), f));
                    pending = Some(f);
                    attempt += 1;
                    continue;
                }
                _ => {}
            }
            let mut data = SmtpScanData {
                banner,
                ehlo: None,
                ehlo_keywords: Vec::new(),
                starttls: StartTlsOutcome::NotOffered,
            };
            match client.ehlo(&self.ehlo_name) {
                Ok((reply, extensions)) => {
                    data.ehlo = Some(reply.lines[0].clone());
                    data.ehlo_keywords = reply.lines[1..].to_vec();
                    if extensions.contains(&Extension::StartTls) {
                        if session_fault == Some(ScanFault::TlsHandshake) {
                            // Injected handshake failure. Not retried:
                            // the captured banner/EHLO data is the
                            // paper's fallback path, and the retry
                            // budget is reserved for data-losing faults.
                            data.starttls = StartTlsOutcome::Failed {
                                reason: StartTlsFailure::Handshake,
                            };
                            let _ = client.quit();
                            return Ok(ScanObservation {
                                state: PortState::Open(data),
                                attempts,
                                fault: Some(ScanFault::TlsHandshake),
                                recovered,
                            });
                        }
                        data.starttls = match client.starttls() {
                            Ok(chain) => StartTlsOutcome::Completed { chain },
                            Err(ClientError::TlsFailed(Some(_))) => StartTlsOutcome::Failed {
                                reason: StartTlsFailure::Refused,
                            },
                            Err(ClientError::TlsFailed(None)) => StartTlsOutcome::Failed {
                                reason: StartTlsFailure::Handshake,
                            },
                            Err(_) => StartTlsOutcome::Failed {
                                reason: StartTlsFailure::Transport,
                            },
                        };
                    }
                }
                Err(_) => {
                    // Banner captured; EHLO failed organically (server
                    // quirk). Deterministic server behaviour — retrying
                    // cannot improve it.
                }
            }
            let _ = client.quit();
            return Ok(ScanObservation {
                state: PortState::Open(data),
                attempts,
                fault: pending,
                recovered,
            });
        }
        // Budget exhausted. A degraded capture beats nothing.
        match degraded {
            Some((state, f)) => Ok(ScanObservation {
                state,
                attempts: MAX_SCAN_ATTEMPTS,
                fault: Some(f),
                recovered: false,
            }),
            None => Err(Missed::Exhausted {
                attempts: MAX_SCAN_ATTEMPTS,
            }),
        }
    }

    /// Scan a set of IPs, fanning out over the shared `mx_par` pool when
    /// large. Each IP's result depends only on `(ip, epoch)` and the
    /// immutable network, so the snapshot is identical to a serial scan
    /// at any thread count.
    pub fn scan(&self, net: &SimNet, ips: &[Ipv4Addr], epoch: u64) -> ScanSnapshot {
        let _obs = mx_obs::stage!(
            mx_obs::names::STAGE_NET_SCAN,
            mx_obs::names::STAGE_OBSERVE_SCAN
        )
        .enter();
        let mut snapshot = ScanSnapshot {
            epoch,
            results: BTreeMap::new(),
            missed: BTreeMap::new(),
        };
        let threads = if self.parallelism == 0 {
            mx_par::threads()
        } else {
            self.parallelism
        };
        if ips.len() < 256 || threads <= 1 {
            for &ip in ips {
                match self.scan_ip(net, ip, epoch) {
                    Ok(obs) => {
                        snapshot.results.insert(ip, obs);
                    }
                    Err(miss) => {
                        snapshot.missed.insert(ip, miss);
                    }
                }
            }
            return snapshot;
        }
        let results = mx_par::install(threads, || {
            mx_par::par_map(ips, |&ip| (ip, self.scan_ip(net, ip, epoch)))
        });
        for (ip, outcome) in results {
            match outcome {
                Ok(obs) => {
                    snapshot.results.insert(ip, obs);
                }
                Err(miss) => {
                    snapshot.missed.insert(ip, miss);
                }
            }
        }
        snapshot
    }

    /// Scan `ips` across rounds `epoch - width ..= epoch + width` and
    /// merge the best observation per IP — the paper's multi-day fill:
    /// a host missing from one daily scan usually appears in a nearby
    /// one. Preference: fuller data first ([`PortState::fullness`]:
    /// cert > EHLO > banner > closed), ties broken towards the round
    /// closest to `epoch` (earlier on equal distance).
    ///
    /// The merged snapshot reports `epoch` as its round; `attempts`
    /// accumulates across all rounds, and an IP counts as `recovered`
    /// when any round missed it but another captured it.
    pub fn scan_window(
        &self,
        net: &SimNet,
        ips: &[Ipv4Addr],
        epoch: u64,
        width: u64,
    ) -> ScanSnapshot {
        if width == 0 {
            return self.scan(net, ips, epoch);
        }
        let lo = epoch.saturating_sub(width);
        let rounds: Vec<ScanSnapshot> = (lo..=epoch + width)
            .map(|e| self.scan(net, ips, e))
            .collect();
        let mut merged = ScanSnapshot {
            epoch,
            results: BTreeMap::new(),
            missed: BTreeMap::new(),
        };
        let mut seen: std::collections::HashSet<Ipv4Addr> = std::collections::HashSet::new();
        for &ip in ips {
            if !seen.insert(ip) {
                continue;
            }
            let mut best: Option<(&ScanObservation, u64)> = None;
            let mut total_attempts = 0u32;
            let mut missed_rounds = 0usize;
            let mut missed_as: Option<Missed> = None;
            let mut healed_fault: Option<ScanFault> = None;
            for snap in &rounds {
                if let Some(obs) = snap.results.get(&ip) {
                    total_attempts += obs.attempts;
                    let better = match best {
                        None => true,
                        Some((b, br)) => {
                            let (fb, fo) = (b.state.fullness(), obs.state.fullness());
                            fo > fb
                                || (fo == fb
                                    && snap.epoch.abs_diff(epoch) < br.abs_diff(epoch))
                        }
                    };
                    if better {
                        best = Some((obs, snap.epoch));
                    }
                } else if let Some(miss) = snap.missed.get(&ip) {
                    missed_rounds += 1;
                    if let Missed::Exhausted { attempts } = miss {
                        total_attempts += attempts;
                        healed_fault = Some(ScanFault::Transient);
                    }
                    missed_as = Some(*miss);
                }
            }
            match best {
                Some((obs, _)) => {
                    let mut merged_obs = obs.clone();
                    merged_obs.attempts = total_attempts;
                    if missed_rounds > 0 {
                        merged_obs.recovered = true;
                        if merged_obs.fault.is_none() {
                            merged_obs.fault = healed_fault;
                        }
                    }
                    merged.results.insert(ip, merged_obs);
                }
                None => {
                    // Missed in every round. Blocked dominates (it is
                    // persistent); otherwise report the accumulated
                    // attempt cost.
                    let miss = match missed_as {
                        Some(Missed::Blocked) | None => Missed::Blocked,
                        Some(Missed::Exhausted { .. }) => Missed::Exhausted {
                            attempts: total_attempts,
                        },
                    };
                    merged.missed.insert(ip, miss);
                }
            }
        }
        merged
    }

    /// Scan every SMTP-capable host attached to the network (plus any
    /// explicitly provided silent hosts are naturally covered through
    /// `host_ips`). This is the "Internet-wide" sweep.
    pub fn sweep(&self, net: &SimNet, epoch: u64) -> ScanSnapshot {
        let mut ips: Vec<Ipv4Addr> = net.host_ips().collect();
        ips.sort();
        self.scan(net, &ips, epoch)
    }
}

/// The banner/EHLO text without the reply code prefix.
fn strip_code(reply: &mx_smtp::Reply) -> String {
    reply.first_line().to_string()
}

/// Record one `scan_ip` outcome into the observability layer. Attempt
/// totals mirror the acquisition accounting exactly (the obs_gate test
/// reconciles the two); the per-outcome counters are per scan *pass*,
/// so under a `scan_window` they count rounds, not merged IPs.
fn record_scan_outcome(outcome: &Result<ScanObservation, Missed>) {
    let attempts = mx_obs::counter!(mx_obs::names::NET_SCAN_ATTEMPTS);
    let per_ip = mx_obs::histogram!(
        mx_obs::names::NET_SCAN_ATTEMPTS_PER_IP,
        mx_obs::names::NET_SCAN_ATTEMPTS_BOUNDS
    );
    match outcome {
        Ok(obs) => {
            attempts.add(obs.attempts as u64);
            per_ip.observe(obs.attempts as u64);
            if obs.recovered {
                mx_obs::counter!(mx_obs::names::NET_SCAN_RECOVERED).incr();
            }
            let tls_failed = obs.state.data().is_some_and(|d| {
                matches!(
                    d.starttls,
                    StartTlsOutcome::Failed {
                        reason: StartTlsFailure::Handshake,
                    }
                )
            });
            if tls_failed {
                mx_obs::counter!(mx_obs::names::NET_SCAN_TLS_FAILED).incr();
            }
        }
        Err(Missed::Blocked) => {
            mx_obs::counter!(mx_obs::names::NET_SCAN_BLOCKED).incr();
        }
        Err(Missed::Exhausted { attempts: n }) => {
            attempts.add(*n as u64);
            per_ip.observe(*n as u64);
            mx_obs::counter!(mx_obs::names::NET_SCAN_EXHAUSTED).incr();
        }
    }
}

/// Deterministic mangled greeting for an injected garbled-banner fault:
/// contains control bytes and no valid hostname token.
fn garbled_banner(ip: Ipv4Addr, epoch: u64) -> String {
    format!("\u{1}\u{2}\u{7f}x{ip}#{epoch}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FlakinessProfile, SmtpFaults};
    use mx_cert::{CertificateBuilder, KeyId};
    use mx_dns::SimClock;
    use mx_smtp::{ServerQuirks, SmtpServerConfig};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn net_with_hosts() -> SimNet {
        let mut b = SimNet::builder(SimClock::new());
        // TLS-enabled provider server.
        let chain = vec![CertificateBuilder::new(1, KeyId(5))
            .common_name("mx.provider.com")
            .self_signed()];
        b.smtp_host(
            ip("10.0.0.1"),
            SmtpServerConfig::with_tls("mx.provider.com", chain),
        );
        // Plain server with a junk banner.
        let mut junk = SmtpServerConfig::plain("IP-10-0-0-2");
        junk.ehlo_host = "IP-10-0-0-2".into();
        b.smtp_host(ip("10.0.0.2"), junk);
        // Web server, no SMTP.
        b.silent_host(ip("10.0.0.3"));
        // Tarpit.
        let mut tarpit = SmtpServerConfig::plain("busy.example");
        tarpit.quirks = ServerQuirks {
            close_on_connect: true,
            starttls_rejects: false,
        };
        b.smtp_host(ip("10.0.0.4"), tarpit);
        b.build()
    }

    #[test]
    fn sweep_captures_everything() {
        let net = net_with_hosts();
        let snap = Scanner::new().sweep(&net, 0);
        assert_eq!(snap.results.len(), 4);
        assert!(snap.missed.is_empty());
        // Provider: full data with cert chain, clean first attempt.
        let d = snap.data(ip("10.0.0.1")).unwrap();
        assert_eq!(d.banner_host(), Some("mx.provider.com"));
        assert_eq!(d.ehlo_host(), Some("mx.provider.com"));
        let chain = d.starttls.chain().unwrap();
        assert_eq!(chain[0].subject_cn.as_deref(), Some("mx.provider.com"));
        let obs = snap.observation(ip("10.0.0.1")).unwrap();
        assert_eq!(obs.attempts, 1);
        assert_eq!(obs.fault, None);
        assert!(!obs.recovered);
        // Junk banner captured verbatim.
        let d2 = snap.data(ip("10.0.0.2")).unwrap();
        assert_eq!(d2.banner_host(), Some("IP-10-0-0-2"));
        assert_eq!(d2.starttls, StartTlsOutcome::NotOffered);
        // No SMTP -> Closed.
        assert_eq!(snap.get(ip("10.0.0.3")), Some(&PortState::Closed));
        // Tarpit: 421 banner captured, no EHLO data.
        let d4 = snap.data(ip("10.0.0.4")).unwrap();
        assert!(d4.banner.contains("busy.example"));
        assert_eq!(d4.ehlo, None);
    }

    #[test]
    fn blocked_ips_missing_from_snapshot() {
        let mut b = SimNet::builder(SimClock::new());
        b.smtp_host(ip("10.0.0.1"), SmtpServerConfig::plain("a.example"));
        b.smtp_host(ip("10.0.0.2"), SmtpServerConfig::plain("b.example"));
        let mut faults = FaultPlan::none();
        faults.blocked_ips.insert(ip("10.0.0.2"));
        b.faults(faults);
        let net = b.build();
        let snap = Scanner::new().sweep(&net, 0);
        assert!(snap.covered(ip("10.0.0.1")));
        assert!(!snap.covered(ip("10.0.0.2")), "opt-out honoured");
        assert_eq!(snap.missed.get(&ip("10.0.0.2")), Some(&Missed::Blocked));
    }

    #[test]
    fn retries_heal_most_transient_failures() {
        let mut b = SimNet::builder(SimClock::new());
        for i in 0..400u32 {
            let addr = Ipv4Addr::from(0x0a01_0000 + i);
            b.smtp_host(addr, SmtpServerConfig::plain(format!("h{i}.example")));
        }
        let mut faults = FaultPlan::none();
        faults.scan_failure_rate = 0.3;
        faults.seed = 11;
        b.faults(faults);
        let net = b.build();
        let snap = Scanner::new().sweep(&net, 0);
        // Per-round miss probability with 3 attempts at rate 0.3 is
        // 0.027: nearly every host is covered, and those that needed a
        // retry say so.
        assert!(snap.results.len() > 360, "covered {}", snap.results.len());
        let recovered = snap.results.values().filter(|o| o.recovered).count();
        assert!(recovered > 50, "recovered {recovered}");
        assert!(snap
            .results
            .values()
            .filter(|o| o.recovered)
            .all(|o| o.attempts > 1 && o.fault == Some(ScanFault::Transient)));
        for miss in snap.missed.values() {
            assert_eq!(
                *miss,
                Missed::Exhausted {
                    attempts: MAX_SCAN_ATTEMPTS
                }
            );
        }
        // Backoff cost was charged for the retries.
        assert!(net.clock().charged() > 0);
    }

    #[test]
    fn transient_failures_vary_by_epoch() {
        let mut b = SimNet::builder(SimClock::new());
        for i in 0..200u32 {
            let addr = Ipv4Addr::from(0x0a01_0000 + i);
            // Always-flaky profile at rate 0.75: per-round miss
            // probability stays 0.42 even with 3 attempts, so both
            // rounds have substantial, differing holes.
            b.smtp_host(addr, SmtpServerConfig::plain(format!("h{i}.example")));
        }
        let mut faults = FaultPlan::none();
        for i in 0..200u32 {
            faults.ip_profiles.insert(
                Ipv4Addr::from(0x0a01_0000 + i),
                FlakinessProfile::AlwaysFlaky { rate: 0.75 },
            );
        }
        faults.seed = 11;
        b.faults(faults);
        let net = b.build();
        let s0 = Scanner::new().sweep(&net, 0);
        let s1 = Scanner::new().sweep(&net, 1);
        assert!(s0.results.len() < 180 && s0.results.len() > 60, "{}", s0.results.len());
        assert_ne!(
            s0.results.keys().collect::<std::collections::BTreeSet<_>>(),
            s1.results.keys().collect::<std::collections::BTreeSet<_>>()
        );
    }

    #[test]
    fn session_faults_degrade_and_recover() {
        let mut b = SimNet::builder(SimClock::new());
        let n = 400u32;
        for i in 0..n {
            let addr = Ipv4Addr::from(0x0a03_0000 + i);
            let chain = vec![CertificateBuilder::new(i as u64 + 1, KeyId(9))
                .common_name(format!("h{i}.sess.example"))
                .self_signed()];
            b.smtp_host(
                addr,
                SmtpServerConfig::with_tls(format!("h{i}.sess.example"), chain),
            );
        }
        let mut faults = FaultPlan::none();
        faults.smtp = SmtpFaults {
            drop_after_banner_rate: 0.1,
            ehlo_tarpit_rate: 0.1,
            tls_handshake_rate: 0.1,
            garbled_banner_rate: 0.1,
        };
        faults.seed = 21;
        b.faults(faults);
        let net = b.build();
        let snap = Scanner::new().sweep(&net, 0);
        assert_eq!(snap.results.len(), n as usize, "session faults never lose the IP");
        let mut tls_failed = 0;
        let mut healed = 0;
        let mut exhausted_degraded = 0;
        for obs in snap.results.values() {
            match obs.fault {
                Some(ScanFault::TlsHandshake) => {
                    // Captured-banner fallback: EHLO present, no chain.
                    let d = obs.state.data().unwrap();
                    assert!(d.ehlo.is_some());
                    assert_eq!(
                        d.starttls,
                        StartTlsOutcome::Failed {
                            reason: StartTlsFailure::Handshake
                        }
                    );
                    tls_failed += 1;
                }
                Some(_) if obs.recovered => healed += 1,
                Some(f) => {
                    // Budget ran out on a data-losing fault: the best
                    // degraded capture survives (banner-only data).
                    assert_eq!(obs.attempts, MAX_SCAN_ATTEMPTS);
                    let d = obs.state.data().unwrap();
                    assert!(d.ehlo.is_none(), "{f:?} kept EHLO data");
                    exhausted_degraded += 1;
                }
                None => {}
            }
        }
        assert!(tls_failed > 10, "tls_failed {tls_failed}");
        assert!(healed > 50, "healed {healed}");
        // P(3 consecutive data-losing faults) = 0.3^3; with 400 hosts a
        // handful exhaust.
        assert!(exhausted_degraded >= 1, "exhausted {exhausted_degraded}");
    }

    #[test]
    fn garbled_banner_has_no_usable_hostname() {
        let mut b = SimNet::builder(SimClock::new());
        b.smtp_host(ip("10.0.0.7"), SmtpServerConfig::plain("real.example"));
        let mut faults = FaultPlan::none();
        faults.smtp.garbled_banner_rate = 1.0;
        b.faults(faults);
        let net = b.build();
        let snap = Scanner::new().sweep(&net, 0);
        let obs = snap.observation(ip("10.0.0.7")).unwrap();
        assert_eq!(obs.fault, Some(ScanFault::GarbledBanner));
        assert_eq!(obs.attempts, MAX_SCAN_ATTEMPTS);
        let d = obs.state.data().unwrap();
        assert!(!d.banner.contains("real.example"));
        assert!(d
            .banner_host()
            .map(|h| !mx_smtp::valid_fqdn(h))
            .unwrap_or(true));
    }

    #[test]
    fn scan_window_recovers_transient_misses() {
        let mut b = SimNet::builder(SimClock::new());
        let n = 500u32;
        let mut ips = Vec::new();
        for i in 0..n {
            let addr = Ipv4Addr::from(0x0a04_0000 + i);
            b.smtp_host(addr, SmtpServerConfig::plain(format!("h{i}.win.example")));
            ips.push(addr);
        }
        let mut faults = FaultPlan::none();
        faults.scan_failure_rate = 0.3;
        faults.seed = 33;
        b.faults(faults);
        let net = b.build();
        let scanner = Scanner::new();
        let single = scanner.scan(&net, &ips, 5);
        let missed_single: Vec<Ipv4Addr> = single.missed.keys().copied().collect();
        assert!(!missed_single.is_empty(), "need transient misses to recover");
        let window = scanner.scan_window(&net, &ips, 5, 2);
        let recovered = missed_single
            .iter()
            .filter(|ip| window.covered(**ip))
            .count();
        // Acceptance criterion: >= 90% of transiently-failed IPs
        // recovered at rate 0.3 with width 2.
        assert!(
            recovered as f64 >= 0.9 * missed_single.len() as f64,
            "recovered {recovered}/{}",
            missed_single.len()
        );
        // Recovered IPs are flagged as such with accumulated attempts.
        for ip in &missed_single {
            if let Some(obs) = window.observation(*ip) {
                assert!(obs.recovered);
                assert!(obs.attempts > MAX_SCAN_ATTEMPTS);
            }
        }
        assert_eq!(window.epoch, 5);
    }

    #[test]
    fn scan_window_prefers_fuller_observations() {
        // A host whose TLS handshake is injected to fail in most rounds:
        // the window keeps the round with the full chain.
        let mut b = SimNet::builder(SimClock::new());
        let chain = vec![CertificateBuilder::new(1, KeyId(5))
            .common_name("mx.window.example")
            .self_signed()];
        b.smtp_host(
            ip("10.0.0.9"),
            SmtpServerConfig::with_tls("mx.window.example", chain),
        );
        let mut faults = FaultPlan::none();
        faults.smtp.tls_handshake_rate = 0.7;
        faults.seed = 2;
        b.faults(faults);
        let net = b.build();
        let scanner = Scanner::new();
        let ips = [ip("10.0.0.9")];
        // Find a round where the handshake fails and one where it works.
        let per_round: Vec<bool> = (0..5)
            .map(|e| {
                scanner
                    .scan(&net, &ips, e)
                    .data(ip("10.0.0.9"))
                    .map(|d| d.starttls.chain().is_some())
                    .unwrap_or(false)
            })
            .collect();
        assert!(per_round.contains(&true), "no clean round in {per_round:?}");
        assert!(per_round.contains(&false), "no faulty round in {per_round:?}");
        let window = scanner.scan_window(&net, &ips, 2, 2);
        let d = window.data(ip("10.0.0.9")).unwrap();
        assert!(d.starttls.chain().is_some(), "window kept the cert round");
    }

    #[test]
    fn scan_window_width_zero_is_single_round() {
        let net = net_with_hosts();
        let scanner = Scanner::new();
        let a = scanner.scan(&net, &net.host_ips().collect::<Vec<_>>(), 3);
        let b = scanner.scan_window(&net, &net.host_ips().collect::<Vec<_>>(), 3, 0);
        assert_eq!(a.results.len(), b.results.len());
        assert_eq!(a.epoch, b.epoch);
    }

    #[test]
    fn parallel_scan_equals_serial() {
        let mut b = SimNet::builder(SimClock::new());
        let mut ips = Vec::new();
        for i in 0..600u32 {
            let addr = Ipv4Addr::from(0x0a02_0000 + i);
            b.smtp_host(addr, SmtpServerConfig::plain(format!("h{i}.par.example")));
            ips.push(addr);
        }
        // Give the parallel path faults to account for, so accounting
        // equality is exercised too.
        let mut faults = FaultPlan::none();
        faults.scan_failure_rate = 0.2;
        faults.smtp.drop_after_banner_rate = 0.1;
        faults.seed = 4;
        b.faults(faults);
        let net = b.build();
        let mut serial = Scanner::new();
        serial.parallelism = 1;
        // Force a multi-threaded scan regardless of the host's core count
        // or MX_THREADS, so the parallel path is always exercised.
        let mut par = Scanner::new();
        par.parallelism = 8;
        let a = serial.scan(&net, &ips, 0);
        let c = par.scan(&net, &ips, 0);
        assert_eq!(a.results.len(), c.results.len());
        assert_eq!(a.missed.len(), c.missed.len());
        for (ip, obs) in &a.results {
            assert_eq!(c.results.get(ip), Some(obs));
        }
        for (ip, miss) in &a.missed {
            assert_eq!(c.missed.get(ip), Some(miss));
        }
    }
}
