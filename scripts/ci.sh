#!/usr/bin/env sh
# CI entry point: build, test, lint. Mirrors the tier-1 verify plus the
# mx-lint static-analysis pass (also enforced via tests/lint_gate.rs, so
# `cargo test` alone cannot go green on a lint-dirty tree).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> mx-lint"
cargo run --quiet --release -p mx-lint

echo "==> mx-lint machine-readable determinism (two json/sarif runs must be byte-identical)"
cargo run --quiet --release -p mx-lint -- --format json > /tmp/mx_lint_a.json
cargo run --quiet --release -p mx-lint -- --format json > /tmp/mx_lint_b.json
cmp /tmp/mx_lint_a.json /tmp/mx_lint_b.json
rm -f /tmp/mx_lint_a.json /tmp/mx_lint_b.json
cargo run --quiet --release -p mx-lint -- --format sarif > /tmp/mx_lint_a.sarif
cargo run --quiet --release -p mx-lint -- --format sarif > /tmp/mx_lint_b.sarif
cmp /tmp/mx_lint_a.sarif /tmp/mx_lint_b.sarif
rm -f /tmp/mx_lint_a.sarif /tmp/mx_lint_b.sarif

echo "==> mx-lint baseline drift (HEAD needs no baseline)"
cargo run --quiet --release -p mx-lint -- --write-baseline /tmp/mx_lint_baseline.txt
test ! -s /tmp/mx_lint_baseline.txt
rm -f /tmp/mx_lint_baseline.txt

echo "==> parallel determinism (tests/par_determinism.rs)"
cargo test --release --test par_determinism -q

echo "==> chaos gate (tests/chaos_gate.rs)"
cargo test --release --test chaos_gate -q

echo "==> obs gate (tests/obs_gate.rs)"
cargo test --release --test obs_gate -q

echo "==> trace gate (tests/trace_gate.rs: byte-identical timeline at 1/2/8 threads, ring overflow accounting, serve event reconciliation)"
cargo test --release --test trace_gate -q

echo "==> metrics endpoint determinism (two --metrics runs must serve byte-identical /metrics + /debug bodies)"
cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --metrics --metrics-out /tmp/mx_metrics_a.bin
cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --metrics --metrics-out /tmp/mx_metrics_b.bin
cmp /tmp/mx_metrics_a.bin /tmp/mx_metrics_b.bin
rm -f /tmp/mx_metrics_a.bin /tmp/mx_metrics_b.bin

echo "==> obs snapshot determinism (two --obs runs must be byte-identical)"
cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --obs --obs-out /tmp/mx_obs_a.json
cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --obs --obs-out /tmp/mx_obs_b.json
cmp /tmp/mx_obs_a.json /tmp/mx_obs_b.json
rm -f /tmp/mx_obs_a.json /tmp/mx_obs_b.json

echo "==> store gate (tests/store_gate.rs)"
cargo test --release --test store_gate -q

echo "==> store v1 read-compat (committed mx-store/1 fixture vs current reader)"
cargo test --release --test store_v1_compat -q

echo "==> store determinism (two --store runs must write byte-identical mx-store/2 files)"
cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --store --store-out /tmp/mx_store_a.bin
cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --store --store-out /tmp/mx_store_b.bin
cmp /tmp/mx_store_a.bin /tmp/mx_store_b.bin
rm -f /tmp/mx_store_a.bin /tmp/mx_store_b.bin

echo "==> serve gate (tests/serve_gate.rs: byte-identical replay at 1/2/8 threads + chaos sweep at rates 0/0.1/0.3)"
cargo test --release --test serve_gate -q

echo "==> delta gate (tests/delta_gate.rs: incremental append byte-identical to full recompute across seeds, event rates, threads 1/2/8)"
cargo test --release --test delta_gate -q

echo "==> delta codec robustness (tests/malformed_input.rs: event-log decoding rejects corruption without panicking)"
cargo test --release --test malformed_input -q

echo "==> serve shed (saturating burst sheds 503 while /healthz answers; refreshes results/BENCH_serve.json)"
cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --serve

echo "==> attribution smoke (small-scale --attribution must produce a non-empty stage table)"
MX_SCALE=small cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --attribution --attrib-out /tmp/mx_attrib_smoke.json
test -s /tmp/mx_attrib_smoke.json
rm -f /tmp/mx_attrib_smoke.json

echo "==> bench smoke (threads 1 vs 2 must agree; exercises the store round trip)"
# MX_THREADS exercises the env-var configuration path; the binary's
# install() overrides still pin each timed run's width.
MX_THREADS=2 cargo run --quiet --release -p mx-bench --bin bench_pipeline -- --smoke

echo "CI OK"
