//! Replay + robustness gate for `mx-serve`.
//!
//! One `#[test]` on purpose, mirroring `tests/obs_gate.rs`: the obs
//! registry is process-global, so the reconciliation phase must not
//! race other serving runs in the same binary. The phases:
//!
//! 1. **Byte replay** — the same scripted trace against the same store
//!    produces byte-identical transcripts (and an identical
//!    [`RunReport`]) at every `mx_par::install` width in {1, 2, 8} and
//!    across reruns with a fresh [`Server`] each time.
//! 2. **Chaos sweep** — `ConnFaultPlan::uniform(rate, seed)` for rates
//!    {0.0, 0.1, 0.3} × the gate seeds: no panics, the accounting
//!    identity holds, nothing is dropped without a response. Rate 0.0
//!    is byte-identical to `ConnFaultPlan::none()`, and within a
//!    faulted run every unfaulted or dribbled connection still gets
//!    byte-identical responses — dribbling delivers the same bytes at
//!    the same instants, so the server must not be able to tell.
//! 3. **Saturation** — a burst beyond `workers + queue_capacity`
//!    sheds with `503` + `Retry-After`, while `/healthz` (served from
//!    the serial loop, never queued) still answers `200`.
//! 4. **Obs reconciliation** — at every thread count the `serve.*`
//!    counters equal the report fields and the identity
//!    `served + errored + shed + evicted == accepted` holds on both
//!    sides, with all four outcome classes exercised.

use mx_analysis::store::StudyStoreExt;
use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mx_delta::{full_recompute, generate_events, run_incremental, EventStreamConfig, WorldState};
use mx_infer::Pipeline;
use mx_net::{ConnFault, ConnFaultPlan};
use mx_obs::names;
use mx_serve::{apply_chaos, ClientConn, CloseReason, RunReport, Server, ServerConfig, Trace};
use mx_store::StoreReader;

const SEEDS: &[u64] = &[1, 7, 42];
const THREADS: &[usize] = &[1, 2, 8];
const RATES: &[f64] = &[0.0, 0.1, 0.3];

fn build_store(seed: u64) -> Vec<u8> {
    let study = Study::generate(ScenarioConfig::small(seed));
    study
        .write_store(
            Dataset::Alexa,
            &Pipeline::priority_based(provider_knowledge(10)),
            &company_map(),
        )
        .expect("serialize study")
}

fn run(reader: &StoreReader, cfg: ServerConfig, trace: &Trace) -> RunReport {
    let mut server = Server::new(reader, cfg);
    server.run(trace)
}

/// Wide limits: nothing sheds, nothing is refused, deadlines only fire
/// for streams that genuinely stall. The replay phases use this so the
/// only variable under test is determinism.
fn generous() -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_capacity: 1024,
        max_conns: 1024,
        read_deadline_ms: 100,
        idle_deadline_ms: 250,
        service_ms: 10,
        retry_after_secs: 1,
    }
}

fn conn_of(id: u64, opened_at_ms: u64, gap_ms: u64, reqs: &[String]) -> ClientConn {
    let bytes: Vec<&[u8]> = reqs.iter().map(|r| r.as_bytes()).collect();
    ClientConn::scripted(id, opened_at_ms, gap_ms, &bytes)
}

fn get(target: &str) -> String {
    format!("GET {target} HTTP/1.1\r\n\r\n")
}

fn get_close(target: &str) -> String {
    format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n")
}

/// A workload touching every endpoint: cache hits and misses, a 404,
/// a HEAD, a pipelined double request, and one malformed escape that
/// must close with a clean 400.
fn workload(reader: &StoreReader) -> Trace {
    let last = reader.epoch_count().saturating_sub(1);
    let mut domains: Vec<String> = Vec::new();
    reader
        .for_each_row(0, |name, _| {
            if domains.len() < 4 {
                domains.push(name.to_string());
            }
            Ok(())
        })
        .expect("scan epoch 0");
    let d0 = domains
        .first()
        .cloned()
        .unwrap_or_else(|| "missing.test".to_string());
    let d1 = domains.get(1).cloned().unwrap_or_else(|| d0.clone());
    let provider = reader
        .providers()
        .first()
        .map(|p| p.replace(' ', "%20"))
        .unwrap_or_else(|| "Google".to_string());

    Trace::new()
        .with(conn_of(
            0,
            0,
            30,
            &[
                get("/healthz"),
                get(&format!("/lookup?domain={d0}&epoch={last}")),
                // Identical target: must come off the caches with the
                // exact bytes of the miss path.
                get(&format!("/lookup?domain={d0}&epoch={last}")),
                get_close("/lookup?domain=no-such-domain.test"),
            ],
        ))
        .with(conn_of(
            1,
            7,
            30,
            &[
                get("/market?epoch=0"),
                get("/market?epoch=0&top=3"),
                get_close(&format!("/market?epoch={last}")),
            ],
        ))
        .with(conn_of(
            2,
            14,
            30,
            &[
                get("/series?credit=Google&credit=Microsoft"),
                get_close(&format!("/churn?from=0&to={last}")),
            ],
        ))
        .with(conn_of(
            3,
            21,
            30,
            &[
                get(&format!("/providers/{provider}/domains?epoch={last}")),
                get_close(&format!("/epochs/0..{last}/diff")),
            ],
        ))
        .with(conn_of(
            4,
            28,
            30,
            &[
                get(&format!("/lookup?domain={d1}")),
                get("/market?epoch=0"),
                get("/nope"),
                format!("HEAD /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"),
            ],
        ))
        .with(conn_of(
            5,
            35,
            30,
            // Two requests pipelined into one burst.
            &[format!(
                "{}{}",
                get("/healthz"),
                get_close(&format!("/market?epoch={last}"))
            )],
        ))
        .with(conn_of(
            6,
            42,
            30,
            &[get("/lookup?domain=%zz")], // bad escape: 400 + close
        ))
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Phase 1: byte-identical replay across thread counts and reruns.
fn replay_identical(reader: &StoreReader, seed: u64) {
    let trace = workload(reader);
    let mut runs = Vec::new();
    for &n in THREADS {
        runs.push((n, mx_par::install(n, || run(reader, generous(), &trace))));
    }
    let (_, base) = runs.first().expect("at least one thread count");
    assert!(base.reconciles(), "seed {seed}: accounting identity");
    assert_eq!(base.dropped_without_response, 0, "seed {seed}: drain");
    assert!(base.served > 0, "seed {seed}: workload must serve 2xx");
    assert!(base.errored > 0, "seed {seed}: workload must include 4xx");
    assert_eq!(base.shed, 0, "seed {seed}: generous config never sheds");
    for (n, rep) in &runs {
        assert_eq!(
            rep, base,
            "seed {seed}: run diverges at {n} threads (bytes: {} vs {})",
            rep.all_bytes().len(),
            base.all_bytes().len()
        );
    }
    // Fresh server, repeated at the widest width: no hidden state.
    let again = mx_par::install(8, || run(reader, generous(), &trace));
    assert_eq!(&again, base, "seed {seed}: rerun diverges");
    // The malformed-escape connection closed with a clean 400.
    let bad = base
        .transcripts
        .iter()
        .find(|t| t.id == 6)
        .expect("conn 6 transcript");
    assert_eq!(bad.statuses, vec![400], "seed {seed}: bad escape status");
    assert_eq!(bad.close, CloseReason::ParseFailed, "seed {seed}");
}

/// Phase 2: chaos sweep. Returns how many connections actually
/// faulted, so the caller can assert the sweep was not vacuous.
fn chaos_sweep(reader: &StoreReader, seed: u64) -> usize {
    let trace = workload(reader);
    assert_eq!(
        apply_chaos(&trace, &ConnFaultPlan::none()),
        trace,
        "seed {seed}: none() must be the identity rewrite"
    );
    let clean = run(reader, generous(), &trace);
    let mut fired = 0usize;
    for &rate in RATES {
        let plan = ConnFaultPlan::uniform(rate, seed);
        let chaotic = apply_chaos(&trace, &plan);
        let rep = run(reader, generous(), &chaotic);
        assert!(rep.reconciles(), "seed {seed} rate {rate}: identity");
        assert_eq!(
            rep.dropped_without_response, 0,
            "seed {seed} rate {rate}: drain under chaos"
        );
        if rate == 0.0 {
            assert_eq!(
                rep, clean,
                "seed {seed}: rate-0 plan must match ConnFaultPlan::none()"
            );
        }
        for (tc, tb) in rep.transcripts.iter().zip(&clean.transcripts) {
            match plan.conn_fault(tc.id) {
                // Unfaulted and dribbled connections see the same
                // bytes at the same instants; responses must match
                // byte for byte even while other connections misbehave.
                None => {
                    assert_eq!(tc, tb, "seed {seed} rate {rate}: unfaulted conn {}", tc.id);
                }
                Some(ConnFault::Dribble) => {
                    fired += 1;
                    assert_eq!(
                        tc.bytes, tb.bytes,
                        "seed {seed} rate {rate}: dribbled conn {} bytes",
                        tc.id
                    );
                    assert_eq!(tc.statuses, tb.statuses, "seed {seed} rate {rate}");
                }
                Some(ConnFault::Garbage) => {
                    fired += 1;
                    // Junk before the request line: a clean 400, never
                    // a panic or a hang.
                    assert_eq!(
                        tc.statuses.first(),
                        Some(&400),
                        "seed {seed} rate {rate}: garbage conn {} must 400",
                        tc.id
                    );
                    assert_eq!(tc.close, CloseReason::ParseFailed);
                }
                Some(ConnFault::Disconnect) | Some(ConnFault::Stall) => {
                    fired += 1;
                    // A remnant stream must be reaped by a deadline,
                    // not linger: the close reason is always decisive.
                    assert!(
                        matches!(
                            tc.close,
                            CloseReason::DeadlineEvicted
                                | CloseReason::IdleReaped
                                | CloseReason::ClientDone
                                | CloseReason::ParseFailed
                        ),
                        "seed {seed} rate {rate}: conn {} close {:?}",
                        tc.id,
                        tc.close
                    );
                }
            }
        }
        // Chaos runs still terminate in bounded simulated time.
        assert!(
            rep.end_ms < 10_000,
            "seed {seed} rate {rate}: run did not settle ({} ms)",
            rep.end_ms
        );
    }
    fired
}

/// Phase 3: a burst beyond the queue sheds with Retry-After while
/// /healthz still answers.
fn saturation(reader: &StoreReader, seed: u64) {
    let tight = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        max_conns: 64,
        read_deadline_ms: 500,
        idle_deadline_ms: 500,
        service_ms: 50,
        retry_after_secs: 1,
    };
    let mut trace = Trace::new();
    for i in 0..6u64 {
        trace = trace.with(conn_of(i, 0, 0, &[get_close("/market?epoch=0")]));
    }
    // Arrives while every worker slot and queue seat is taken.
    trace = trace.with(conn_of(50, 1, 0, &[get_close("/healthz")]));
    let rep = run(reader, tight, &trace);
    assert!(rep.reconciles(), "seed {seed}: saturation identity");
    assert_eq!(rep.dropped_without_response, 0, "seed {seed}");
    assert!(
        rep.shed > 0,
        "seed {seed}: burst of 6 against workers=1+queue=1 must shed"
    );
    let health = rep
        .transcripts
        .iter()
        .find(|t| t.id == 50)
        .expect("healthz transcript");
    assert_eq!(
        health.statuses,
        vec![200],
        "seed {seed}: /healthz must answer while saturated"
    );
    assert!(contains(&health.bytes, b"\"epochs\""), "seed {seed}");
    let shed = rep
        .transcripts
        .iter()
        .find(|t| t.statuses.contains(&503))
        .expect("a shed transcript");
    assert!(
        contains(&shed.bytes, b"Retry-After: 1"),
        "seed {seed}: shed response must advertise Retry-After"
    );
    assert!(contains(&shed.bytes, b"overloaded"), "seed {seed}");
}

/// A trace engineered so all four request outcomes are nonzero under a
/// tight config: served (workload), errored (404s/bad escape), shed
/// (same-instant burst) and evicted (a slowloris remnant).
fn stress_trace(reader: &StoreReader) -> Trace {
    let mut trace = workload(reader);
    for i in 0..8u64 {
        trace = trace.with(conn_of(
            100 + i,
            0,
            0,
            &[get_close("/churn?from=0&to=1")],
        ));
    }
    // Partial request line, then silence: the read deadline evicts it.
    trace = trace.with(ClientConn::scripted(200, 0, 0, &[b"GET /heal"]));
    trace
}

/// Phase 4: serve.* counters reconcile with the report at every
/// thread count.
fn obs_reconciliation(reader: &StoreReader) {
    let tight = ServerConfig {
        workers: 2,
        queue_capacity: 2,
        max_conns: 64,
        read_deadline_ms: 100,
        idle_deadline_ms: 250,
        service_ms: 10,
        retry_after_secs: 1,
    };
    let trace = stress_trace(reader);
    mx_obs::set_enabled(true);
    for &n in THREADS {
        mx_obs::reset();
        let rep = mx_par::install(n, || run(reader, tight.clone(), &trace));
        let counter = |name: &str| mx_obs::metrics::counter_value(name);
        assert!(rep.reconciles(), "{n} threads: report identity");
        assert_eq!(rep.dropped_without_response, 0, "{n} threads");
        // Every outcome class is exercised, so the reconciliation is
        // not trivially zero.
        assert!(rep.served > 0, "{n} threads: served");
        assert!(rep.errored > 0, "{n} threads: errored");
        assert!(rep.shed > 0, "{n} threads: shed");
        assert!(rep.evicted > 0, "{n} threads: evicted");
        assert_eq!(
            counter(names::SERVE_REQS_ACCEPTED),
            rep.accepted,
            "{n} threads: accepted counter"
        );
        assert_eq!(counter(names::SERVE_REQS_SERVED), rep.served, "{n} threads");
        assert_eq!(
            counter(names::SERVE_REQS_ERRORED),
            rep.errored,
            "{n} threads"
        );
        assert_eq!(counter(names::SERVE_REQS_SHED), rep.shed, "{n} threads");
        assert_eq!(
            counter(names::SERVE_REQS_EVICTED),
            rep.evicted,
            "{n} threads"
        );
        assert_eq!(
            counter(names::SERVE_CONNS_ACCEPTED),
            rep.conns_accepted,
            "{n} threads"
        );
        assert_eq!(
            counter(names::SERVE_CONNS_REFUSED),
            rep.conns_refused,
            "{n} threads"
        );
        assert_eq!(
            counter(names::SERVE_REQS_ACCEPTED),
            counter(names::SERVE_REQS_SERVED)
                + counter(names::SERVE_REQS_ERRORED)
                + counter(names::SERVE_REQS_SHED)
                + counter(names::SERVE_REQS_EVICTED),
            "{n} threads: counter-side identity"
        );
    }
    mx_obs::reset();
    mx_obs::set_enabled(false);
}

fn get_inm(target: &str, tag: &str) -> String {
    format!("GET {target} HTTP/1.1\r\nIf-None-Match: {tag}\r\n\r\n")
}

/// Count occurrences of `needle` in `haystack`.
fn count(haystack: &[u8], needle: &[u8]) -> usize {
    haystack.windows(needle.len()).filter(|w| *w == needle).count()
}

/// Phase 5: conditional requests. Every cacheable 200 carries the
/// strong store etag; `If-None-Match` with the current tag is a 304
/// hit answered from the serial loop, a stale tag is a miss that
/// re-renders in full, and appending delta epochs to the store changes
/// the tag so old validators stop matching.
fn conditional_requests() {
    let initial = WorldState::seeded(5, 48);
    let log = generate_events(
        &initial,
        &EventStreamConfig {
            seed: 5,
            batches: 1,
            churn: 0.10,
            adds_per_batch: 1,
        },
    );
    let base = full_recompute(&initial, &[]).expect("base store");
    let (grown, _) = run_incremental(&initial, &log).expect("grown store");

    let reader = StoreReader::open(&base).expect("open base store");
    let tag = mx_serve::etag_value(mx_serve::store_etag(&reader));
    let stale = "\"mx-0000000000000000\"";
    let mut domain = String::new();
    reader
        .for_each_row(0, |name, _| {
            if domain.is_empty() {
                domain = name.to_string();
            }
            Ok(())
        })
        .expect("scan base epoch");
    let lookup = format!("/lookup?domain={domain}&epoch=0");

    let trace = Trace::new()
        .with(conn_of(
            0,
            0,
            30,
            &[
                get("/market?epoch=0"),                      // 200 + ETag
                get_inm("/market?epoch=0", &tag),            // hit: 304
                get_inm("/market?epoch=0", stale),           // miss: full 200
                get_inm("/market?epoch=0", &format!("W/{tag}")), // weak compare: 304
                get_inm("/market?epoch=0", &format!("{stale}, {tag}")), // list: 304
                get_close_inm("/market?epoch=0", "*"),       // wildcard: 304
            ],
        ))
        .with(conn_of(
            1,
            5,
            30,
            &[
                get(&lookup),          // row-cache miss: 200 + ETag
                get(&lookup),          // row/json-cache hit: identical bytes
                get_inm(&lookup, &tag), // hit: 304
                // /healthz is live, never conditional: always a full 200.
                get_close_inm("/healthz", &tag),
            ],
        ));
    let rep = run(&reader, generous(), &trace);
    assert!(rep.reconciles(), "conditional: accounting identity");
    assert_eq!(rep.dropped_without_response, 0, "conditional: drain");
    let c0 = rep.transcripts.iter().find(|t| t.id == 0).expect("conn 0");
    assert_eq!(c0.statuses, vec![200, 304, 200, 304, 304, 304]);
    let c1 = rep.transcripts.iter().find(|t| t.id == 1).expect("conn 1");
    assert_eq!(c1.statuses, vec![200, 200, 304, 200]);
    // Every 200 on a cacheable endpoint and every 304 carries the tag;
    // the cache-hit 200 must be byte-identical to the miss, and the
    // healthz answer stays unconditional and tagless.
    let header = format!("ETag: {tag}\r\n");
    assert_eq!(count(&c0.bytes, header.as_bytes()), 6, "conn 0 etags");
    assert_eq!(count(&c1.bytes, header.as_bytes()), 3, "conn 1 etags");
    assert!(contains(&c0.bytes, b"304 Not Modified\r\n"));
    assert!(contains(&c1.bytes, b"\"status\":\"ok\""), "healthz served in full");

    // Appending delta epochs rewrites the digest sections: the etag
    // changes and the old validator stops revalidating.
    let reader2 = StoreReader::open(&grown).expect("open grown store");
    assert!(reader2.epoch_count() > reader.epoch_count(), "grown store appended");
    let tag2 = mx_serve::etag_value(mx_serve::store_etag(&reader2));
    assert_ne!(tag, tag2, "append must change the etag");
    let trace2 = Trace::new().with(conn_of(
        0,
        0,
        30,
        &[
            get_inm("/market?epoch=0", &tag),  // old tag: full 200 again
            get_close_inm("/market?epoch=0", &tag2), // new tag: 304
        ],
    ));
    let rep2 = run(&reader2, generous(), &trace2);
    let c = rep2.transcripts.first().expect("grown conn");
    assert_eq!(c.statuses, vec![200, 304], "after-append etag change");
    let header2 = format!("ETag: {tag2}\r\n");
    assert_eq!(count(&c.bytes, header2.as_bytes()), 2, "grown etags");
    assert!(!contains(&c.bytes, header.as_bytes()), "old etag gone");
}

fn get_close_inm(target: &str, tag: &str) -> String {
    format!("GET {target} HTTP/1.1\r\nIf-None-Match: {tag}\r\nConnection: close\r\n\r\n")
}

#[test]
fn serve_gate() {
    let mut fired = 0usize;
    for &seed in SEEDS {
        let bytes = build_store(seed);
        let reader = StoreReader::open(&bytes).expect("open store");
        replay_identical(&reader, seed);
        fired += chaos_sweep(&reader, seed);
        saturation(&reader, seed);
    }
    assert!(
        fired > 0,
        "chaos sweep never fired a fault — rates or coin widths are broken"
    );
    let bytes = build_store(1);
    let reader = StoreReader::open(&bytes).expect("open store");
    obs_reconciliation(&reader);
    conditional_requests();
}
