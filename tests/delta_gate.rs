//! Incremental-measurement gate for `mx-delta`.
//!
//! The contract: a store grown by the reconciler — base build plus
//! `StoreWriter::append_epochs` per event batch, re-measuring only
//! dirty domains — is **byte-identical** to a full-pipeline recompute
//! of the same end state, for every seed, event rate and `mx_par`
//! thread width. On top of the bytes, the `delta.*` obs counters must
//! reconcile exactly against the reconciler's own accounting, and the
//! accounting must close: every domain is either re-resolved or a
//! reuse hit, never both, never neither.
//!
//! Everything runs inside one `#[test]` so the global counter
//! comparison is not raced by a sibling test.

use mx_delta::{
    decode_log, encode_log, full_recompute, generate_events, run_incremental, EventStreamConfig,
    WorldState,
};
use mx_store::{EpochKind, StoreReader};

const SEEDS: &[u64] = &[1, 7, 42];
const THREADS: &[usize] = &[1, 2, 8];
const RATES: &[f64] = &[0.02, 0.20];
const POPULATION: usize = 220;
const BATCHES: usize = 3;

fn counter_values() -> [u64; 6] {
    use mx_obs::names as n;
    [
        mx_obs::counter!(n::DELTA_EVENTS_APPLIED).value(),
        mx_obs::counter!(n::DELTA_DOMAINS_DIRTY).value(),
        mx_obs::counter!(n::DELTA_RERESOLVES).value(),
        mx_obs::counter!(n::DELTA_RESCANS).value(),
        mx_obs::counter!(n::DELTA_REUSE_HITS).value(),
        mx_obs::counter!(n::DELTA_EPOCHS_APPENDED).value(),
    ]
}

#[test]
fn incremental_append_is_byte_identical_to_full_recompute() {
    mx_obs::set_enabled(true);
    let before = counter_values();
    let mut expected = [0u64; 6];

    for &seed in SEEDS {
        for &rate in RATES {
            let initial = WorldState::seeded(seed, POPULATION);
            let log = generate_events(
                &initial,
                &EventStreamConfig {
                    seed,
                    batches: BATCHES,
                    churn: rate,
                    adds_per_batch: 2,
                },
            );
            assert!(
                log.iter().map(Vec::len).sum::<usize>() > 0,
                "seed {seed} rate {rate}: empty event stream"
            );

            // The event log round-trips through its wire format before
            // application, like a log replayed from disk would.
            let replayed = decode_log(&encode_log(&log)).expect("log round-trips");
            assert_eq!(replayed, log);

            // Oracle: full recompute of every prefix state.
            let oracle =
                mx_par::install(8, || full_recompute(&initial, &replayed).expect("oracle runs"));

            for &threads in THREADS {
                let (bytes, stats) = mx_par::install(threads, || {
                    run_incremental(&initial, &replayed).expect("incremental runs")
                });
                assert_eq!(
                    bytes, oracle,
                    "seed {seed} rate {rate} threads {threads}: incremental store diverged"
                );

                // The accounting closes batch by batch: every domain is
                // re-resolved or reused, and every re-scan shows up in
                // the appended epoch's acquisition sidecar.
                let reader = StoreReader::open(&bytes).expect("grown store opens");
                assert_eq!(reader.epoch_count(), BATCHES + 1);
                assert_eq!(reader.epoch_kind(0), Some(EpochKind::Base));
                for (k, s) in stats.iter().enumerate() {
                    assert_eq!(
                        s.reresolved + s.reuse_hits,
                        s.population,
                        "seed {seed} rate {rate} threads {threads} batch {k}: accounting leak"
                    );
                    assert!(s.dirty_domains >= s.reresolved || s.population == 0);
                    let epoch = k + 1;
                    assert_eq!(reader.label(epoch), Some(mx_delta::epoch_label(epoch).as_str()));
                    assert_eq!(reader.epoch_kind(epoch), Some(EpochKind::Delta));
                    let acq = reader
                        .acquisition_report(epoch)
                        .expect("sidecar acquisition reads");
                    assert!(
                        s.rescanned_ips <= acq.ips.len() as u64,
                        "batch {k}: rescanned {} ips but sidecar only accounts {}",
                        s.rescanned_ips,
                        acq.ips.len()
                    );
                    assert!(acq.domains.is_empty(), "delta DNS must be fault-free");
                }

                for s in &stats {
                    expected[0] += s.events_applied;
                    expected[1] += s.dirty_domains;
                    expected[2] += s.reresolved;
                    expected[3] += s.rescanned_ips;
                    expected[4] += s.reuse_hits;
                    expected[5] += 1;
                }
            }

            // Churn sanity: at low rates most measurement is reused.
            if rate <= 0.05 {
                let (_, stats) =
                    mx_par::install(1, || run_incremental(&initial, &replayed).expect("runs"));
                for s in &stats {
                    expected[0] += s.events_applied;
                    expected[1] += s.dirty_domains;
                    expected[2] += s.reresolved;
                    expected[3] += s.rescanned_ips;
                    expected[4] += s.reuse_hits;
                    expected[5] += 1;
                    assert!(
                        s.reuse_hits * 2 > s.population,
                        "low churn should reuse most domains: {s:?}"
                    );
                }
            }
        }
    }

    // The delta.* counters reconcile exactly against the stats the
    // reconciler reported.
    let after = counter_values();
    let names = [
        "events applied",
        "dirty domains",
        "re-resolves",
        "re-scans",
        "reuse hits",
        "epochs appended",
    ];
    for i in 0..6 {
        assert_eq!(
            after[i] - before[i],
            expected[i],
            "counter {} out of step",
            names[i]
        );
    }
    mx_obs::set_enabled(false);
}
