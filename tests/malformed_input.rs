//! Malformed-input regression tests for the untrusted-input parsers.
//!
//! Every case here is a shape an Internet-facing scanner actually sees:
//! truncated UDP payloads, compression-pointer loops, oversized labels,
//! nonsense SMTP codes. The contract under test is the one `mx-lint`
//! enforces statically: parsers return `Err`/`None`, they never panic.

use mx_dns::{dns_name, Message, Name, NameError, RecordType, WireError, WireReader};
use mx_smtp::{Reply, ReplyCode};

fn sample_response_bytes() -> Vec<u8> {
    let mut q = Message::query(0x4d58, dns_name!("example.com"), RecordType::Mx);
    q.header.qr = true;
    q.answers.push(mx_dns::Record::new(
        dns_name!("example.com"),
        3600,
        mx_dns::RData::Mx {
            preference: 10,
            exchange: dns_name!("aspmx.l.google.com"),
        },
    ));
    q.encode().expect("valid message encodes")
}

/// Every proper prefix of a valid message decodes to `Err`, never a
/// panic and never a bogus `Ok`.
#[test]
fn truncated_messages_error_cleanly() {
    let bytes = sample_response_bytes();
    for cut in 0..bytes.len() {
        let r = Message::decode(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes decoded to {r:?}");
    }
    assert!(Message::decode(&bytes).is_ok());
}

/// A message whose header claims more records than the body carries.
#[test]
fn overclaimed_section_counts_error() {
    let mut bytes = sample_response_bytes();
    // ANCOUNT lives at bytes 6..8; claim 0xFFFF answers.
    bytes[6] = 0xFF;
    bytes[7] = 0xFF;
    assert!(matches!(Message::decode(&bytes), Err(WireError::Truncated)));
}

/// Compression pointers that point at themselves, forward, or at each
/// other must be rejected as `BadPointer` (RFC 1035 pointers may only
/// reference *prior* data).
#[test]
fn compression_pointer_loops_are_rejected() {
    // Self-loop: a pointer at offset 0 pointing to offset 0.
    let self_loop = [0xC0, 0x00];
    let mut r = WireReader::new(&self_loop);
    assert!(matches!(r.get_name(), Err(WireError::BadPointer)));

    // Forward pointer.
    let forward = [0xC0, 0x04, 0x00, 0x00, 0x01, b'a', 0x00];
    let mut r = WireReader::new(&forward);
    assert!(matches!(r.get_name(), Err(WireError::BadPointer)));

    // Mutual loop: label "a" then pointer to 4, which points back to 0.
    let mutual = [0x01, b'a', 0xC0, 0x04, 0xC0, 0x00];
    let mut r = WireReader::new(&mutual[..]);
    let start4 = &mutual[4..];
    let mut r4 = WireReader::new(start4);
    assert!(r.get_name().is_err());
    assert!(r4.get_name().is_err());
}

/// A pointer with no second byte is truncation, not a crash.
#[test]
fn dangling_pointer_byte_is_truncated() {
    let mut r = WireReader::new(&[0xC0]);
    assert!(matches!(r.get_name(), Err(WireError::Truncated)));
}

/// Label length octets above 63 use the reserved 0x40/0x80 tag space and
/// must be rejected, matching the textual parser's 63-byte label cap.
#[test]
fn oversized_labels_rejected_on_wire_and_in_text() {
    // 64 is the smallest invalid plain-label length.
    let mut bytes = vec![64u8];
    bytes.extend(std::iter::repeat(b'x').take(64));
    bytes.push(0);
    let mut r = WireReader::new(&bytes);
    assert!(matches!(r.get_name(), Err(WireError::BadLabelLength(_))));

    let long_label = "x".repeat(64);
    assert!(matches!(
        Name::parse(&format!("{long_label}.com")),
        Err(NameError::LabelTooLong(_))
    ));
    // 63 is still fine.
    assert!(Name::parse(&format!("{}.com", "x".repeat(63))).is_ok());
}

/// A name assembled from max-length labels that exceeds 255 wire bytes
/// total is rejected even though each label is individually valid.
#[test]
fn overlong_names_rejected() {
    let long = vec!["abcdefgh"; 32].join(".");
    assert!(matches!(Name::parse(&long), Err(NameError::NameTooLong)));
}

/// SMTP reply codes outside 1xx–5xx (and non-numeric garbage) must parse
/// to `None`/`Err`, never panic.
#[test]
fn out_of_range_smtp_reply_codes_rejected() {
    for line in [
        "600 not a real class",
        "999 nope",
        "000 zero",
        "042 too low",
        "abc letters",
        "25",
        "",
        "250x bad separator",
    ] {
        assert_eq!(Reply::parse_line(line), None, "line {line:?}");
    }
    assert!(Reply::parse(&["600 no such class"]).is_err());
    assert!(Reply::parse(&[]).is_err());
    // Sanity: the happy path still parses.
    assert_eq!(
        Reply::parse_line("250 OK"),
        Some((ReplyCode(250), true, "OK"))
    );
    assert_eq!(
        Reply::parse_line("250-continues"),
        Some((ReplyCode(250), false, "continues"))
    );
}

/// Mixed codes and marker mismatches inside one reply are inconsistent.
#[test]
fn inconsistent_multiline_replies_rejected() {
    assert!(Reply::parse(&["250-first", "550 second"]).is_err());
    assert!(Reply::parse(&["250-first", "250-second"]).is_err());
    assert!(Reply::parse(&["250 done", "250 extra"]).is_err());
}

/// Multibyte UTF-8 in a reply line must not slice mid-character.
#[test]
fn multibyte_reply_lines_do_not_panic() {
    assert_eq!(Reply::parse_line("é50 nope"), None);
    let _ = Reply::parse_line("250 caf\u{e9} au lait");
    let _ = Reply::parse_line("25\u{30a2} bad");
}
