//! Malformed-input regression tests for the untrusted-input parsers.
//!
//! Every case here is a shape an Internet-facing scanner actually sees:
//! truncated UDP payloads, compression-pointer loops, oversized labels,
//! nonsense SMTP codes. The contract under test is the one `mx-lint`
//! enforces statically: parsers return `Err`/`None`, they never panic.

use mx_dns::{dns_name, Message, Name, NameError, RecordType, WireError, WireReader};
use mx_smtp::{Reply, ReplyCode};

fn sample_response_bytes() -> Vec<u8> {
    let mut q = Message::query(0x4d58, dns_name!("example.com"), RecordType::Mx);
    q.header.qr = true;
    q.answers.push(mx_dns::Record::new(
        dns_name!("example.com"),
        3600,
        mx_dns::RData::Mx {
            preference: 10,
            exchange: dns_name!("aspmx.l.google.com"),
        },
    ));
    q.encode().expect("valid message encodes")
}

/// Every proper prefix of a valid message decodes to `Err`, never a
/// panic and never a bogus `Ok`.
#[test]
fn truncated_messages_error_cleanly() {
    let bytes = sample_response_bytes();
    for cut in 0..bytes.len() {
        let r = Message::decode(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes decoded to {r:?}");
    }
    assert!(Message::decode(&bytes).is_ok());
}

/// A message whose header claims more records than the body carries.
#[test]
fn overclaimed_section_counts_error() {
    let mut bytes = sample_response_bytes();
    // ANCOUNT lives at bytes 6..8; claim 0xFFFF answers.
    bytes[6] = 0xFF;
    bytes[7] = 0xFF;
    assert!(matches!(Message::decode(&bytes), Err(WireError::Truncated)));
}

/// Compression pointers that point at themselves, forward, or at each
/// other must be rejected as `BadPointer` (RFC 1035 pointers may only
/// reference *prior* data).
#[test]
fn compression_pointer_loops_are_rejected() {
    // Self-loop: a pointer at offset 0 pointing to offset 0.
    let self_loop = [0xC0, 0x00];
    let mut r = WireReader::new(&self_loop);
    assert!(matches!(r.get_name(), Err(WireError::BadPointer)));

    // Forward pointer.
    let forward = [0xC0, 0x04, 0x00, 0x00, 0x01, b'a', 0x00];
    let mut r = WireReader::new(&forward);
    assert!(matches!(r.get_name(), Err(WireError::BadPointer)));

    // Mutual loop: label "a" then pointer to 4, which points back to 0.
    let mutual = [0x01, b'a', 0xC0, 0x04, 0xC0, 0x00];
    let mut r = WireReader::new(&mutual[..]);
    let start4 = &mutual[4..];
    let mut r4 = WireReader::new(start4);
    assert!(r.get_name().is_err());
    assert!(r4.get_name().is_err());
}

/// A pointer with no second byte is truncation, not a crash.
#[test]
fn dangling_pointer_byte_is_truncated() {
    let mut r = WireReader::new(&[0xC0]);
    assert!(matches!(r.get_name(), Err(WireError::Truncated)));
}

/// Label length octets above 63 use the reserved 0x40/0x80 tag space and
/// must be rejected, matching the textual parser's 63-byte label cap.
#[test]
fn oversized_labels_rejected_on_wire_and_in_text() {
    // 64 is the smallest invalid plain-label length.
    let mut bytes = vec![64u8];
    bytes.extend(std::iter::repeat(b'x').take(64));
    bytes.push(0);
    let mut r = WireReader::new(&bytes);
    assert!(matches!(r.get_name(), Err(WireError::BadLabelLength(_))));

    let long_label = "x".repeat(64);
    assert!(matches!(
        Name::parse(&format!("{long_label}.com")),
        Err(NameError::LabelTooLong(_))
    ));
    // 63 is still fine.
    assert!(Name::parse(&format!("{}.com", "x".repeat(63))).is_ok());
}

/// A name assembled from max-length labels that exceeds 255 wire bytes
/// total is rejected even though each label is individually valid.
#[test]
fn overlong_names_rejected() {
    let long = vec!["abcdefgh"; 32].join(".");
    assert!(matches!(Name::parse(&long), Err(NameError::NameTooLong)));
}

/// SMTP reply codes outside 1xx–5xx (and non-numeric garbage) must parse
/// to `None`/`Err`, never panic.
#[test]
fn out_of_range_smtp_reply_codes_rejected() {
    for line in [
        "600 not a real class",
        "999 nope",
        "000 zero",
        "042 too low",
        "abc letters",
        "25",
        "",
        "250x bad separator",
    ] {
        assert_eq!(Reply::parse_line(line), None, "line {line:?}");
    }
    assert!(Reply::parse(&["600 no such class"]).is_err());
    assert!(Reply::parse(&[]).is_err());
    // Sanity: the happy path still parses.
    assert_eq!(
        Reply::parse_line("250 OK"),
        Some((ReplyCode(250), true, "OK"))
    );
    assert_eq!(
        Reply::parse_line("250-continues"),
        Some((ReplyCode(250), false, "continues"))
    );
}

/// Mixed codes and marker mismatches inside one reply are inconsistent.
#[test]
fn inconsistent_multiline_replies_rejected() {
    assert!(Reply::parse(&["250-first", "550 second"]).is_err());
    assert!(Reply::parse(&["250-first", "250-second"]).is_err());
    assert!(Reply::parse(&["250 done", "250 extra"]).is_err());
}

/// Multibyte UTF-8 in a reply line must not slice mid-character.
#[test]
fn multibyte_reply_lines_do_not_panic() {
    assert_eq!(Reply::parse_line("é50 nope"), None);
    let _ = Reply::parse_line("250 caf\u{e9} au lait");
    let _ = Reply::parse_line("25\u{30a2} bad");
}

// ---------------------------------------------------------------------
// mx-store: the snapshot store decoder is held to the same contract as
// the wire parsers — corrupted files yield typed `StoreError`s, never a
// panic and never a silently-wrong `Ok`. The cases below hand-assemble
// store bytes field by field so each corruption targets one invariant.

mod store_bytes {
    use mx_store::format::{write_str, MAGIC};
    use mx_store::varint::write_u64;

    /// Knobs for one hand-assembled single-epoch store file. Builds the
    /// `mx-store/1` layout (no restart-interval byte, no index footer);
    /// the v2-specific sections get their own builder below.
    pub struct Spec {
        pub magic: [u8; 4],
        pub version: u16,
        pub schema: &'static str,
        /// Company link of the single provider (0 = none; 2 points past
        /// the empty company table).
        pub provider_company: u64,
        /// Interned provider index inside the single share (only 0 is
        /// valid: the table has one entry).
        pub share_provider: u64,
        pub share_source: u8,
        /// Row entries: (prefix_len, suffix, tag).
        pub entries: Vec<(u64, &'static str, u8)>,
        /// Raw override for the entry-count varint.
        pub entry_count_bytes: Option<Vec<u8>>,
        /// Sidecar body (defaults to zero IPs, zero domains).
        pub sidecar: Vec<u8>,
        /// Junk appended after the last epoch.
        pub trailing: Vec<u8>,
    }

    impl Default for Spec {
        fn default() -> Self {
            Spec {
                magic: *MAGIC,
                version: mx_store::VERSION_V1,
                schema: mx_store::SCHEMA_V1,
                provider_company: 0,
                share_provider: 0,
                share_source: 0,
                entries: vec![(0, "a.test", 1)],
                entry_count_bytes: None,
                sidecar: {
                    let mut s = Vec::new();
                    write_u64(&mut s, 0); // IP records
                    write_u64(&mut s, 0); // DNS records
                    s
                },
                trailing: Vec::new(),
            }
        }
    }

    /// Assemble the bytes: header, one provider (`p.test`), no
    /// companies, one base epoch of `spec.entries` rows (one share
    /// each), the given sidecar, then any trailing junk.
    pub fn build(spec: Spec) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&spec.magic);
        out.extend_from_slice(&spec.version.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        write_str(&mut out, spec.schema);

        write_u64(&mut out, 1); // provider table
        write_str(&mut out, "p.test");
        write_u64(&mut out, 0); // company table
        write_u64(&mut out, spec.provider_company);

        write_u64(&mut out, 1); // epoch count
        write_str(&mut out, "2021-06");
        out.push(0); // kind: base

        let mut rows = Vec::new();
        match &spec.entry_count_bytes {
            Some(raw) => rows.extend_from_slice(raw),
            None => write_u64(&mut rows, spec.entries.len() as u64),
        }
        for (prefix, suffix, tag) in &spec.entries {
            write_u64(&mut rows, *prefix);
            write_u64(&mut rows, suffix.len() as u64);
            rows.extend_from_slice(suffix.as_bytes());
            rows.push(*tag);
            if *tag != 2 {
                write_u64(&mut rows, 1); // one share
                write_u64(&mut rows, spec.share_provider);
                rows.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
                rows.push(spec.share_source);
            }
        }
        write_u64(&mut out, rows.len() as u64);
        out.extend_from_slice(&rows);

        write_u64(&mut out, spec.sidecar.len() as u64);
        out.extend_from_slice(&spec.sidecar);
        out.extend_from_slice(&spec.trailing);
        out
    }
}

use mx_store::{StoreError, StoreReader};
use store_bytes::{build, Spec};

/// The hand-assembled baseline is valid — every corruption case below
/// differs from it in exactly one field.
#[test]
fn hand_assembled_store_opens() {
    let bytes = build(Spec::default());
    let reader = StoreReader::open(&bytes).expect("baseline opens");
    assert_eq!(reader.epoch_count(), 1);
    assert_eq!(reader.providers(), ["p.test"]);
    let row = reader.lookup("a.test", 0).unwrap().expect("row present");
    assert_eq!(row.shares().next().unwrap().provider, "p.test");
}

/// Bad magic, unknown version and a wrong schema string each produce
/// their own typed error, not a generic failure.
#[test]
fn store_header_corruption_is_typed() {
    let bad_magic = build(Spec {
        magic: *b"NOPE",
        ..Spec::default()
    });
    assert_eq!(StoreReader::open(&bad_magic).unwrap_err(), StoreError::BadMagic);

    let bad_version = build(Spec {
        version: 9,
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&bad_version).unwrap_err(),
        StoreError::UnsupportedVersion(9)
    );

    let bad_schema = build(Spec {
        schema: "mx-store/999",
        ..Spec::default()
    });
    assert_eq!(StoreReader::open(&bad_schema).unwrap_err(), StoreError::BadSchema);
}

/// Interned indices pointing past their tables are caught at open, on
/// both the provider→company map and share→provider references.
#[test]
fn store_out_of_range_interning_rejected() {
    let bad_company = build(Spec {
        provider_company: 7, // company table is empty
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&bad_company).unwrap_err(),
        StoreError::BadIndex { what: "company" }
    );

    let bad_provider = build(Spec {
        share_provider: 5, // provider table has one entry
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&bad_provider).unwrap_err(),
        StoreError::BadIndex { what: "provider" }
    );
}

/// Varint overruns: an 11-byte continuation chain for the entry count
/// must error, not spin or wrap.
#[test]
fn store_varint_overrun_rejected() {
    let overrun = build(Spec {
        entry_count_bytes: Some(vec![0x80; 11]),
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&overrun).unwrap_err(),
        StoreError::VarintOverflow
    );
    // A count that decodes but promises more entries than the section
    // holds is truncation-class, still typed.
    let overclaim = build(Spec {
        entry_count_bytes: Some(vec![0xFF, 0xFF, 0x03]), // 65535
        ..Spec::default()
    });
    assert!(StoreReader::open(&overclaim).is_err());
}

/// Structural invariants: removals are delta-only, entries must be
/// strictly ascending, unknown tags and source codes are rejected, and
/// junk after the last epoch is caught.
#[test]
fn store_structural_corruption_rejected() {
    let remove_in_base = build(Spec {
        entries: vec![(0, "a.test", 2)],
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&remove_in_base).unwrap_err(),
        StoreError::RemoveInBase
    );

    let unsorted = build(Spec {
        entries: vec![(0, "b.test", 1), (0, "a.test", 1)],
        ..Spec::default()
    });
    assert_eq!(StoreReader::open(&unsorted).unwrap_err(), StoreError::Unsorted);

    let duplicate = build(Spec {
        entries: vec![(0, "a.test", 1), (6, "", 1)], // prefix re-uses all of "a.test"
        ..Spec::default()
    });
    assert_eq!(StoreReader::open(&duplicate).unwrap_err(), StoreError::Unsorted);

    let bad_tag = build(Spec {
        entries: vec![(0, "a.test", 9)],
        ..Spec::default()
    });
    assert_eq!(StoreReader::open(&bad_tag).unwrap_err(), StoreError::BadTag(9));

    let bad_source = build(Spec {
        share_source: 9,
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&bad_source).unwrap_err(),
        StoreError::BadSource(9)
    );

    let trailing = build(Spec {
        trailing: vec![0xAB, 0xCD],
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&trailing).unwrap_err(),
        StoreError::TrailingBytes
    );

    // A prefix longer than the previous name cannot reference bytes
    // that don't exist.
    let bad_prefix = build(Spec {
        entries: vec![(0, "a.test", 1), (20, "x", 1)],
        ..Spec::default()
    });
    assert_eq!(StoreReader::open(&bad_prefix).unwrap_err(), StoreError::BadPrefix);
}

/// Sidecar corruption: undefined flag bits and unknown fault codes are
/// rejected at open, before any iterator is handed out.
#[test]
fn store_sidecar_corruption_rejected() {
    let mut side = Vec::new();
    mx_store::varint::write_u64(&mut side, 1); // one IP record
    side.extend_from_slice(&[10, 0, 0, 1]); // 10.0.0.1
    mx_store::varint::write_u64(&mut side, 3); // attempts
    side.push(0xF0); // flags: undefined high bits
    side.push(0); // fault: none
    mx_store::varint::write_u64(&mut side, 0); // no DNS records
    let bad_flags = build(Spec {
        sidecar: side.clone(),
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&bad_flags).unwrap_err(),
        StoreError::BadFlags(0xF0)
    );

    let flags_at = side.len() - 3; // [.., flags, fault, dns-count]
    side[flags_at] = 0x01; // valid flags…
    side[flags_at + 1] = 42; // …but a fault code from the future
    let bad_fault = build(Spec {
        sidecar: side,
        ..Spec::default()
    });
    assert_eq!(
        StoreReader::open(&bad_fault).unwrap_err(),
        StoreError::BadFault(42)
    );
}

/// Every proper prefix of the hand-assembled store errors cleanly —
/// the same contract `truncated_messages_error_cleanly` pins for DNS.
#[test]
fn truncated_stores_error_cleanly() {
    let bytes = build(Spec::default());
    for cut in 0..bytes.len() {
        let r = StoreReader::open(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes opened: {r:?}");
    }
    assert!(StoreReader::open(&bytes).is_ok());
}

// ---------------------------------------------------------------------
// mx-store/2: the index footer (dictionary, summary, rollup, postings,
// digest) is decoded from the same untrusted bytes as the epoch layers
// and held to the same contract. The builder assembles a two-row v2
// file section by section so each test can swap exactly one section
// for a corrupted variant.

mod store_bytes_v2 {
    use mx_store::format::{write_str, MAGIC, SCHEMA};
    use mx_store::varint::write_u64;

    /// Per-section overrides for one hand-assembled v2 store file:
    /// `None` keeps the valid default, `Some(bytes)` swaps the
    /// section's content (the length frame always reflects the actual
    /// bytes, so corruption targets the decoder, not the framing).
    #[derive(Default)]
    pub struct SpecV2 {
        /// Restart-interval header byte override (default 16).
        pub interval: Option<u8>,
        pub dict: Option<Vec<u8>>,
        pub summary: Option<Vec<u8>>,
        pub rollup: Option<Vec<u8>>,
        pub postings: Option<Vec<u8>>,
        pub digest: Option<Vec<u8>>,
    }

    fn bits(w: f64) -> [u8; 8] {
        w.to_bits().to_le_bytes()
    }

    /// Valid dictionary: the two row names in byte order.
    pub fn dict_section() -> Vec<u8> {
        let mut s = Vec::new();
        write_u64(&mut s, 2);
        for name in ["a.test", "b.test"] {
            write_u64(&mut s, 0); // no shared prefix
            write_u64(&mut s, name.len() as u64);
            s.extend_from_slice(name.as_bytes());
        }
        s
    }

    /// Valid summary: 2 rows total, provider 0 on both with weight 2.0.
    pub fn summary_section(rows: u64, weight: f64) -> Vec<u8> {
        let mut s = Vec::new();
        write_u64(&mut s, 2); // total rows in the resolved view
        write_u64(&mut s, 1); // one provider entry
        write_u64(&mut s, 0); // pid
        write_u64(&mut s, rows);
        s.extend_from_slice(&bits(weight));
        s
    }

    /// Valid rollup: one long-tail provider credit worth 2.0.
    pub fn rollup_section() -> Vec<u8> {
        let mut s = Vec::new();
        write_u64(&mut s, 1);
        s.push(1); // kind: provider credit
        write_u64(&mut s, 0); // provider 0
        s.extend_from_slice(&bits(2.0));
        s
    }

    /// Valid postings: provider 0 → docs {0, 1} (gap-encoded).
    pub fn postings_section() -> Vec<u8> {
        let mut s = Vec::new();
        write_u64(&mut s, 1); // one provider
        write_u64(&mut s, 0); // pid
        write_u64(&mut s, 2); // doc count
        write_u64(&mut s, 0); // first doc
        write_u64(&mut s, 1); // gap to doc 1
        s
    }

    /// Valid digest: both rows SMTP-positive, credited to provider 0.
    pub fn digest_section() -> Vec<u8> {
        let mut s = Vec::new();
        for (gap, flags, credit) in [(0u64, 13u8, 0u64), (1, 13, 0)] {
            write_u64(&mut s, gap);
            s.push(flags); // SMTP | HAS_CREDIT | CREDIT_PROVIDER
            write_u64(&mut s, credit);
        }
        s
    }

    /// Assemble the v2 bytes: header, one provider (`p.test`), one base
    /// epoch with rows `a.test`/`b.test` (one weight-1.0 share each),
    /// then the dictionary and the epoch's four index sections.
    pub fn build_v2(spec: SpecV2) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&mx_store::VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        write_str(&mut out, SCHEMA);
        out.push(spec.interval.unwrap_or(16));

        write_u64(&mut out, 1); // provider table
        write_str(&mut out, "p.test");
        write_u64(&mut out, 0); // company table
        write_u64(&mut out, 0); // p.test → no company

        write_u64(&mut out, 1); // epoch count
        write_str(&mut out, "2021-06");
        out.push(0); // kind: base
        let mut rows = Vec::new();
        write_u64(&mut rows, 2);
        for name in ["a.test", "b.test"] {
            write_u64(&mut rows, 0); // prefix
            write_u64(&mut rows, name.len() as u64);
            rows.extend_from_slice(name.as_bytes());
            rows.push(1); // tag: row with SMTP
            write_u64(&mut rows, 1); // one share
            write_u64(&mut rows, 0); // provider 0
            rows.extend_from_slice(&bits(1.0));
            rows.push(0); // source: certificate
        }
        write_u64(&mut out, rows.len() as u64);
        out.extend_from_slice(&rows);
        let mut side = Vec::new();
        write_u64(&mut side, 0); // IP records
        write_u64(&mut side, 0); // DNS records
        write_u64(&mut out, side.len() as u64);
        out.extend_from_slice(&side);

        for section in [
            spec.dict.unwrap_or_else(dict_section),
            spec.summary.unwrap_or_else(|| summary_section(2, 2.0)),
            spec.rollup.unwrap_or_else(rollup_section),
            spec.postings.unwrap_or_else(postings_section),
            spec.digest.unwrap_or_else(digest_section),
        ] {
            write_u64(&mut out, section.len() as u64);
            out.extend_from_slice(&section);
        }
        out
    }
}

use store_bytes_v2::{build_v2, SpecV2};

/// The hand-assembled v2 baseline opens, carries indexes, and its
/// footer agrees with the epoch layers under full recomputation.
#[test]
fn hand_assembled_v2_store_opens_and_verifies() {
    let bytes = build_v2(SpecV2::default());
    let reader = StoreReader::open(&bytes).expect("v2 baseline opens");
    assert!(reader.has_indexes());
    reader.verify_indexes().expect("footer matches layers");
    assert_eq!(
        reader.domains_of_provider("p.test", 0).unwrap(),
        ["a.test", "b.test"]
    );
}

/// A zeroed restart-interval byte is rejected before any section is
/// decoded (it would make every dictionary access divide by zero).
#[test]
fn v2_zero_restart_interval_rejected() {
    let bytes = build_v2(SpecV2 {
        interval: Some(0),
        ..SpecV2::default()
    });
    assert_eq!(
        StoreReader::open(&bytes).unwrap_err(),
        StoreError::IndexCorrupt {
            what: "restart interval"
        }
    );
}

/// A postings block whose content ends mid-entry is truncation, even
/// though the section frame itself is honest about the byte count.
#[test]
fn v2_truncated_postings_block_rejected() {
    let mut postings = store_bytes_v2::postings_section();
    postings.pop(); // lose the final gap varint
    let bytes = build_v2(SpecV2 {
        postings: Some(postings),
        ..SpecV2::default()
    });
    assert_eq!(StoreReader::open(&bytes).unwrap_err(), StoreError::Truncated);
}

/// An over-long continuation chain in a doc-gap varint must error, not
/// spin or wrap.
#[test]
fn v2_doc_gap_varint_overrun_rejected() {
    let mut postings = Vec::new();
    mx_store::varint::write_u64(&mut postings, 1); // one provider
    mx_store::varint::write_u64(&mut postings, 0); // pid
    mx_store::varint::write_u64(&mut postings, 1); // doc count
    postings.extend_from_slice(&[0x80; 11]); // unterminated varint
    let bytes = build_v2(SpecV2 {
        postings: Some(postings),
        ..SpecV2::default()
    });
    assert_eq!(
        StoreReader::open(&bytes).unwrap_err(),
        StoreError::VarintOverflow
    );
}

/// Postings referencing domains or providers past their tables are
/// caught at open.
#[test]
fn v2_out_of_range_postings_ids_rejected() {
    let mut postings = Vec::new();
    mx_store::varint::write_u64(&mut postings, 1);
    mx_store::varint::write_u64(&mut postings, 0); // pid
    mx_store::varint::write_u64(&mut postings, 1); // doc count
    mx_store::varint::write_u64(&mut postings, 9); // doc 9: dict has 2
    let bytes = build_v2(SpecV2 {
        postings: Some(postings.clone()),
        ..SpecV2::default()
    });
    assert_eq!(
        StoreReader::open(&bytes).unwrap_err(),
        StoreError::BadIndex { what: "domain" }
    );

    let mut postings = Vec::new();
    mx_store::varint::write_u64(&mut postings, 1);
    mx_store::varint::write_u64(&mut postings, 7); // pid 7: table has 1
    mx_store::varint::write_u64(&mut postings, 2);
    mx_store::varint::write_u64(&mut postings, 0);
    mx_store::varint::write_u64(&mut postings, 1);
    let bytes = build_v2(SpecV2 {
        postings: Some(postings),
        ..SpecV2::default()
    });
    assert_eq!(
        StoreReader::open(&bytes).unwrap_err(),
        StoreError::BadIndex { what: "provider" }
    );
}

/// A summary whose weight sum disagrees with the epoch layers passes
/// open-time structural checks but is caught by full verification; a
/// row count disagreeing with the postings list never gets that far.
#[test]
fn v2_summary_disagreements_detected() {
    // Weight lies (3.0, layers sum to 2.0): structurally fine, so open
    // succeeds — verify_indexes recomputes and catches it.
    let bytes = build_v2(SpecV2 {
        summary: Some(store_bytes_v2::summary_section(2, 3.0)),
        ..SpecV2::default()
    });
    let reader = StoreReader::open(&bytes).expect("structurally valid");
    assert_eq!(
        reader.verify_indexes().unwrap_err(),
        StoreError::IndexMismatch {
            what: "summary entry"
        }
    );

    // Row count lies (1, postings say 2): the open-time cross-check
    // between summary and postings refuses the file outright.
    let bytes = build_v2(SpecV2 {
        summary: Some(store_bytes_v2::summary_section(1, 2.0)),
        ..SpecV2::default()
    });
    assert_eq!(
        StoreReader::open(&bytes).unwrap_err(),
        StoreError::IndexCorrupt {
            what: "summary/postings rows"
        }
    );
}

/// Rollup tables must be strictly ascending by (kind, id) — a
/// duplicated credit key is an ordering violation, not a merge.
#[test]
fn v2_unsorted_rollup_rejected() {
    let mut rollup = Vec::new();
    mx_store::varint::write_u64(&mut rollup, 2);
    for _ in 0..2 {
        rollup.push(1); // kind: provider credit
        mx_store::varint::write_u64(&mut rollup, 0); // provider 0, twice
        rollup.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
    }
    let bytes = build_v2(SpecV2 {
        rollup: Some(rollup),
        ..SpecV2::default()
    });
    assert_eq!(
        StoreReader::open(&bytes).unwrap_err(),
        StoreError::IndexCorrupt {
            what: "rollup order"
        }
    );
}

/// Every proper prefix of a v2 file — header, layers, dictionary and
/// all four index sections — errors cleanly, never opens.
#[test]
fn v2_truncated_stores_error_cleanly() {
    let bytes = build_v2(SpecV2::default());
    for cut in 0..bytes.len() {
        let r = StoreReader::open(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes opened: {r:?}");
    }
    assert!(StoreReader::open(&bytes).is_ok());
}

// ---------------------------------------------------------------------------
// mx-delta: the event-log codec decodes replayed zone-update streams
// from disk, so it is untrusted input like the wire parsers above.
// Every corruption is one byte off a valid `mx-delta/1` log; the
// contract is the usual one — a typed `DeltaError`, never a panic,
// never a silently-wrong `Ok`.
// ---------------------------------------------------------------------------

use mx_delta::{encode_log, AddSpec, CertTarget, DeltaError, Event};

/// A minimal one-event log plus the offsets its fixed-layout header
/// pins: magic[0..4], version[4..6], flags[6..8], schema len at 8 and
/// "mx-delta/1" at 9..19, name count at 19, name ("a.test") length at
/// 20 and bytes at 21..27, then batch count, event count, tag, name id.
fn tiny_event_log() -> Vec<u8> {
    let bytes = encode_log(&[vec![Event::MxSwap {
        domain: "a.test".into(),
    }]]);
    assert_eq!(&bytes[0..4], b"MXDL");
    assert_eq!(bytes[8], 10); // schema length
    assert_eq!(&bytes[9..19], b"mx-delta/1");
    assert_eq!(&bytes[21..27], b"a.test");
    bytes
}

fn decode(bytes: &[u8]) -> Result<Vec<Vec<Event>>, DeltaError> {
    mx_delta::decode_log(bytes)
}

/// Header corruption: magic, version, reserved flags and the schema
/// string each map to their own typed error.
#[test]
fn event_log_header_corruption_is_typed() {
    let mut bad_magic = tiny_event_log();
    bad_magic[0] = b'N';
    assert_eq!(decode(&bad_magic), Err(DeltaError::BadMagic));

    let mut bad_version = tiny_event_log();
    bad_version[4] = 9;
    assert_eq!(decode(&bad_version), Err(DeltaError::UnsupportedVersion(9)));

    let mut bad_flags = tiny_event_log();
    bad_flags[6] = 1;
    assert_eq!(decode(&bad_flags), Err(DeltaError::BadFlags(1)));

    let mut bad_schema = tiny_event_log();
    bad_schema[18] = b'9'; // "mx-delta/1" -> "mx-delta/9"
    assert_eq!(
        decode(&bad_schema),
        Err(DeltaError::BadSchema("mx-delta/9".into()))
    );
}

/// Unknown discriminants: event tags, cert-rotation target kinds and
/// domain-add hosting kinds from the future are rejected by value.
#[test]
fn event_log_unknown_discriminants_rejected() {
    let mut bad_tag = tiny_event_log();
    let at = bad_tag.len() - 2; // [.., tag, name id]
    bad_tag[at] = 7; // tags stop at 6
    assert_eq!(decode(&bad_tag), Err(DeltaError::UnknownTag(7)));

    let mut bad_target = encode_log(&[vec![Event::CertRotation {
        target: CertTarget::Domain("a.test".into()),
    }]]);
    let at = bad_target.len() - 2; // [.., tag, target kind, name id]
    bad_target[at] = 9;
    assert_eq!(decode(&bad_target), Err(DeltaError::UnknownTargetKind(9)));

    let mut bad_add = encode_log(&[vec![Event::DomainAdd {
        domain: "a.test".into(),
        spec: AddSpec::SelfHosted,
    }]]);
    let at = bad_add.len() - 1; // [.., tag, name id, hosting kind]
    bad_add[at] = 9;
    assert_eq!(decode(&bad_add), Err(DeltaError::UnknownAddKind(9)));
}

/// Interning attacks: a name id past the table, a table entry that is
/// not a DNS name, and a table entry that is not UTF-8.
#[test]
fn event_log_bad_interning_rejected() {
    let mut bad_id = tiny_event_log();
    let at = bad_id.len() - 1;
    bad_id[at] = 5; // table has one name
    assert_eq!(decode(&bad_id), Err(DeltaError::BadNameId(5)));

    let mut bad_name = tiny_event_log();
    bad_name[21..27].copy_from_slice(b"a..tst"); // empty label
    assert_eq!(
        decode(&bad_name),
        Err(DeltaError::BadName("a..tst".into()))
    );

    let mut bad_utf8 = tiny_event_log();
    bad_utf8[21] = 0xFF;
    assert_eq!(decode(&bad_utf8), Err(DeltaError::BadUtf8));
}

/// Varint overruns must error, not spin or wrap; counts that promise
/// more items than the input holds are truncation-class.
#[test]
fn event_log_varint_and_count_abuse_rejected() {
    let mut overrun = tiny_event_log();
    overrun.pop(); // drop the name-id varint…
    overrun.extend_from_slice(&[0x80; 11]); // …replace with an unterminated chain
    assert_eq!(decode(&overrun), Err(DeltaError::VarintOverflow));

    let mut overclaim = tiny_event_log();
    overclaim[27] = 0x7f; // 127 batches promised, 3 bytes remain
    assert_eq!(decode(&overclaim), Err(DeltaError::Truncated));
}

/// Every proper prefix of a log exercising all seven event kinds is a
/// typed error — the same sweep the DNS, store and HTTP parsers pin.
#[test]
fn event_log_truncation_sweep() {
    let bytes = encode_log(&[
        vec![
            Event::MxSwap { domain: "a.test".into() },
            Event::MxPriorityChange { domain: "a.test".into() },
            Event::HostReIp { domain: "b.test".into() },
            Event::CertRotation { target: CertTarget::Provider(0) },
        ],
        vec![
            Event::CertRotation { target: CertTarget::Domain("b.test".into()) },
            Event::ProviderMigration { domain: "a.test".into(), provider: 1 },
            Event::ZoneDelete { domain: "b.test".into() },
            Event::DomainAdd { domain: "c.test".into(), spec: AddSpec::Provider(2) },
            Event::DomainAdd { domain: "d.test".into(), spec: AddSpec::NoMail },
        ],
    ]);
    for cut in 0..bytes.len() {
        let r = decode(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
    }
    assert!(decode(&bytes).is_ok());

    let mut trailing = bytes;
    trailing.push(0);
    assert_eq!(decode(&trailing), Err(DeltaError::TrailingBytes));
}

// ---------------------------------------------------------------------------
// Hostile HTTP: the mx-serve request parser.
//
// Same contract as the DNS/SMTP/store cases above, now for the serving
// front door: every hostile byte stream maps to a typed `HttpError`
// with a 4xx/5xx status — never a panic, never a bogus `Ok`.
// ---------------------------------------------------------------------------

use mx_serve::{HttpError, Parsed, RequestParser};

/// Feed a complete byte stream and return the first parse outcome.
fn parse_one(bytes: &[u8]) -> Result<Parsed, HttpError> {
    let mut p = RequestParser::new();
    p.push(bytes)?;
    p.try_next()
}

/// The error a hostile stream maps to, panicking the test (not the
/// parser) if the stream was accepted or left incomplete.
fn reject_status(bytes: &[u8]) -> u16 {
    match parse_one(bytes) {
        Err(e) => e.status(),
        Ok(Parsed::NeedMore) => panic!("hostile stream left pending: {bytes:?}"),
        Ok(Parsed::Request(r)) => panic!("hostile stream accepted: {r:?}"),
    }
}

/// Truncated request lines stay pending (more bytes could complete
/// them) but never panic and never produce a request; cutting the
/// stream mid-line is the read-deadline's problem, not the parser's.
#[test]
fn http_truncated_request_lines_stay_pending() {
    let full = b"GET /lookup?domain=a.test HTTP/1.1\r\n\r\n";
    for cut in 0..full.len() {
        match parse_one(&full[..cut]) {
            Ok(Parsed::NeedMore) => {}
            other => panic!("prefix of {cut} bytes gave {other:?}"),
        }
    }
    assert!(matches!(parse_one(full), Ok(Parsed::Request(_))));
}

/// Request lines that can never become valid are rejected with the
/// right status: bad verbs 501, bad versions 505, junk 400.
#[test]
fn http_bad_request_lines_are_typed() {
    assert_eq!(reject_status(b"BREW /pot HTTP/1.1\r\n\r\n"), 501);
    assert_eq!(reject_status(b"get / HTTP/1.1\r\n\r\n"), 501);
    assert_eq!(reject_status(b"GET / HTTP/2.0\r\n\r\n"), 505);
    assert_eq!(reject_status(b"GET / SPDY/3\r\n\r\n"), 400); // not HTTP at all
    assert_eq!(reject_status(b"\x80\xFF\xFE garbage\r\n\r\n"), 400);
    assert_eq!(reject_status(b"GET\r\n\r\n"), 400);
}

/// Header sections that overflow the count or byte limits draw 431.
#[test]
fn http_header_overflow_draws_431() {
    let mut many = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..mx_serve::http::MAX_HEADER_COUNT + 1 {
        many.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
    }
    many.extend_from_slice(b"\r\n");
    assert_eq!(reject_status(&many), 431);

    let mut fat = b"GET / HTTP/1.1\r\n".to_vec();
    fat.extend_from_slice(b"X-Fat: ");
    fat.resize(mx_serve::http::MAX_HEAD_BYTES + 16, b'a');
    fat.extend_from_slice(b"\r\n\r\n");
    assert_eq!(reject_status(&fat), 431);
}

/// An absurdly long URI draws 414 before the head limit is reached.
#[test]
fn http_oversized_uri_draws_414() {
    let mut req = b"GET /".to_vec();
    req.resize(5 + mx_serve::http::MAX_URI, b'a');
    req.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    assert_eq!(reject_status(&req), 414);
}

/// NUL bytes and bare CR/LF anywhere in the head are rejected — the
/// classic response-splitting and log-injection vectors.
#[test]
fn http_nul_and_bare_crlf_injection_rejected() {
    assert_eq!(reject_status(b"GET /\x00 HTTP/1.1\r\n\r\n"), 400);
    assert_eq!(reject_status(b"GET / HTTP/1.1\r\nX: a\x00b\r\n\r\n"), 400);
    assert_eq!(reject_status(b"GET / HTTP/1.1\nHost: x\r\n\r\n"), 400);
    assert_eq!(reject_status(b"GET / HTTP/1.1\r\nX: a\rb\r\n\r\n"), 400);
}

/// Percent-escapes must be two hex digits decoding to graphic ASCII;
/// everything else — including encoded CR/LF/NUL — is a 400.
#[test]
fn http_bad_percent_escapes_rejected() {
    for target in [
        "/lookup?domain=%zz",
        "/lookup?domain=%4",
        "/lookup?domain=%",
        "/lookup?domain=%0d%0a",
        "/lookup?domain=%00",
        "/%ff",
    ] {
        let req = format!("GET {target} HTTP/1.1\r\n\r\n");
        assert_eq!(reject_status(req.as_bytes()), 400, "target {target}");
    }
}

/// Chunked framing: oversized chunks, hex overflow and missing
/// terminators are typed errors; a body over the cap is 413.
#[test]
fn http_hostile_chunked_framing_rejected() {
    let head = b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    let mut oversized = head.to_vec();
    oversized.extend_from_slice(b"FFFFFFFFF\r\n"); // 9 hex digits
    assert_eq!(reject_status(&oversized), 400);

    let mut big_chunk = head.to_vec();
    big_chunk.extend_from_slice(b"2000\r\n"); // 8 KiB > MAX_CHUNK_SIZE
    assert_eq!(reject_status(&big_chunk), 413);

    let mut bad_terminator = head.to_vec();
    bad_terminator.extend_from_slice(b"3\r\nabcXX");
    assert_eq!(reject_status(&bad_terminator), 400);

    let mut over_body = head.to_vec();
    // Many max-size chunks: total crosses MAX_BODY.
    for _ in 0..(mx_serve::http::MAX_BODY / 0x400 + 1) {
        over_body.extend_from_slice(b"400\r\n");
        over_body.extend_from_slice(&[b'x'; 0x400]);
        over_body.extend_from_slice(b"\r\n");
    }
    over_body.extend_from_slice(b"0\r\n\r\n");
    assert_eq!(reject_status(&over_body), 413);

    let mut huge_declared = b"GET / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec();
    huge_declared.extend_from_slice(&[b'x'; 64]);
    assert_eq!(reject_status(&huge_declared), 413);
}

/// Pipelined garbage after a valid request: the first request parses,
/// the tail is rejected, and nothing panics.
#[test]
fn http_pipelined_garbage_after_valid_request() {
    let mut p = RequestParser::new();
    p.push(b"GET /healthz HTTP/1.1\r\n\r\n\x90\x91\x92 junk\r\n\r\n")
        .expect("under buffer cap");
    match p.try_next() {
        Ok(Parsed::Request(r)) => assert_eq!(r.path, "/healthz"),
        other => panic!("valid head of pipeline gave {other:?}"),
    }
    match p.try_next() {
        Err(e) => assert_eq!(e.status(), 400),
        other => panic!("garbage tail gave {other:?}"),
    }
}

/// A connection that streams bytes forever without completing a
/// request hits the buffer cap with 431, not unbounded growth.
#[test]
fn http_conn_buffer_cap_enforced() {
    let mut p = RequestParser::new();
    // A chunked body that keeps the parser pending: valid chunks that
    // never terminate, below the per-request limits, repeated. Pushing
    // past MAX_CONN_BUFFER must fail with a typed error.
    let mut err = None;
    for _ in 0..mx_serve::http::MAX_CONN_BUFFER / 8 + 2 {
        if let Err(e) = p.push(b"GET /aaa") {
            err = Some(e);
            break;
        }
        // Drain attempts keep the parser state honest.
        let _ = p.try_next();
    }
    match err {
        Some(e) => assert_eq!(e.status(), 431),
        None => panic!("conn buffer grew without bound"),
    }
}

/// Every prefix of a hostile stream is also handled without panics —
/// the byte-at-a-time dribble a slowloris produces.
#[test]
fn http_hostile_streams_dribble_cleanly() {
    let streams: &[&[u8]] = &[
        b"BREW /pot HTTP/1.1\r\n\r\n",
        b"GET /\x00 HTTP/1.1\r\n\r\n",
        b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nFFFFFFFFF\r\n",
        b"GET /lookup?domain=%0d%0a HTTP/1.1\r\n\r\n",
    ];
    for stream in streams {
        let mut p = RequestParser::new();
        let mut rejected = false;
        for b in stream.iter() {
            if p.push(&[*b]).is_err() {
                rejected = true;
                break;
            }
            match p.try_next() {
                Err(_) => {
                    rejected = true;
                    break;
                }
                Ok(Parsed::NeedMore) => {}
                Ok(Parsed::Request(r)) => panic!("hostile stream accepted: {r:?}"),
            }
        }
        assert!(rejected, "stream {stream:?} never rejected");
    }
}
