//! Observability gate: the deterministic obs snapshot must be
//! byte-identical at any thread count and across identical runs, must
//! validate against the `mx-obs/1` schema, and its counters must
//! reconcile exactly with the acquisition accounting the observation
//! sets carry — making the obs layer the single cross-check source for
//! the resilience numbers instead of a second, driftable bookkeeping
//! path.
//!
//! One `#[test]` on purpose: the obs registry is process-global, so the
//! whole scenario runs under a single reset/capture bracket.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use mx_analysis::coverage::{self, ResilienceCounts};
use mx_analysis::observe::{observe_world, SnapshotData};
use mx_corpus::{ScenarioConfig, Study};
use mx_infer::{IpAcquisition, Pipeline};
use mx_net::{DnsFaults, FaultPlan, SmtpFaults};
use mx_obs::names;

/// The chaos rates of `tests/chaos_gate.rs` layered on top of `base`
/// (the world's own plan), keeping its opt-out and unreachable lists so
/// blocked IPs still occur alongside retries, recoveries and
/// exhaustion.
fn chaos_plan(base: &FaultPlan, rate: f64, seed: u64) -> FaultPlan {
    let mut plan = base.clone();
    plan.seed = seed;
    plan.scan_failure_rate = rate / 2.0;
    plan.dns = DnsFaults {
        servfail_rate: rate / 6.0,
        timeout_rate: rate / 6.0,
        truncation_rate: rate / 12.0,
    };
    plan.smtp = SmtpFaults {
        drop_after_banner_rate: rate / 8.0,
        ehlo_tarpit_rate: rate / 8.0,
        tls_handshake_rate: rate / 8.0,
        garbled_banner_rate: rate / 8.0,
    };
    plan
}

/// Run the full measured pipeline: observe, infer every dataset, and
/// report coverage, so every instrumented stage fires at least once.
fn run_stack(study: &Study, rate: f64, seed: u64) -> SnapshotData {
    let mut world = study.world_at(mx_corpus::SNAPSHOT_DATES.len() - 1);
    let plan = chaos_plan(world.net.faults(), rate, seed);
    world.net.set_faults(plan);
    let data = observe_world(&world);
    let pipeline = Pipeline::priority_based(mx_corpus::provider_knowledge(10));
    for (_, obs) in &data.per_dataset {
        let result = pipeline.run(obs);
        assert!(!result.domains.is_empty());
        let breakdown = coverage::breakdown(obs);
        assert_eq!(breakdown.total, obs.domains.len());
    }
    data
}

fn counter(name: &str) -> u64 {
    mx_obs::metrics::counter_value(name)
}

fn stage_totals(name: &str) -> mx_obs::span::StageSnapshot {
    mx_obs::span::stage_totals(name)
        .unwrap_or_else(|| panic!("stage {name} must be registered"))
}

#[test]
fn obs_snapshots_are_deterministic_and_reconcile() {
    mx_obs::set_enabled(true);
    let study = Study::generate(ScenarioConfig::small(42));

    // --- Determinism: bit-identical snapshots at 1, 2 and 8 threads.
    let mut snapshots: Vec<String> = Vec::new();
    let mut last_data = None;
    for &threads in &[1usize, 2, 8] {
        mx_obs::reset();
        let data = mx_par::install(threads, || run_stack(&study, 0.3, 42));
        let json = mx_obs::export::Snapshot::capture().deterministic_json();
        mx_obs::export::validate_snapshot(&json)
            .unwrap_or_else(|e| panic!("snapshot at {threads} threads: {e}"));
        snapshots.push(json);
        last_data = Some(data);
    }
    assert_eq!(snapshots[0], snapshots[1], "1 vs 2 threads");
    assert_eq!(snapshots[0], snapshots[2], "1 vs 8 threads");

    // Volatile (per-run) material must never reach the deterministic
    // form: no pool probes, no host-clock nanos.
    assert!(!snapshots[0].contains("par.map"), "pool probes leaked");
    assert!(!snapshots[0].contains("host_nanos"), "host time leaked");

    // --- Repeatability: a second identical run is byte-identical.
    mx_obs::reset();
    let _ = mx_par::install(2, || run_stack(&study, 0.3, 42));
    let again = mx_obs::export::Snapshot::capture().deterministic_json();
    assert_eq!(snapshots[0], again, "repeated run drifted");

    // --- Reconciliation with the acquisition reports (PR 3).
    // The scan counters are recorded once per scanned IP; the datasets
    // mirror per-IP entries for the addresses they reference. The union
    // of those mirrors must therefore match the counters exactly, and a
    // shared IP must carry identical acquisition data in every dataset
    // (any mismatch is mirror drift between crates/net and mx-infer).
    let data = last_data.expect("at least one run kept");
    let mut union: HashMap<Ipv4Addr, IpAcquisition> = HashMap::new();
    for (ds, obs) in &data.per_dataset {
        for (ip, acq) in &obs.acquisition.ips {
            match union.get(ip) {
                Some(seen) => assert_eq!(
                    seen, acq,
                    "acquisition mirror drift for {ip} in {ds:?}"
                ),
                None => {
                    union.insert(*ip, *acq);
                }
            }
        }
    }
    let attempts: u64 = union.values().map(|a| u64::from(a.attempts)).sum();
    assert_eq!(counter(names::NET_SCAN_ATTEMPTS), attempts, "scan attempts");
    let flag_count = |f: fn(&IpAcquisition) -> bool| union.values().filter(|a| f(a)).count() as u64;
    assert_eq!(
        counter(names::NET_SCAN_RECOVERED),
        flag_count(|a| a.recovered),
        "recovered IPs"
    );
    assert_eq!(
        counter(names::NET_SCAN_EXHAUSTED),
        flag_count(|a| a.exhausted),
        "exhausted IPs"
    );
    assert_eq!(
        counter(names::NET_SCAN_BLOCKED),
        flag_count(|a| a.blocked),
        "blocked IPs (also proves the 'routing hole' arm in observe.rs stays dead)"
    );
    assert!(counter(names::NET_SCAN_RECOVERED) > 0, "chaos healed nothing");
    assert!(counter(names::NET_SCAN_EXHAUSTED) > 0, "no budget exhaustion");
    assert!(counter(names::NET_SCAN_BLOCKED) > 0, "no opt-outs");

    // DNS: every transport retry the resolver performs is mirrored in
    // some domain's degradation record (NXDOMAIN rows without retries
    // are skipped on both sides), so the per-dataset sums must equal
    // the counter.
    let dns_retries: u64 = data
        .per_dataset
        .iter()
        .map(|(_, obs)| {
            obs.acquisition
                .domains
                .values()
                .map(|d| u64::from(d.retries))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(counter(names::DNS_RETRIES), dns_retries, "dns retries");
    assert!(dns_retries > 0, "chaos produced no DNS retries");

    // ResilienceCounts must stay a pure projection of the acquisition
    // report — recompute it from the raw maps for every dataset.
    for (ds, obs) in &data.per_dataset {
        let r = ResilienceCounts::from_observations(obs);
        let acq = &obs.acquisition;
        assert_eq!(
            r.recovered_ips,
            acq.ips.values().filter(|a| a.recovered).count(),
            "{ds:?} recovered"
        );
        assert_eq!(
            r.exhausted_ips,
            acq.ips.values().filter(|a| a.exhausted).count(),
            "{ds:?} exhausted"
        );
        assert_eq!(
            r.never_attempted_ips,
            acq.ips.values().filter(|a| a.blocked).count(),
            "{ds:?} blocked"
        );
        assert_eq!(
            r.scan_attempts,
            acq.ips.values().map(|a| u64::from(a.attempts)).sum::<u64>(),
            "{ds:?} attempts"
        );
    }

    // --- Span totals reconcile with the work actually done.
    let scan_ip = stage_totals(names::STAGE_NET_SCAN_IP);
    assert_eq!(
        scan_ip.enters,
        union.len() as u64,
        "one scan_ip span per scanned address"
    );
    // Simulated time charged to the scan stage is exactly the backoff
    // plus tarpit cost the sim clock was charged.
    assert_eq!(
        scan_ip.sim_secs,
        counter(names::NET_SCAN_BACKOFF_SIM_SECS) + counter(names::NET_SCAN_TARPIT_SIM_SECS),
        "scan sim-time"
    );
    let dns_lookup = stage_totals(names::STAGE_DNS_LOOKUP);
    let domains_measured: u64 = data
        .per_dataset
        .iter()
        .map(|(_, obs)| obs.domains.len() as u64)
        .sum();
    assert_eq!(
        dns_lookup.enters, domains_measured,
        "one dns.lookup span per measured domain"
    );
    assert_eq!(
        dns_lookup.sim_secs,
        counter(names::DNS_BACKOFF_SIM_SECS),
        "dns sim-time"
    );
    let datasets = data.per_dataset.len() as u64;
    assert_eq!(stage_totals(names::STAGE_OBSERVE).enters, 1);
    assert_eq!(stage_totals(names::STAGE_INFER).enters, datasets);
    assert_eq!(stage_totals(names::STAGE_REPORT_COVERAGE).enters, datasets);
    assert_eq!(
        stage_totals(names::STAGE_SMTP_SESSION).enters,
        counter(names::SMTP_SESSIONS),
        "smtp span/counter pair"
    );

    // --- Fault-coin accounting is internally consistent.
    assert!(counter(names::FAULT_SCAN_COINS) >= counter(names::FAULT_SCAN_FIRED));
    assert!(counter(names::FAULT_DNS_COINS) >= counter(names::FAULT_DNS_FIRED));
    assert!(counter(names::FAULT_SMTP_COINS) >= counter(names::FAULT_SMTP_FIRED));
    assert!(counter(names::FAULT_SCAN_FIRED) > 0, "chaos drew no scan faults");
    assert!(counter(names::FAULT_DNS_FIRED) > 0, "chaos drew no dns faults");

    mx_obs::set_enabled(false);
}
