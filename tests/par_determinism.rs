//! Differential determinism gate for the parallel substrate: every
//! parallelised stage must produce bit-identical output to a serial run
//! at any thread count. Runs the full measurement + inference stack at
//! small scale across several seeds and `mx_par::install` widths —
//! `{1, 2, 8}` covers the serial path, the minimal parallel split, and
//! oversubscription of any realistic CI host.

use mx_analysis::observe::{observe_world, SnapshotData};
use mx_corpus::{ScenarioConfig, Study};
use mx_infer::{InferenceResult, Pipeline};

const SEEDS: &[u64] = &[1, 7, 42];
const THREADS: &[usize] = &[1, 2, 8];

/// Snapshot index exercised: the last one (all three datasets active).
fn snapshot_index() -> usize {
    mx_corpus::SNAPSHOT_DATES.len() - 1
}

fn full_stack(seed: u64) -> (SnapshotData, Vec<InferenceResult>) {
    let study = Study::generate(ScenarioConfig::small(seed));
    let world = study.world_at(snapshot_index());
    let data = observe_world(&world);
    let pipeline = Pipeline::priority_based(mx_corpus::provider_knowledge(10));
    let results = data
        .per_dataset
        .iter()
        .map(|(_, obs)| pipeline.run(obs))
        .collect();
    (data, results)
}

fn assert_same_data(a: &SnapshotData, b: &SnapshotData, ctx: &str) {
    assert_eq!(a.per_dataset.len(), b.per_dataset.len(), "{ctx}: dataset count");
    for ((da, oa), (db, ob)) in a.per_dataset.iter().zip(&b.per_dataset) {
        assert_eq!(da, db, "{ctx}: dataset order");
        assert_eq!(oa.domains, ob.domains, "{ctx}: {da:?} domain observations");
        assert_eq!(oa.ips, ob.ips, "{ctx}: {da:?} ip observations");
    }
}

fn assert_same_result(a: &InferenceResult, b: &InferenceResult, ctx: &str) {
    assert_eq!(a.domains, b.domains, "{ctx}: domain assignments");
    assert_eq!(a.mx_assignments, b.mx_assignments, "{ctx}: mx assignments");
    assert_eq!(a.misid.examined, b.misid.examined, "{ctx}: misid examined");
    assert_eq!(
        a.misid.corrections, b.misid.corrections,
        "{ctx}: misid corrections"
    );
    let mut wa: Vec<_> = a.provider_weights().into_iter().collect();
    let mut wb: Vec<_> = b.provider_weights().into_iter().collect();
    wa.sort_by(|x, y| x.0.cmp(&y.0));
    wb.sort_by(|x, y| x.0.cmp(&y.0));
    assert_eq!(wa, wb, "{ctx}: provider weights");
}

#[test]
fn parallel_stack_matches_serial_across_seeds_and_thread_counts() {
    for &seed in SEEDS {
        let (base_data, base_results) = mx_par::install(1, || full_stack(seed));
        for &n in THREADS {
            let (data, results) = mx_par::install(n, || full_stack(seed));
            let ctx = format!("seed {seed}, threads {n}");
            assert_same_data(&base_data, &base_data, &ctx);
            assert_same_data(&base_data, &data, &ctx);
            assert_eq!(results.len(), base_results.len(), "{ctx}: result count");
            for (r, b) in results.iter().zip(&base_results) {
                assert_same_result(b, r, &ctx);
            }
        }
    }
}

#[test]
fn study_generation_is_thread_count_invariant() {
    let base = mx_par::install(1, || Study::generate(ScenarioConfig::small(9)));
    for &n in THREADS {
        let other = mx_par::install(n, || Study::generate(ScenarioConfig::small(9)));
        assert_eq!(
            base.populations.len(),
            other.populations.len(),
            "threads {n}"
        );
        for (a, b) in base.populations.iter().zip(&other.populations) {
            assert_eq!(a.domains, b.domains, "threads {n}: population domains");
        }
        // Timelines carry the full per-domain assignment history; a
        // mismatch anywhere shows up in the materialised world's truth.
        let wa = base.world_at(snapshot_index());
        let wb = other.world_at(snapshot_index());
        assert_eq!(wa.truth.records, wb.truth.records, "threads {n}: ground truth");
    }
}

#[test]
fn parallel_snapshot_materialisation_matches_serial() {
    let study = Study::generate(ScenarioConfig::small(5));
    let ks: Vec<usize> = vec![0, 4, snapshot_index()];
    let serial: Vec<_> = mx_par::install(1, || study.worlds_at(&ks));
    let parallel: Vec<_> = mx_par::install(8, || study.worlds_at(&ks));
    for ((a, b), &k) in serial.iter().zip(&parallel).zip(&ks) {
        assert_eq!(a.snapshot, k);
        assert_eq!(a.snapshot, b.snapshot, "snapshot {k}");
        assert_eq!(a.date, b.date, "snapshot {k}: date");
        assert_eq!(a.truth.records, b.truth.records, "snapshot {k}: truth");
        assert_eq!(a.targets, b.targets, "snapshot {k}: targets");
    }
}
