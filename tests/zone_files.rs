//! Integration: a zone authored as an RFC 1035 master file, served over
//! the simulated network, measured, and fed through the inference — the
//! full adoption path for a user bringing their own DNS data.

use mxmap::dns::{master, RecordType, SimClock, Timestamp};
use mxmap::infer::{
    DomainObservation, MxObservation, MxTargetObs, ObservationSet, Pipeline, SpfRecord, Strategy,
};
use mxmap::net::SimNet;
use mxmap::smtp::SmtpServerConfig;

const CUSTOMER_ZONE: &str = r#"
$ORIGIN acme-corp.com.
$TTL 3600
@     IN SOA ns1 hostmaster 2021060800 7200 900 1209600 300
@     IN MX 10 mx0a.acme-corp-com.pphosted.net.
@     IN MX 20 mx0b.acme-corp-com.pphosted.net.
@     IN TXT "v=spf1 include:spf.pphosted.net include:spf.protection.outlook.com -all"
www   IN A 192.0.2.80
"#;

const PROVIDER_ZONE: &str = r#"
$ORIGIN pphosted.net.
$TTL 300
@                       IN SOA ns1 hostmaster 2021060800 7200 900 1209600 300
mx0a.acme-corp-com      IN A 198.51.100.10
mx0b.acme-corp-com      IN A 198.51.100.11
"#;

#[test]
fn master_file_zone_through_full_pipeline() {
    // Build the network from parsed zone files.
    let clock = SimClock::starting_at(Timestamp::from_ymd(2021, 6, 8));
    let mut b = SimNet::builder(clock);
    b.zone(master::parse_zone(CUSTOMER_ZONE).expect("customer zone parses"));
    b.zone(master::parse_zone(PROVIDER_ZONE).expect("provider zone parses"));
    for (ip, host) in [
        ("198.51.100.10", "filter-a.pphosted.net"),
        ("198.51.100.11", "filter-b.pphosted.net"),
    ] {
        let mut cfg = SmtpServerConfig::plain(host);
        cfg.ehlo_host = host.to_string();
        b.smtp_host(ip.parse().unwrap(), cfg);
    }
    b.announce("198.51.100.0/24".parse().unwrap(), 22843);
    let net = b.build();

    // Measure over the wire.
    let domain = mxmap::dns::Name::parse("acme-corp.com").unwrap();
    let dns = mxmap::net::openintel::measure(&net, std::slice::from_ref(&domain));
    let row = &dns.rows[&domain];
    assert_eq!(row.targets().len(), 2);
    assert_eq!(row.primary_targets().len(), 1, "pref 10 beats pref 20");

    let ips = dns.all_mx_ips();
    let scan = mxmap::net::Scanner::new().scan(&net, &ips, 0);
    let mut obs = ObservationSet::new();
    obs.domains.push(DomainObservation {
        domain: domain.clone(),
        mx: MxObservation::Targets(
            row.targets()
                .iter()
                .map(|t| MxTargetObs {
                    preference: t.preference,
                    exchange: t.exchange.clone(),
                    addrs: t.addrs.clone(),
                })
                .collect(),
        ),
    });
    for ip in ips {
        let data = scan.data(ip).expect("scanned").clone();
        obs.ips.insert(
            ip,
            mxmap::infer::IpObservation {
                ip,
                asn: net.asn_of(ip),
                scan: mxmap::infer::ScanStatus::Smtp(data),
                leaf_cert: None,
                cert_valid: false,
            },
        );
    }

    // Inference attributes the domain to the filtering provider.
    let result = Pipeline::new(Strategy::PriorityBased).run(&obs);
    let a = &result.domains[&domain];
    assert_eq!(a.sole_provider().unwrap().as_str(), "pphosted.net");
    assert!(a.has_smtp);

    // And the SPF policy (resolved over the same network) reveals the
    // eventual backend behind the filter.
    let resolver = net.resolver();
    let txt = resolver.resolve(&domain, RecordType::Txt).unwrap();
    let spf = txt
        .iter()
        .find_map(|r| match &r.rdata {
            mxmap::dns::RData::Txt(ss) => SpfRecord::parse(&ss.join("")),
            _ => None,
        })
        .expect("SPF present");
    let psl = mxmap::psl::PublicSuffixList::builtin();
    let eventual = mxmap::infer::eventual_providers(&spf, "acme-corp.com", &psl);
    let names: Vec<&str> = eventual.iter().map(|p| p.as_str()).collect();
    assert!(names.contains(&"outlook.com"), "{names:?}");
    assert!(names.contains(&"pphosted.net"));
}
