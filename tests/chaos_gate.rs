//! Chaos differential gate: the full measurement + inference stack must
//! survive any fault plan without panicking, produce bit-identical
//! output at any thread count under chaos, behave exactly like a
//! fault-free run when every rate is zero, and degrade monotonically
//! (more chaos never yields *more* complete data).

use mx_analysis::observe::{observe_world, SnapshotData};
use mx_analysis::coverage;
use mx_corpus::{ScenarioConfig, Study};
use mx_infer::{InferenceResult, Pipeline};
use mx_net::{DnsFaults, FaultPlan, SmtpFaults};

const SEEDS: &[u64] = &[1, 7, 42];
const RATES: &[f64] = &[0.0, 0.1, 0.3, 0.6];

fn snapshot_index() -> usize {
    mx_corpus::SNAPSHOT_DATES.len() - 1
}

/// A chaos plan: the total fault mass `rate` spread across the DNS,
/// connect and SMTP-session layers. At `rate == 0` this is exactly a
/// quiet plan.
fn chaos_plan(rate: f64, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    plan.scan_failure_rate = rate / 2.0;
    plan.dns = DnsFaults {
        servfail_rate: rate / 6.0,
        timeout_rate: rate / 6.0,
        truncation_rate: rate / 12.0,
    };
    plan.smtp = SmtpFaults {
        drop_after_banner_rate: rate / 8.0,
        ehlo_tarpit_rate: rate / 8.0,
        tls_handshake_rate: rate / 8.0,
        garbled_banner_rate: rate / 8.0,
    };
    plan
}

fn run_stack(study: &Study, plan: FaultPlan) -> (SnapshotData, Vec<InferenceResult>) {
    let mut world = study.world_at(snapshot_index());
    world.net.set_faults(plan);
    let data = observe_world(&world);
    let pipeline = Pipeline::priority_based(mx_corpus::provider_knowledge(10));
    let results = data
        .per_dataset
        .iter()
        .map(|(_, obs)| pipeline.run(obs))
        .collect();
    (data, results)
}

fn assert_same_data(a: &SnapshotData, b: &SnapshotData, ctx: &str) {
    assert_eq!(a.per_dataset.len(), b.per_dataset.len(), "{ctx}: dataset count");
    for ((da, oa), (db, ob)) in a.per_dataset.iter().zip(&b.per_dataset) {
        assert_eq!(da, db, "{ctx}: dataset order");
        assert_eq!(oa.domains, ob.domains, "{ctx}: {da:?} domain observations");
        assert_eq!(oa.ips, ob.ips, "{ctx}: {da:?} ip observations");
        assert_eq!(
            oa.acquisition, ob.acquisition,
            "{ctx}: {da:?} acquisition accounting"
        );
    }
}

#[test]
fn chaos_rates_are_thread_count_invariant_and_converge() {
    for &seed in SEEDS {
        let study = Study::generate(ScenarioConfig::small(seed));
        let mut complete_at_zero = None;
        for &rate in RATES {
            let plan = chaos_plan(rate, seed);
            let ctx = format!("seed {seed}, rate {rate}");
            let (serial, serial_results) =
                mx_par::install(1, || run_stack(&study, plan.clone()));
            let (parallel, parallel_results) =
                mx_par::install(8, || run_stack(&study, plan.clone()));
            assert_same_data(&serial, &parallel, &ctx);
            assert_eq!(
                serial_results.len(),
                parallel_results.len(),
                "{ctx}: result count"
            );
            for (a, b) in serial_results.iter().zip(&parallel_results) {
                assert_eq!(a.domains, b.domains, "{ctx}: domain assignments");
                assert_eq!(a.mx_assignments, b.mx_assignments, "{ctx}: mx assignments");
            }
            // Monotone degradation: chaos can only lose data, never
            // conjure complete observations out of thin air.
            let complete: usize = serial
                .per_dataset
                .iter()
                .map(|(_, obs)| {
                    coverage::breakdown(obs).count(coverage::CoverageCategory::Complete)
                })
                .sum();
            match complete_at_zero {
                None => complete_at_zero = Some(complete),
                Some(base) => assert!(
                    complete <= base,
                    "{ctx}: {complete} complete domains under chaos vs {base} clean"
                ),
            }
            // Under injected chaos the accounting must show its work.
            if rate > 0.0 {
                let recovered: usize = serial
                    .per_dataset
                    .iter()
                    .map(|(_, obs)| obs.acquisition.recovered_ips())
                    .sum();
                assert!(recovered > 0, "{ctx}: retries healed nothing");
            }
        }
    }
}

#[test]
fn zero_rate_chaos_is_byte_identical_to_quiet_plan() {
    let study = Study::generate(ScenarioConfig::small(7));
    // Different seeds on purpose: with every rate at zero the seed must
    // not be able to influence anything.
    let (chaos, chaos_results) = run_stack(&study, chaos_plan(0.0, 0xDEAD_BEEF));
    let (quiet, quiet_results) = run_stack(&study, FaultPlan::none());
    assert_same_data(&chaos, &quiet, "rate 0 vs quiet");
    for (a, b) in chaos_results.iter().zip(&quiet_results) {
        assert_eq!(a.domains, b.domains, "rate 0 vs quiet: assignments");
    }
}
