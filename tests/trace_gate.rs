//! Trace gate: the deterministic trace timeline, the Prometheus text
//! rendering and the stage attribution must be byte-identical at any
//! thread count, across reruns and across seeds; ring overflow must
//! drop oldest with exact `obs.trace.dropped` accounting; and the
//! serve kernel's per-request events must reconcile with the
//! `RunReport` it returns (write marks == flushed statuses, shed marks
//! == shed requests, evict marks == evictions).
//!
//! One `#[test]` on purpose: the obs registry and trace rings are
//! process-global, so the whole scenario runs under a single
//! reset/capture bracket.

use mx_analysis::observe::observe_world;
use mx_analysis::store::StudyStoreExt;
use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mx_infer::Pipeline;
use mx_obs::attrib::Attribution;
use mx_obs::names;
use mx_obs::trace::{self, TraceSnapshot};
use mx_serve::{ClientConn, Server, ServerConfig, Trace};

/// Run the measured stack (observe + infer every dataset) so every
/// instrumented pipeline stage fires.
fn run_stack(study: &Study) {
    let world = study.world_at(mx_corpus::SNAPSHOT_DATES.len() - 1);
    let data = observe_world(&world);
    let pipeline = Pipeline::priority_based(provider_knowledge(10));
    for (_, obs) in &data.per_dataset {
        let result = pipeline.run(obs);
        assert!(!result.domains.is_empty());
    }
}

/// One deterministic view of the process-global obs state: stable
/// trace JSON, Prometheus text, attribution JSON.
fn deterministic_views() -> (String, String, String) {
    let snap = TraceSnapshot::capture();
    assert_eq!(
        snap.dropped + snap.events.len() as u64,
        snap.recorded,
        "ring accounting must reconcile"
    );
    assert_eq!(snap.dropped, 0, "gates size the rings to avoid drops");
    let det = snap.deterministic_json();
    trace::validate_trace(&det).expect("trace export validates");
    let prom = mx_obs::export::Snapshot::capture().prometheus_text();
    let attrib = Attribution::capture();
    // Attribution rows must reconcile with the span layer's totals:
    // same enters, sim charges leaf-attributed exactly once.
    let stages = mx_obs::span::snapshot();
    for s in &stages {
        let row = attrib
            .rows
            .iter()
            .find(|r| r.stage == s.name)
            .expect("every stage has an attribution row");
        assert_eq!(row.enters, s.enters, "enters of {}", s.name);
        assert_eq!(row.sim_exclusive, s.sim_secs, "sim_exclusive of {}", s.name);
    }
    let total_sim: u64 = stages.iter().map(|s| s.sim_secs).sum();
    assert_eq!(attrib.total_sim, total_sim, "attribution total == span total");
    (det, prom, attrib.deterministic_json())
}

#[test]
fn trace_timeline_is_deterministic_and_reconciles() {
    mx_obs::set_enabled(true);
    mx_obs::set_trace_enabled(true);

    // --- pipeline timeline: widths {1, 2, 8} + a rerun, three seeds --
    for seed in [42u64, 7, 99] {
        let study = mx_par::install(1, || Study::generate(ScenarioConfig::small(seed)));
        let mut baseline: Option<(String, String, String)> = None;
        // The second `2` is a rerun at the same width: same bytes again.
        for &n in &[1usize, 2, 8, 2] {
            mx_obs::reset();
            mx_par::install(n, || run_stack(&study));
            let views = deterministic_views();
            match &baseline {
                None => baseline = Some(views),
                Some((det, prom, attrib)) => {
                    assert_eq!(&views.0, det, "trace JSON at width {n}, seed {seed}");
                    assert_eq!(&views.1, prom, "prometheus text at width {n}, seed {seed}");
                    assert_eq!(&views.2, attrib, "attribution at width {n}, seed {seed}");
                }
            }
        }
    }

    // --- ring overflow: drop-oldest, counted exactly ----------------
    mx_obs::reset();
    let keep = trace::capacity();
    trace::set_capacity(16);
    let st = mx_obs::stage!("trace.gate.overflow");
    for i in 0..100u64 {
        st.instant(i, 0);
    }
    let snap = TraceSnapshot::capture();
    assert_eq!(snap.events.len(), 16);
    assert_eq!(snap.dropped, 84);
    assert_eq!(snap.dropped + snap.events.len() as u64, snap.recorded);
    assert_eq!(
        mx_obs::metrics::counter_value(names::OBS_TRACE_DROPPED),
        snap.dropped,
        "obs.trace.dropped reconciles with the snapshot"
    );
    // Oldest went first: the survivors are the newest 16 stamps.
    assert_eq!(snap.events.first().map(|e| e.t), Some(84));
    assert_eq!(snap.events.last().map(|e| e.t), Some(99));
    trace::set_capacity(keep);

    // --- serve kernel: request events reconcile with the report -----
    let study = mx_par::install(1, || Study::generate(ScenarioConfig::small(42)));
    let pipeline = Pipeline::priority_based(provider_knowledge(10));
    let bytes = study
        .write_store(Dataset::Alexa, &pipeline, &company_map())
        .expect("write store");
    let reader = mx_store::StoreReader::open(&bytes).expect("open store");
    let last = reader.epoch_count() - 1;
    let mut names_in_store: Vec<String> = Vec::new();
    reader
        .for_each_row(last, |name, _| {
            names_in_store.push(name.to_string());
            Ok(())
        })
        .expect("scan last epoch");

    // A workload that exercises every outcome: saturation (shed),
    // the connection cap (refused), a stalled partial (evicted), and
    // a late introspection walk over the live endpoints.
    let mut workload = Trace::new();
    for c in 0..6u64 {
        let a = &names_in_store[c as usize % names_in_store.len()];
        let b = &names_in_store[(c as usize + 1) % names_in_store.len()];
        // Keep-alives on purpose: the six conns must still be open when
        // c6/c7 arrive at t=1, so the connection cap actually refuses.
        let r1 = format!("GET /lookup?domain={a}&epoch={last} HTTP/1.1\r\n\r\n");
        let r2 = format!("GET /lookup?domain={b}&epoch=0 HTTP/1.1\r\n\r\n");
        workload = workload.with(ClientConn::scripted(
            c,
            0,
            0,
            &[r1.as_bytes(), r2.as_bytes()],
        ));
    }
    for c in 6..8u64 {
        workload = workload.with(ClientConn::scripted(
            c,
            1,
            0,
            &[b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"],
        ));
    }
    // A partial request that never completes: evicted at the deadline.
    // Opens at t=0 with the others (the cap admits exactly these 7).
    workload = workload.with(ClientConn::scripted(
        8,
        0,
        0,
        &[b"GET /lookup?domain=stalled HTTP/1.1\r\n"],
    ));
    const INTRO_CONN: u64 = 900;
    workload = workload.with(ClientConn::scripted(
        INTRO_CONN,
        150,
        1,
        &[
            b"GET /metrics HTTP/1.1\r\n\r\n",
            b"GET /metrics?format=json HTTP/1.1\r\n\r\n",
            b"GET /debug/trace?last=32 HTTP/1.1\r\n\r\n",
            b"GET /debug/attribution HTTP/1.1\r\nConnection: close\r\n\r\n",
        ],
    ));
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        max_conns: 7,
        read_deadline_ms: 100,
        idle_deadline_ms: 250,
        service_ms: 5,
        retry_after_secs: 1,
    };

    let mut serve_base: Option<(Vec<u8>, String)> = None;
    for &n in &[1usize, 2, 8] {
        mx_obs::reset();
        let report = mx_par::install(n, || Server::new(&reader, cfg).run(&workload));
        assert!(report.reconciles(), "accounting identity at width {n}");
        assert_eq!(report.dropped_without_response, 0);
        // The scenario must actually exercise every branch it claims.
        assert!(report.shed > 0, "workload must shed");
        assert_eq!(report.evicted, 1, "the stalled conn must evict");
        assert!(report.conns_refused > 0, "the conn cap must refuse");

        // Trace identities against the report: every flushed status got
        // exactly one write mark (refused conns included), every shed
        // and eviction exactly one mark.
        let flushed: u64 = report
            .transcripts
            .iter()
            .map(|t| t.statuses.len() as u64)
            .sum();
        let enters = |name: &str| {
            mx_obs::span::stage_totals(name)
                .map(|s| s.enters)
                .unwrap_or(0)
        };
        assert_eq!(enters(names::STAGE_SERVE_REQ_WRITE), flushed);
        assert_eq!(enters(names::STAGE_SERVE_REQ_SHED), report.shed);
        assert_eq!(enters(names::STAGE_SERVE_REQ_EVICT), report.evicted);

        // Render sim time in the timeline equals the stage's sim total
        // (only true while nothing was dropped, asserted in capture).
        let snap = TraceSnapshot::capture();
        assert_eq!(snap.dropped, 0);
        let render_sim: u64 = snap
            .events
            .iter()
            .filter(|e| e.stage == names::STAGE_SERVE_REQ_RENDER)
            .map(|e| e.dur)
            .sum();
        let render_stage =
            mx_obs::span::stage_totals(names::STAGE_SERVE_REQ_RENDER).expect("render stage");
        assert_eq!(render_sim, render_stage.sim_secs);

        // The introspection walk answered 200 everywhere, and the whole
        // byte stream (live `/metrics` + `/debug/*` bodies included) is
        // width-invariant.
        let intro = report
            .transcripts
            .iter()
            .find(|t| t.id == INTRO_CONN)
            .expect("introspection conn");
        assert_eq!(intro.statuses, [200, 200, 200, 200]);
        let view = (report.all_bytes(), snap.deterministic_json());
        match &serve_base {
            None => serve_base = Some(view),
            Some((all, det)) => {
                assert_eq!(&view.0, all, "response bytes at width {n}");
                assert_eq!(&view.1, det, "serve trace JSON at width {n}");
            }
        }
    }

    mx_obs::set_trace_enabled(false);
    mx_obs::set_enabled(false);
}
