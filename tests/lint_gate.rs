//! Workspace lint gate: `cargo test` fails if any `mx-lint` rule fires
//! anywhere in the workspace's `src/` trees, or if the `lint:allow`
//! escape-hatch budget is exceeded.
//!
//! The same pass is available interactively as `cargo lint` (an alias
//! for `cargo run -p mx-lint -- --root .`); see `crates/lint/README.md`
//! for the rule catalogue.

use std::path::Path;

/// Escape hatches are a budget, not a convenience: each one must carry a
/// written reason, and the total across the workspace stays in single
/// digits so exceptions remain individually reviewable.
const MAX_LINT_ALLOWS: usize = 10;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let report = mx_lint::lint_workspace(workspace_root()).expect("walk workspace sources");
    assert!(
        report.files_checked > 50,
        "suspiciously few files checked ({}); did the walker break?",
        report.files_checked
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.is_clean(),
        "mx-lint found {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

#[test]
fn lint_allow_budget_respected() {
    let report = mx_lint::lint_workspace(workspace_root()).expect("walk workspace sources");
    assert!(
        report.allows_total < MAX_LINT_ALLOWS,
        "{} lint:allow escapes in use (budget {}); fix code instead of allowing it",
        report.allows_total,
        MAX_LINT_ALLOWS
    );
}

/// The machine-readable reporters must be byte-deterministic: two
/// independent passes over the same tree render identical JSON and
/// SARIF, so CI can diff them and downstream tools can cache on bytes.
#[test]
fn machine_readable_reports_are_byte_deterministic() {
    let a = mx_lint::lint_workspace(workspace_root()).expect("walk workspace sources");
    let b = mx_lint::lint_workspace(workspace_root()).expect("walk workspace sources");
    assert_eq!(
        mx_lint::report::render_json(&a, 0),
        mx_lint::report::render_json(&b, 0),
        "JSON report differs between two runs over the same tree"
    );
    assert_eq!(
        mx_lint::report::render_sarif(&a),
        mx_lint::report::render_sarif(&b),
        "SARIF report differs between two runs over the same tree"
    );
}

/// HEAD carries no baseline debt: a baseline generated from the current
/// tree is empty, and an empty baseline suppresses nothing.
#[test]
fn baseline_is_empty_at_head() {
    let report = mx_lint::lint_workspace(workspace_root()).expect("walk workspace sources");
    let generated = mx_lint::report::Baseline::render(&report.diagnostics);
    assert!(
        generated.is_empty(),
        "HEAD should need no baseline, got:\n{generated}"
    );
    let empty = mx_lint::report::Baseline::parse("");
    let (failing, suppressed, stale) = empty.apply(report.diagnostics.clone());
    assert_eq!(failing.len(), report.diagnostics.len());
    assert_eq!(suppressed, 0);
    assert!(stale.is_empty(), "empty baseline cannot have stale entries");
}
