//! End-to-end integration tests spanning all crates: generate a world,
//! measure it over the simulated Internet (real DNS wire format, real SMTP
//! sessions), run the paper's inference, and check the study's headline
//! results hold.

use mxmap::analysis::observe::observe_world;
use mxmap::analysis::{accuracy, coverage, market};
use mxmap::corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mxmap::infer::{Pipeline, Strategy};

fn world_and_obs() -> (mxmap::corpus::World, mxmap::infer::ObservationSet) {
    let study = Study::generate(ScenarioConfig::small(2024));
    let world = study.world_at(8);
    let data = observe_world(&world);
    let obs = data.dataset(Dataset::Alexa).unwrap().clone();
    (world, obs)
}

#[test]
fn priority_based_is_most_accurate() {
    let (world, obs) = world_and_obs();
    let report = accuracy::evaluate(
        &obs,
        &world.truth,
        provider_knowledge(10),
        &company_map(),
        200,
        1,
    );
    use accuracy::SampleKind::*;
    for kind in [Uniform, UniqueMx] {
        let prio = report.cell(Strategy::PriorityBased, kind).correct;
        let banner = report.cell(Strategy::BannerBased, kind).correct;
        let cert = report.cell(Strategy::CertBased, kind).correct;
        let mx = report.cell(Strategy::MxOnly, kind).correct;
        assert!(prio >= banner, "{kind:?}: prio {prio} >= banner {banner}");
        assert!(banner >= cert, "{kind:?}: banner {banner} >= cert {cert}");
        assert!(cert >= mx, "{kind:?}: cert {cert} >= mx {mx}");
        assert!(
            prio as f64 / 200.0 > 0.95,
            "{kind:?}: priority accuracy {}",
            prio
        );
    }
    // The unique-MX sample hurts the MX-only baseline hardest (Figure 4).
    let mx_drop = report.cell(Strategy::MxOnly, Uniform).correct as i64
        - report.cell(Strategy::MxOnly, UniqueMx).correct as i64;
    let prio_drop = report.cell(Strategy::PriorityBased, Uniform).correct as i64
        - report.cell(Strategy::PriorityBased, UniqueMx).correct as i64;
    assert!(
        mx_drop > prio_drop,
        "unique-MX sampling should hurt MX-only more ({mx_drop} vs {prio_drop})"
    );
}

#[test]
fn coverage_is_a_partition_with_all_modes() {
    let (_, obs) = world_and_obs();
    let b = coverage::breakdown(&obs);
    let sum: usize = b.counts.iter().map(|(_, n)| n).sum();
    assert_eq!(sum, b.total);
    assert!(b.count(coverage::CoverageCategory::NoMxIp) > 0);
    assert!(b.count(coverage::CoverageCategory::NoPort25) > 0);
    assert!(b.count(coverage::CoverageCategory::NoValidCert) > 0);
    assert!(b.count(coverage::CoverageCategory::Complete) * 2 > b.total);
}

#[test]
fn market_leaders_match_paper() {
    let study = Study::generate(ScenarioConfig::small(2025));
    let world = study.world_at(8);
    let data = observe_world(&world);
    let companies = company_map();
    let pipeline = Pipeline::priority_based(provider_knowledge(10));
    let expectations = [
        (Dataset::Alexa, "Google"),
        (Dataset::Com, "GoDaddy"),
        (Dataset::Gov, "Microsoft"),
    ];
    for (ds, leader) in expectations {
        let obs = data.dataset(ds).unwrap();
        let result = pipeline.run(obs);
        let shares = market::market_share(&result, &companies, None);
        assert_eq!(
            shares.rows[0].company, leader,
            "{} leader should be {leader}",
            ds.label()
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let study = Study::generate(ScenarioConfig::small(7));
        let world = study.world_at(8);
        let data = observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).unwrap().clone();
        let result = Pipeline::priority_based(provider_knowledge(10)).run(&obs);
        let mut rows: Vec<(String, String)> = result
            .domains
            .iter()
            .map(|(d, a)| {
                (
                    d.to_string(),
                    a.shares
                        .iter()
                        .map(|s| s.provider.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(run(), run());
}

#[test]
fn misidentification_check_earns_its_keep() {
    // Ablation: the same observations, priority-based with and without
    // step 4. The corrections must strictly improve ground-truth accuracy.
    let (world, obs) = world_and_obs();
    let companies = company_map();
    let with = Pipeline::priority_based(provider_knowledge(10)).run(&obs);
    let without = Pipeline::new(Strategy::PriorityBased).run(&obs); // empty knowledge
    let count_correct = |result: &mxmap::infer::InferenceResult| {
        result
            .domains
            .keys()
            .filter(|d| accuracy::is_correct(result, &world.truth, &companies, d))
            .count()
    };
    let a = count_correct(&with);
    let b = count_correct(&without);
    assert!(a > b, "with misid check {a} > without {b}");
    assert!(!with.misid.corrections.is_empty());
    assert!(without.misid.corrections.is_empty());
}

#[test]
fn null_and_dangling_domains_have_no_smtp() {
    let (world, obs) = world_and_obs();
    let result = Pipeline::priority_based(provider_knowledge(10)).run(&obs);
    for (name, truth) in &world.truth.records {
        if truth.category == mxmap::corpus::TruthCategory::Dangling {
            if let Some(a) = result.domain(name) {
                assert!(!a.has_smtp, "{name} is dangling but has_smtp");
            }
        }
    }
}
