//! Integration tests for the §3.1 corner cases, built directly on the
//! simulated network (no corpus generator): every byte travels through the
//! real DNS wire codec and real SMTP sessions before inference sees it.

use std::net::Ipv4Addr;

use mxmap::cert::{CertificateAuthority, KeyId, TrustStore};
use mxmap::dns::{dns_name, Name, RData, SimClock, Timestamp, Zone};
use mxmap::infer::{
    IdSource, IpObservation, MxObservation, MxTargetObs, ObservationSet, Pattern, Pipeline,
    ProviderId, ProviderKnowledge, ProviderProfile, ScanStatus, Strategy,
};
use mxmap::net::{PortState, Scanner, SimNet};
use mxmap::smtp::SmtpServerConfig;

struct TestWorld {
    net: SimNet,
    trust: TrustStore,
}

/// Build a world with one provider, one VPS renter, one banner forger.
fn build_world() -> TestWorld {
    let clock = SimClock::starting_at(Timestamp::from_ymd(2021, 6, 8));
    let mut b = SimNet::builder(clock);
    let mut ca = CertificateAuthority::new_root(
        "Root",
        KeyId(1),
        (Timestamp::from_ymd(2010, 1, 1), Timestamp::from_ymd(2040, 1, 1)),
    );
    let mut trust = TrustStore::new();
    trust.add_root(&ca);
    let valid = (Timestamp::from_ymd(2020, 1, 1), Timestamp::from_ymd(2023, 1, 1));

    // hostco.net: a web host with real mail servers and rented VPSes.
    let host_cert = ca.issue_server(
        KeyId(2),
        Some("mx.hostco.net"),
        &["mx.hostco.net", "*.hostco.net"],
        valid,
    );
    b.smtp_host(
        ip("10.1.0.1"),
        SmtpServerConfig::with_tls("mx.hostco.net", vec![host_cert]),
    );
    // The VPS: customer-operated, but its certificate lives under
    // hostco.net (CA-signed!) like GoDaddy's secureserver.net VPSes.
    let vps_cert = ca.issue_server(KeyId(3), Some("s9-8-7.hostco.net"), &["s9-8-7.hostco.net"], valid);
    let mut vps_cfg = SmtpServerConfig::with_tls("s9-8-7.hostco.net", vec![vps_cert]);
    vps_cfg.ehlo_host = "s9-8-7.hostco.net".into();
    b.smtp_host(ip("10.1.0.99"), vps_cfg);
    b.announce("10.1.0.0/16".parse().unwrap(), 64500); // hostco AS

    // The forger: claims mx.hostco.net in banners from a foreign AS.
    let mut forger = SmtpServerConfig::plain("mx.hostco.net");
    forger.ehlo_host = "mx.hostco.net".into();
    b.smtp_host(ip("10.9.0.1"), forger);
    b.announce("10.9.0.0/16".parse().unwrap(), 64999);

    // Zones.
    let mut hz = Zone::new(dns_name!("hostco.net"));
    hz.add_rr(dns_name!("mx.hostco.net"), 300, RData::A(ip("10.1.0.1")));
    b.zone(hz);
    for (domain, target_ip) in [
        ("customer.com", "10.1.0.1"),  // real hosting customer
        ("vpsuser.com", "10.1.0.99"),  // self-hosted on a VPS
        ("forged.com", "10.9.0.1"),    // behind the forger
    ] {
        let origin = Name::parse(domain).unwrap();
        let mut z = Zone::new(origin.clone());
        let mx_host = origin.child("mx").unwrap();
        z.add_rr(
            origin,
            3600,
            RData::Mx {
                preference: 10,
                exchange: mx_host.clone(),
            },
        );
        z.add_rr(mx_host, 300, RData::A(target_ip.parse().unwrap()));
        b.zone(z);
    }
    TestWorld {
        net: b.build(),
        trust,
    }
}

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// Measure the world into an observation set, through real wire traffic.
fn measure(world: &TestWorld, domains: &[Name]) -> ObservationSet {
    let dns = mxmap::net::openintel::measure(&world.net, domains);
    let ips = dns.all_mx_ips();
    let scan = Scanner::new().scan(&world.net, &ips, 0);
    let now = world.net.clock().now();
    let mut obs = ObservationSet::new();
    for (name, m) in &dns.rows {
        obs.domains.push(mxmap::infer::DomainObservation {
            domain: name.clone(),
            mx: MxObservation::Targets(
                m.targets()
                    .iter()
                    .map(|t| MxTargetObs {
                        preference: t.preference,
                        exchange: t.exchange.clone(),
                        addrs: t.addrs.clone(),
                    })
                    .collect(),
            ),
        });
    }
    for a in ips {
        let asn = world.net.asn_of(a);
        let o = match scan.get(a) {
            Some(PortState::Open(d)) => IpObservation {
                ip: a,
                asn,
                leaf_cert: d.leaf_certificate().cloned(),
                cert_valid: d.starttls.chain().is_some_and(|c| {
                    mxmap::cert::chain_trusted(c, &world.trust, now).is_ok()
                }),
                scan: ScanStatus::Smtp(d.clone()),
            },
            Some(_) => IpObservation {
                ip: a,
                asn,
                leaf_cert: None,
                cert_valid: false,
                scan: ScanStatus::NoSmtp,
            },
            None => IpObservation::uncovered(a, asn),
        };
        obs.ips.insert(a, o);
    }
    obs
}

fn knowledge() -> ProviderKnowledge {
    let mut k = ProviderKnowledge::new(10);
    k.add(
        "hostco.net",
        ProviderProfile {
            asns: [64500].into_iter().collect(),
            vps_patterns: vec![Pattern::new("s#-#-#.hostco.net")],
            dedicated_patterns: vec![Pattern::new("mx.hostco.net")],
        },
    );
    k
}

#[test]
fn vps_certificate_is_corrected_to_self_hosted() {
    let world = build_world();
    let domains = [dns_name!("vpsuser.com")];
    let obs = measure(&world, &domains);
    // Without the misid check, the CA-signed hostco.net certificate wins.
    let naive = Pipeline::new(Strategy::PriorityBased).run(&obs);
    assert_eq!(
        naive.domains[&domains[0]].sole_provider().unwrap(),
        &ProviderId::new("hostco.net"),
        "the VPS cert fools the naive pipeline"
    );
    // With it, the VPS hostname pattern reveals the truth.
    let full = Pipeline::priority_based(knowledge()).run(&obs);
    assert_eq!(
        full.domains[&domains[0]].sole_provider().unwrap(),
        &ProviderId::new("vpsuser.com")
    );
    assert_eq!(full.misid.corrections.len(), 1);
}

#[test]
fn forged_banner_is_corrected_by_as_mismatch() {
    let world = build_world();
    let domains = [dns_name!("forged.com")];
    let obs = measure(&world, &domains);
    let naive = Pipeline::new(Strategy::BannerBased).run(&obs);
    assert_eq!(
        naive.domains[&domains[0]].sole_provider().unwrap(),
        &ProviderId::new("hostco.net"),
        "the forged banner fools the banner baseline"
    );
    let full = Pipeline::priority_based(knowledge()).run(&obs);
    let a = &full.domains[&domains[0]];
    assert_eq!(a.sole_provider().unwrap(), &ProviderId::new("forged.com"));
    assert_eq!(a.shares[0].source, IdSource::MxRecord);
}

#[test]
fn real_customer_stays_with_provider() {
    let world = build_world();
    // Many customers -> high confidence -> never corrected. Simulate by
    // adding extra observation rows pointing at the provider IP.
    let domains = [dns_name!("customer.com")];
    let mut obs = measure(&world, &domains);
    for i in 0..20 {
        obs.domains.push(mxmap::infer::DomainObservation {
            domain: dns_name!(&format!("bulk{i}.example")),
            mx: MxObservation::Targets(vec![MxTargetObs {
                preference: 10,
                exchange: dns_name!("mx.hostco.net"),
                addrs: vec![ip("10.1.0.1")],
            }]),
        });
    }
    let full = Pipeline::priority_based(knowledge()).run(&obs);
    assert_eq!(
        full.domains[&domains[0]].sole_provider().unwrap(),
        &ProviderId::new("hostco.net")
    );
    assert_eq!(
        full.domains[&domains[0]].shares[0].source,
        IdSource::Certificate
    );
    assert!(full
        .misid
        .corrections
        .iter()
        .all(|c| c.exchange != dns_name!("mx.customer.com")));
}

#[test]
fn scan_gaps_degrade_gracefully() {
    // Lose the provider IP's scan data: inference falls back to the MX
    // record and still terminates.
    let world = build_world();
    let domains = [dns_name!("customer.com")];
    let mut obs = measure(&world, &domains);
    // Simulate a Censys gap by marking the IP uncovered.
    let o = obs.ips.get_mut(&ip("10.1.0.1")).unwrap();
    *o = IpObservation::uncovered(ip("10.1.0.1"), Some(64500));
    let full = Pipeline::priority_based(knowledge()).run(&obs);
    let a = &full.domains[&domains[0]];
    assert_eq!(a.shares[0].source, IdSource::MxRecord);
    assert_eq!(a.sole_provider().unwrap(), &ProviderId::new("customer.com"));
}
