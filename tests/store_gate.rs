//! Determinism + round-trip gate for the `mx-store` snapshot store.
//!
//! Three contracts, mirroring `tests/par_determinism.rs`:
//!
//! 1. **Byte determinism** — serializing the same study produces
//!    byte-identical store files at any `mx_par::install` width and on
//!    repeated runs. A store file is an artifact meant to be diffed,
//!    cached and `cmp`'d by CI; a single nondeterministic byte breaks
//!    all of that.
//! 2. **Round trip** — every analysis table computed from the store
//!    (market share, longitudinal series, churn flows, per-domain
//!    assignments) equals the in-memory path, including every `f64`
//!    bit, across seeds.
//! 3. **Corruption totality** — deterministic truncations and bit
//!    flips of a real store file produce typed errors or valid
//!    readers, never a panic (the dynamic twin of mx-lint's static
//!    R1/R2/R3/R7 scope on the codec).

use mx_analysis::observe::observe_world;
use mx_analysis::store::{
    churn_from_store, churn_from_store_merged, domains_of_provider, domains_of_provider_merged,
    market_share_at, market_share_merged, self_hosted_at, self_hosted_merged, series_from_store,
    write_study_store_v1, StudyStoreExt,
};
use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mx_infer::{assignment_from_row, CompanyMap, Pipeline};
use mx_psl::PublicSuffixList;
use mx_store::StoreReader;

const SEEDS: &[u64] = &[1, 7, 42];
const THREADS: &[usize] = &[1, 2, 8];

fn pipeline() -> Pipeline {
    Pipeline::priority_based(provider_knowledge(10))
}

fn build_store(seed: u64, dataset: Dataset) -> Vec<u8> {
    let study = Study::generate(ScenarioConfig::small(seed));
    study
        .write_store(dataset, &pipeline(), &company_map())
        .expect("serialize study")
}

#[test]
fn store_bytes_identical_across_thread_counts_and_runs() {
    let base = mx_par::install(1, || build_store(1, Dataset::Alexa));
    assert!(!base.is_empty());
    for &n in THREADS {
        let other = mx_par::install(n, || build_store(1, Dataset::Alexa));
        assert!(
            base == other,
            "store bytes diverge at {n} threads ({} vs {} bytes)",
            base.len(),
            other.len()
        );
    }
    // Repeated run at the widest width: no hidden global state.
    let again = mx_par::install(8, || build_store(1, Dataset::Alexa));
    assert!(base == again, "store bytes diverge between repeated runs");
}

/// The full write→read→analyze round trip for one seed: every table
/// the store can answer must equal the in-memory computation.
fn assert_round_trip(seed: u64) {
    let study = Study::generate(ScenarioConfig::small(seed));
    let pipeline = pipeline();
    let companies: CompanyMap = company_map();
    let bytes = study
        .write_store(Dataset::Alexa, &pipeline, &companies)
        .expect("serialize study");
    let reader = StoreReader::open(&bytes).expect("reopen store");
    assert_eq!(reader.epoch_count(), mx_corpus::SNAPSHOT_DATES.len());

    // In-memory references at the first and last snapshot.
    let run_at = |k: usize| {
        let world = study.world_at(k);
        let data = observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).expect("alexa active").clone();
        let result = pipeline.run(&obs);
        (result, obs)
    };
    let last = reader.epoch_count() - 1;
    let (r0, o0) = run_at(0);
    let (r8, o8) = run_at(last);

    // Per-domain assignments: every stored row reconstructs the exact
    // in-memory assignment (shares, order, weights, has_smtp), and the
    // counts match so nothing was dropped or invented.
    let mut rows = 0usize;
    reader
        .for_each_row(last, |name, row| {
            rows += 1;
            let got = assignment_from_row(name, row).expect("stored name parses");
            let expect = r8
                .domains
                .get(&got.domain)
                .unwrap_or_else(|| panic!("seed {seed}: stray stored domain {name}"));
            assert_eq!(&got, expect, "seed {seed}: domain {name}");
            Ok(())
        })
        .expect("scan last epoch");
    assert_eq!(rows, r8.domains.len(), "seed {seed}: row count");

    // Market share: bit-equal rows at both ends of the study.
    for (k, r) in [(0usize, &r0), (last, &r8)] {
        let mem = mx_analysis::market::market_share(r, &companies, None);
        let stored = market_share_at(&reader, k).expect("stored market share");
        assert_eq!(stored.total_domains, mem.total_domains, "seed {seed} epoch {k}");
        assert_eq!(stored.rows, mem.rows, "seed {seed} epoch {k}: market rows");
    }

    // Longitudinal series: same dates, weights and shares, bit for bit.
    let tracked = ["Google", "Microsoft"];
    let mem_series = mx_analysis::longitudinal::run_series(
        &study,
        Dataset::Alexa,
        &tracked,
        &provider_knowledge(10),
        &companies,
    );
    let stored_series =
        series_from_store(&reader, Dataset::Alexa, &tracked).expect("stored series");
    assert_eq!(stored_series.dates, mem_series.dates, "seed {seed}: dates");
    for (sc, mc) in stored_series.companies.iter().zip(&mem_series.companies) {
        assert_eq!(sc.0, mc.0);
        for (sp, mp) in sc.1.iter().zip(&mc.1) {
            assert_eq!(sp.date, mp.date, "seed {seed}: {} date", sc.0);
            assert_eq!(
                sp.weight.to_bits(),
                mp.weight.to_bits(),
                "seed {seed}: {} weight at {}",
                sc.0,
                sp.date
            );
            assert_eq!(sp.share.to_bits(), mp.share.to_bits(), "seed {seed}");
        }
    }
    for (sp, mp) in stored_series.self_hosted.iter().zip(&mem_series.self_hosted) {
        assert_eq!(sp.weight.to_bits(), mp.weight.to_bits(), "seed {seed}: self-hosted");
    }
    for (sp, mp) in stored_series.top5_total.iter().zip(&mem_series.top5_total) {
        assert_eq!(sp.share.to_bits(), mp.share.to_bits(), "seed {seed}: top5");
    }

    // Churn flows between the study's endpoints.
    let mem_churn = mx_analysis::churn::churn_matrix((&r0, &o0), (&r8, &o8), &companies);
    let stored_churn = churn_from_store(&reader, 0, last).expect("stored churn");
    assert_eq!(stored_churn.total, mem_churn.total, "seed {seed}: churn total");
    for from in mx_analysis::ChurnCategory::ALL {
        for to in mx_analysis::ChurnCategory::ALL {
            assert_eq!(
                stored_churn.flow(from, to),
                mem_churn.flow(from, to),
                "seed {seed}: churn flow {from:?} -> {to:?}"
            );
        }
    }

    // Acquisition sidecar: the stored report equals the observed one.
    let stored_acq = reader.acquisition_report(last).expect("stored sidecar");
    assert_eq!(stored_acq.ips, o8.acquisition.ips, "seed {seed}: ip sidecar");
    assert_eq!(
        stored_acq.domains, o8.acquisition.domains,
        "seed {seed}: dns sidecar"
    );

    // v2 index gate: the footer exists, survives full recomputation
    // against the epoch layers, and every index-backed query equals the
    // merge-path reference bit for bit. (`market_share_at` and
    // `churn_from_store` above already went through the index; here the
    // two implementations face each other directly.)
    assert!(reader.has_indexes(), "seed {seed}: v2 file has indexes");
    reader.verify_indexes().expect("index footer matches layers");
    let psl = PublicSuffixList::builtin();
    for k in [0usize, last / 2, last] {
        let merged = market_share_merged(&reader, k).expect("merged market share");
        let indexed = market_share_at(&reader, k).expect("indexed market share");
        assert_eq!(indexed.total_domains, merged.total_domains, "seed {seed} epoch {k}");
        assert_eq!(indexed.rows, merged.rows, "seed {seed} epoch {k}: index vs merge");
        assert_eq!(
            self_hosted_at(&reader, k, &psl).expect("indexed self-hosted"),
            self_hosted_merged(&reader, k, &psl).expect("merged self-hosted"),
            "seed {seed} epoch {k}: self-hosted count"
        );
    }
    let merged_churn = churn_from_store_merged(&reader, 0, last).expect("merged churn");
    assert_eq!(stored_churn.total, merged_churn.total, "seed {seed}: churn totals");
    assert_eq!(
        stored_churn.flows, merged_churn.flows,
        "seed {seed}: digest churn vs merge churn"
    );

    // Reverse queries: postings lists answer "who uses provider X"
    // identically to a full-epoch scan, domain for domain and in the
    // same order, for every interned provider.
    let mut postings_hits = 0usize;
    for provider in reader.providers() {
        let indexed = domains_of_provider(&reader, provider, last).expect("postings");
        let scanned = domains_of_provider_merged(&reader, provider, last).expect("scan");
        assert_eq!(indexed, scanned, "seed {seed}: domains of {provider}");
        postings_hits += usize::from(!indexed.is_empty());
    }
    assert!(postings_hits > 0, "seed {seed}: no provider had postings");
}

#[test]
fn round_trip_equals_in_memory_across_seeds() {
    for &seed in SEEDS {
        assert_round_trip(seed);
    }
}

/// v1 read-compat: the same study serialized as `mx-store/1` opens
/// with the v2 reader, reports no indexes, and every analysis answers
/// through the merge fallback with results equal to the v2 file's
/// index-backed answers — bit for bit.
#[test]
fn v1_files_answer_identically_through_merge_fallback() {
    let study = Study::generate(ScenarioConfig::small(1));
    let pipeline = pipeline();
    let companies = company_map();
    let v2 = study
        .write_store(Dataset::Alexa, &pipeline, &companies)
        .expect("v2 store");
    let v1 = write_study_store_v1(&study, Dataset::Alexa, &pipeline, &companies)
        .expect("v1 store");
    assert!(v1.len() < v2.len(), "v1 carries no footer");

    let r2 = StoreReader::open(&v2).expect("v2 opens");
    let r1 = StoreReader::open(&v1).expect("v1 opens with v2 reader");
    assert!(!r1.has_indexes());
    r1.verify_indexes().expect("nothing to verify on v1 is Ok");
    assert!(matches!(
        r1.domains_of_provider("whatever", 0),
        Err(mx_store::StoreError::NoIndex)
    ));

    let last = r2.epoch_count() - 1;
    assert_eq!(r1.epoch_count(), r2.epoch_count());
    for k in [0usize, last] {
        let m1 = market_share_at(&r1, k).expect("merge fallback");
        let m2 = market_share_at(&r2, k).expect("index path");
        assert_eq!(m1.rows, m2.rows, "epoch {k}: v1 merge vs v2 index");
        assert_eq!(m1.total_domains, m2.total_domains);
    }
    let c1 = churn_from_store(&r1, 0, last).expect("merge churn");
    let c2 = churn_from_store(&r2, 0, last).expect("digest churn");
    assert_eq!(c1.total, c2.total);
    assert_eq!(c1.flows, c2.flows);
    for provider in r2.providers().iter().take(8) {
        assert_eq!(
            domains_of_provider(&r1, provider, last).expect("v1 scan"),
            domains_of_provider(&r2, provider, last).expect("v2 postings"),
            "domains of {provider}"
        );
    }
}

/// Deterministic corruption sweep over a real store file: truncations
/// at a fixed stride plus single-byte XORs with fixed masks. Every
/// mutant must either fail `open` with a typed error or open and then
/// survive full iteration + sidecar decoding — no panics, ever.
#[test]
fn corrupted_stores_never_panic() {
    let bytes = build_store(7, Dataset::Gov);
    assert!(bytes.len() > 512, "gov store suspiciously small");

    // Every truncation point near the header, then a stride across the
    // body (prefix cuts of the epochs and sidecars).
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(37));
    for cut in cuts {
        let r = StoreReader::open(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes opened: {r:?}");
    }

    // Single-byte corruption: XOR masks chosen to hit tag bytes, varint
    // continuation bits and string content alike. A mutant may still
    // open (flipping one weight bit is valid data); then every decode
    // surface must stay total.
    for pos in (0..bytes.len()).step_by(13) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut mutant = bytes.clone();
            mutant[pos] ^= mask;
            let Ok(reader) = StoreReader::open(&mutant) else {
                continue; // typed error: exactly what the contract asks
            };
            for epoch in 0..reader.epoch_count() {
                let _ = reader.for_each_row(epoch, |_name, row| {
                    for s in row.shares() {
                        let _ = (s.provider, s.company, s.weight, s.source);
                    }
                    Ok(())
                });
                let _ = reader.acquisition_report(epoch);
                let _ = reader.lookup("example.gov", epoch);
                // v2 index surfaces are held to the same totality bar.
                let _ = reader.summary_total_rows(epoch);
                let _ = reader.for_each_rollup(epoch, |_c, _w| Ok(()));
                if let Ok(digest) = reader.digest_rows(epoch) {
                    for _row in digest {}
                }
                let _ = reader.domains_of_provider("example.gov", epoch);
            }
            let _ = reader.verify_indexes();
        }
    }
}
