//! Determinism + round-trip gate for the `mx-store` snapshot store.
//!
//! Three contracts, mirroring `tests/par_determinism.rs`:
//!
//! 1. **Byte determinism** — serializing the same study produces
//!    byte-identical store files at any `mx_par::install` width and on
//!    repeated runs. A store file is an artifact meant to be diffed,
//!    cached and `cmp`'d by CI; a single nondeterministic byte breaks
//!    all of that.
//! 2. **Round trip** — every analysis table computed from the store
//!    (market share, longitudinal series, churn flows, per-domain
//!    assignments) equals the in-memory path, including every `f64`
//!    bit, across seeds.
//! 3. **Corruption totality** — deterministic truncations and bit
//!    flips of a real store file produce typed errors or valid
//!    readers, never a panic (the dynamic twin of mx-lint's static
//!    R1/R2/R3/R7 scope on the codec).

use mx_analysis::observe::observe_world;
use mx_analysis::store::{churn_from_store, market_share_at, series_from_store, StudyStoreExt};
use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mx_infer::{assignment_from_row, CompanyMap, Pipeline};
use mx_store::StoreReader;

const SEEDS: &[u64] = &[1, 7, 42];
const THREADS: &[usize] = &[1, 2, 8];

fn pipeline() -> Pipeline {
    Pipeline::priority_based(provider_knowledge(10))
}

fn build_store(seed: u64, dataset: Dataset) -> Vec<u8> {
    let study = Study::generate(ScenarioConfig::small(seed));
    study
        .write_store(dataset, &pipeline(), &company_map())
        .expect("serialize study")
}

#[test]
fn store_bytes_identical_across_thread_counts_and_runs() {
    let base = mx_par::install(1, || build_store(1, Dataset::Alexa));
    assert!(!base.is_empty());
    for &n in THREADS {
        let other = mx_par::install(n, || build_store(1, Dataset::Alexa));
        assert!(
            base == other,
            "store bytes diverge at {n} threads ({} vs {} bytes)",
            base.len(),
            other.len()
        );
    }
    // Repeated run at the widest width: no hidden global state.
    let again = mx_par::install(8, || build_store(1, Dataset::Alexa));
    assert!(base == again, "store bytes diverge between repeated runs");
}

/// The full write→read→analyze round trip for one seed: every table
/// the store can answer must equal the in-memory computation.
fn assert_round_trip(seed: u64) {
    let study = Study::generate(ScenarioConfig::small(seed));
    let pipeline = pipeline();
    let companies: CompanyMap = company_map();
    let bytes = study
        .write_store(Dataset::Alexa, &pipeline, &companies)
        .expect("serialize study");
    let reader = StoreReader::open(&bytes).expect("reopen store");
    assert_eq!(reader.epoch_count(), mx_corpus::SNAPSHOT_DATES.len());

    // In-memory references at the first and last snapshot.
    let run_at = |k: usize| {
        let world = study.world_at(k);
        let data = observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).expect("alexa active").clone();
        let result = pipeline.run(&obs);
        (result, obs)
    };
    let last = reader.epoch_count() - 1;
    let (r0, o0) = run_at(0);
    let (r8, o8) = run_at(last);

    // Per-domain assignments: every stored row reconstructs the exact
    // in-memory assignment (shares, order, weights, has_smtp), and the
    // counts match so nothing was dropped or invented.
    let mut rows = 0usize;
    reader
        .for_each_row(last, |name, row| {
            rows += 1;
            let got = assignment_from_row(name, row).expect("stored name parses");
            let expect = r8
                .domains
                .get(&got.domain)
                .unwrap_or_else(|| panic!("seed {seed}: stray stored domain {name}"));
            assert_eq!(&got, expect, "seed {seed}: domain {name}");
            Ok(())
        })
        .expect("scan last epoch");
    assert_eq!(rows, r8.domains.len(), "seed {seed}: row count");

    // Market share: bit-equal rows at both ends of the study.
    for (k, r) in [(0usize, &r0), (last, &r8)] {
        let mem = mx_analysis::market::market_share(r, &companies, None);
        let stored = market_share_at(&reader, k).expect("stored market share");
        assert_eq!(stored.total_domains, mem.total_domains, "seed {seed} epoch {k}");
        assert_eq!(stored.rows, mem.rows, "seed {seed} epoch {k}: market rows");
    }

    // Longitudinal series: same dates, weights and shares, bit for bit.
    let tracked = ["Google", "Microsoft"];
    let mem_series = mx_analysis::longitudinal::run_series(
        &study,
        Dataset::Alexa,
        &tracked,
        &provider_knowledge(10),
        &companies,
    );
    let stored_series =
        series_from_store(&reader, Dataset::Alexa, &tracked).expect("stored series");
    assert_eq!(stored_series.dates, mem_series.dates, "seed {seed}: dates");
    for (sc, mc) in stored_series.companies.iter().zip(&mem_series.companies) {
        assert_eq!(sc.0, mc.0);
        for (sp, mp) in sc.1.iter().zip(&mc.1) {
            assert_eq!(sp.date, mp.date, "seed {seed}: {} date", sc.0);
            assert_eq!(
                sp.weight.to_bits(),
                mp.weight.to_bits(),
                "seed {seed}: {} weight at {}",
                sc.0,
                sp.date
            );
            assert_eq!(sp.share.to_bits(), mp.share.to_bits(), "seed {seed}");
        }
    }
    for (sp, mp) in stored_series.self_hosted.iter().zip(&mem_series.self_hosted) {
        assert_eq!(sp.weight.to_bits(), mp.weight.to_bits(), "seed {seed}: self-hosted");
    }
    for (sp, mp) in stored_series.top5_total.iter().zip(&mem_series.top5_total) {
        assert_eq!(sp.share.to_bits(), mp.share.to_bits(), "seed {seed}: top5");
    }

    // Churn flows between the study's endpoints.
    let mem_churn = mx_analysis::churn::churn_matrix((&r0, &o0), (&r8, &o8), &companies);
    let stored_churn = churn_from_store(&reader, 0, last).expect("stored churn");
    assert_eq!(stored_churn.total, mem_churn.total, "seed {seed}: churn total");
    for from in mx_analysis::ChurnCategory::ALL {
        for to in mx_analysis::ChurnCategory::ALL {
            assert_eq!(
                stored_churn.flow(from, to),
                mem_churn.flow(from, to),
                "seed {seed}: churn flow {from:?} -> {to:?}"
            );
        }
    }

    // Acquisition sidecar: the stored report equals the observed one.
    let stored_acq = reader.acquisition_report(last).expect("stored sidecar");
    assert_eq!(stored_acq.ips, o8.acquisition.ips, "seed {seed}: ip sidecar");
    assert_eq!(
        stored_acq.domains, o8.acquisition.domains,
        "seed {seed}: dns sidecar"
    );
}

#[test]
fn round_trip_equals_in_memory_across_seeds() {
    for &seed in SEEDS {
        assert_round_trip(seed);
    }
}

/// Deterministic corruption sweep over a real store file: truncations
/// at a fixed stride plus single-byte XORs with fixed masks. Every
/// mutant must either fail `open` with a typed error or open and then
/// survive full iteration + sidecar decoding — no panics, ever.
#[test]
fn corrupted_stores_never_panic() {
    let bytes = build_store(7, Dataset::Gov);
    assert!(bytes.len() > 512, "gov store suspiciously small");

    // Every truncation point near the header, then a stride across the
    // body (prefix cuts of the epochs and sidecars).
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(37));
    for cut in cuts {
        let r = StoreReader::open(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes opened: {r:?}");
    }

    // Single-byte corruption: XOR masks chosen to hit tag bytes, varint
    // continuation bits and string content alike. A mutant may still
    // open (flipping one weight bit is valid data); then every decode
    // surface must stay total.
    for pos in (0..bytes.len()).step_by(13) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut mutant = bytes.clone();
            mutant[pos] ^= mask;
            let Ok(reader) = StoreReader::open(&mutant) else {
                continue; // typed error: exactly what the contract asks
            };
            for epoch in 0..reader.epoch_count() {
                let _ = reader.for_each_row(epoch, |_name, row| {
                    for s in row.shares() {
                        let _ = (s.provider, s.company, s.weight, s.source);
                    }
                    Ok(())
                });
                let _ = reader.acquisition_report(epoch);
                let _ = reader.lookup("example.gov", epoch);
            }
        }
    }
}
