//! v1 read-compat gate over a *committed* fixture.
//!
//! `tests/data/store_v1_small42_alexa.bin` is an `mx-store/1` file
//! written before the v2 format existed (regenerable with
//! `MX_WRITE_FIXTURE=1 cargo test --test store_v1_compat` — the legacy
//! writer path is byte-stable, which the first test pins). The tests
//! prove the current reader still opens that file and answers every
//! analysis through the merge fallback with results equal to running
//! the pipeline live — the compat contract `mx-store/2` ships with.

use std::path::PathBuf;

use mx_analysis::observe::observe_world;
use mx_analysis::store::{
    churn_from_store, domains_of_provider, market_share_at, self_hosted_at, series_from_store,
    write_study_store_v1,
};
use mx_corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mx_infer::Pipeline;
use mx_psl::PublicSuffixList;
use mx_store::{StoreError, StoreReader};

const SEED: u64 = 42;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("store_v1_small{SEED}_alexa.bin"))
}

fn fixture_study() -> (Study, Pipeline) {
    (
        Study::generate(ScenarioConfig::small(SEED)),
        Pipeline::priority_based(provider_knowledge(10)),
    )
}

fn regenerate_fixture_bytes() -> Vec<u8> {
    let (study, pipeline) = fixture_study();
    write_study_store_v1(&study, Dataset::Alexa, &pipeline, &company_map())
        .expect("serialize study as mx-store/1")
}

/// The committed fixture is byte-identical to what the legacy writer
/// path produces today — the v1 encoding never drifts underneath the
/// compat guarantee. Set `MX_WRITE_FIXTURE=1` to (re)write it.
#[test]
fn fixture_matches_v1_writer_bytes() {
    let path = fixture_path();
    let bytes = regenerate_fixture_bytes();
    if std::env::var_os("MX_WRITE_FIXTURE").is_some() {
        std::fs::create_dir_all(path.parent().expect("data dir")).expect("mkdir");
        std::fs::write(&path, &bytes).expect("write fixture");
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); regenerate with MX_WRITE_FIXTURE=1")
    });
    assert_eq!(
        committed, bytes,
        "v1 writer output drifted from the committed fixture"
    );
}

/// The v2 reader opens the v1 fixture, reports no indexes, refuses
/// index-only APIs with the typed `NoIndex`, and every analysis equals
/// the in-memory pipeline — the merge fallback is a full citizen.
#[test]
fn fixture_analyses_equal_in_memory() {
    let committed = match std::fs::read(fixture_path()) {
        Ok(b) => b,
        Err(_missing) => regenerate_fixture_bytes(), // first run before commit
    };
    let reader = StoreReader::open(&committed).expect("v1 fixture opens");
    assert!(!reader.has_indexes(), "v1 files carry no footer");
    assert_eq!(
        reader.domains_of_provider("any", 0).unwrap_err(),
        StoreError::NoIndex
    );
    reader.verify_indexes().expect("v1 verify is a no-op Ok");

    let (study, pipeline) = fixture_study();
    let companies = company_map();
    let last = reader.epoch_count() - 1;
    assert_eq!(reader.epoch_count(), mx_corpus::SNAPSHOT_DATES.len());

    let run_at = |k: usize| {
        let world = study.world_at(k);
        let data = observe_world(&world);
        let obs = data.dataset(Dataset::Alexa).expect("alexa active").clone();
        let result = pipeline.run(&obs);
        (result, obs)
    };
    let (r0, o0) = run_at(0);
    let (r8, o8) = run_at(last);

    for (k, r) in [(0usize, &r0), (last, &r8)] {
        let mem = mx_analysis::market::market_share(r, &companies, None);
        let stored = market_share_at(&reader, k).expect("merge-path market share");
        assert_eq!(stored.total_domains, mem.total_domains, "epoch {k}");
        assert_eq!(stored.rows, mem.rows, "epoch {k}: market rows bit-equal");
    }

    let psl = PublicSuffixList::builtin();
    assert_eq!(
        self_hosted_at(&reader, last, &psl).expect("merge-path self-hosted"),
        mx_analysis::market::self_hosted_count(&r8, &psl)
    );

    let mem_churn = mx_analysis::churn::churn_matrix((&r0, &o0), (&r8, &o8), &companies);
    let stored_churn = churn_from_store(&reader, 0, last).expect("merge-path churn");
    assert_eq!(stored_churn.total, mem_churn.total);
    assert_eq!(stored_churn.flows, mem_churn.flows);

    let series = series_from_store(&reader, Dataset::Alexa, &["Google"]).expect("series");
    assert_eq!(series.dates.len(), reader.epoch_count());

    // Reverse queries fall back to the full scan and still answer.
    let hits = reader
        .providers()
        .iter()
        .filter(|p| !domains_of_provider(&reader, p, last).expect("scan").is_empty())
        .count();
    assert!(hits > 0, "no provider had any domain at the last epoch");
}
