//! Serve a study over the scripted HTTP transport: build a store,
//! script a handful of client connections — one well-behaved, one
//! slowloris, one saturating burst — and print every transcript the
//! server produces, twice, to show the replay is byte-identical.
//!
//! Run with: `cargo run --release --example serve_demo`

use mxmap::analysis::store::StudyStoreExt;
use mxmap::corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mxmap::infer::Pipeline;
use mxmap::serve::{ClientConn, RunReport, Server, ServerConfig, Trace};
use mxmap::store::StoreReader;

fn main() {
    // 1. A study on disk: the same store file §12 tooling queries.
    let study = Study::generate(ScenarioConfig::small(42));
    let pipeline = Pipeline::priority_based(provider_knowledge(10));
    let bytes = study
        .write_store(Dataset::Alexa, &pipeline, &company_map())
        .expect("serialize study");
    let reader = StoreReader::open(&bytes).expect("open store");
    let last = reader.epoch_count() - 1;

    // Pick a real domain to look up.
    let mut domain = String::new();
    reader
        .for_each_row(last, |name, _| {
            if domain.is_empty() {
                domain = name.to_string();
            }
            Ok(())
        })
        .expect("scan last epoch");

    // 2. Script the clients. Connection 0 behaves; connection 1 sends
    //    half a request line and stalls (the read deadline evicts it);
    //    connections 10..18 all fire at the same instant against a
    //    one-worker config, so most of them are shed with 503.
    let lookup = format!("GET /lookup?domain={domain}&epoch={last} HTTP/1.1\r\n\r\n");
    let market = format!("GET /market?epoch={last}&top=5 HTTP/1.1\r\n\r\n");
    let churn = format!("GET /churn?from=0&to={last} HTTP/1.1\r\nConnection: close\r\n\r\n");
    let mut trace = Trace::new()
        .with(ClientConn::scripted(
            0,
            0,
            30,
            &[
                b"GET /healthz HTTP/1.1\r\n\r\n",
                lookup.as_bytes(),
                market.as_bytes(),
                churn.as_bytes(),
            ],
        ))
        .with(ClientConn::scripted(1, 0, 0, &[b"GET /mar"]));
    for id in 10..18 {
        trace = trace.with(ClientConn::scripted(
            id,
            40,
            0,
            &[b"GET /market?epoch=0 HTTP/1.1\r\nConnection: close\r\n\r\n"],
        ));
    }

    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServerConfig::default()
    };

    // 3. Serve it twice; the transcripts must match byte for byte.
    let first = Server::new(&reader, cfg.clone()).run(&trace);
    let second = Server::new(&reader, cfg).run(&trace);
    assert_eq!(first, second, "replay must be byte-identical");

    print_report(&first);
    println!("\nreplayed: second run byte-identical to the first");
}

fn print_report(report: &RunReport) {
    println!(
        "accepted {} requests: {} served, {} errored, {} shed, {} evicted \
         (identity holds: {}; dropped without response: {})",
        report.accepted,
        report.served,
        report.errored,
        report.shed,
        report.evicted,
        report.reconciles(),
        report.dropped_without_response,
    );
    for t in &report.transcripts {
        println!(
            "\nconn {} -> statuses {:?}, closed: {:?}, {} response bytes",
            t.id,
            t.statuses,
            t.close,
            t.bytes.len()
        );
        // Show each response's status line for the well-behaved conn
        // (a head can directly follow the previous body, so scan for
        // the version marker rather than splitting on newlines).
        if t.id == 0 {
            let text = String::from_utf8_lossy(&t.bytes);
            for (at, _) in text.match_indices("HTTP/1.1 ") {
                let line = text[at..].lines().next().unwrap_or_default();
                println!("  {line}");
            }
        }
    }
}
