//! Audit a single domain end-to-end, tracing every measurement step the
//! paper's methodology takes: MX resolution, A resolution, the port-25
//! SMTP conversation (banner, EHLO, STARTTLS certificate), ASN lookup, and
//! finally the provider inference with its data source.
//!
//! Run with: `cargo run --release --example audit_domain [domain]`
//! (defaults to auditing a handful of interesting domains in the world).

use mxmap::analysis::observe::observe_world;
use mxmap::corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mxmap::dns::Name;
use mxmap::infer::{IdSource, Pipeline};

fn main() {
    let study = Study::generate(ScenarioConfig::small(42));
    let world = study.world_at(8);
    let data = observe_world(&world);
    let obs = data.dataset(Dataset::Alexa).expect("active");
    let result = Pipeline::priority_based(provider_knowledge(10)).run(obs);
    let companies = company_map();

    let requested: Option<Name> = std::env::args()
        .nth(1)
        .and_then(|s| Name::parse(&s).ok());
    let domains: Vec<Name> = match requested {
        Some(d) => vec![d],
        None => {
            // Pick one domain per interesting ground-truth category.
            let mut picks = Vec::new();
            for cat in [
                mxmap::corpus::TruthCategory::Company,
                mxmap::corpus::TruthCategory::SelfHosted,
                mxmap::corpus::TruthCategory::VpsSelfHosted,
                mxmap::corpus::TruthCategory::FakeClaim,
                mxmap::corpus::TruthCategory::NoMail,
            ] {
                let mut names: Vec<&Name> = world
                    .truth
                    .records
                    .iter()
                    .filter(|(n, t)| t.category == cat && obs.domains.iter().any(|d| &d.domain == *n))
                    .map(|(n, _)| n)
                    .collect();
                names.sort();
                if let Some(n) = names.first() {
                    picks.push((*n).clone());
                }
            }
            picks
        }
    };

    for domain in &domains {
        println!("================================================================");
        println!("AUDIT: {domain}");
        let Some(d) = obs.domains.iter().find(|d| &d.domain == domain) else {
            println!("  not in the measured Alexa population");
            continue;
        };

        // DNS view.
        println!("  MX records:");
        for t in d.mx.targets() {
            println!("    pref {:>3}  {}", t.preference, t.exchange);
            for a in &t.addrs {
                let asn = obs
                    .ip(*a)
                    .and_then(|o| o.asn)
                    .map(|asn| world.net.as_table().describe(asn))
                    .unwrap_or_else(|| "unrouted".into());
                println!("      -> {a}  [AS {asn}]");
            }
            if t.addrs.is_empty() {
                println!("      -> (does not resolve)");
            }
        }

        // Scan view.
        for t in d.mx.primary_targets() {
            for a in &t.addrs {
                let Some(ipobs) = obs.ip(*a) else { continue };
                match &ipobs.scan {
                    mxmap::infer::ScanStatus::NotCovered => {
                        println!("  {a}: not covered by the scan (opt-out or failure)")
                    }
                    mxmap::infer::ScanStatus::NoSmtp => {
                        println!("  {a}: port 25 closed / no SMTP")
                    }
                    mxmap::infer::ScanStatus::Smtp(s) => {
                        println!("  {a}: banner  = {:?}", s.banner);
                        println!("       ehlo    = {:?}", s.ehlo.as_deref().unwrap_or("-"));
                        match s.leaf_certificate() {
                            Some(c) => println!(
                                "       cert    = CN={:?} SANs={:?} (valid: {})",
                                c.subject_cn.as_deref().unwrap_or("-"),
                                c.sans,
                                ipobs.cert_valid
                            ),
                            None => println!("       cert    = none"),
                        }
                    }
                }
            }
        }

        // Inference view.
        let a = &result.domains[domain];
        for share in &a.shares {
            let source = match share.source {
                IdSource::Certificate => "TLS certificate",
                IdSource::Banner => "Banner/EHLO",
                IdSource::MxRecord => "MX record",
            };
            println!(
                "  INFERRED: {} (company: {}) via {} [weight {:.2}]",
                share.provider,
                companies.company_or_id(&share.provider),
                source,
                share.weight
            );
        }
        if a.shares.is_empty() {
            println!("  INFERRED: no provider (no usable MX)");
        }

        // Ground truth (only available in simulation!).
        if let Some(t) = world.truth.of(domain) {
            println!(
                "  TRUTH: category {:?}, provider {}, live SMTP: {}",
                t.category,
                t.expected_provider_id
                    .as_ref()
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
                t.has_smtp
            );
        }
    }
}
