//! Trace a small study end to end and export the timeline in every
//! supported shape: the deterministic `mx-obs-trace/1` JSON, a Chrome
//! Trace Event file (load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>), and folded stacks for flamegraph
//! tooling. Finishes with the critical-path attribution table and the
//! top stages on the sim critical path.
//!
//! Run with: `cargo run --release --example trace_demo`

use mxmap::analysis::observe::observe_world;
use mxmap::corpus::{provider_knowledge, ScenarioConfig, Study};
use mxmap::infer::Pipeline;
use mxmap::obs::attrib::Attribution;
use mxmap::obs::trace::TraceSnapshot;

fn main() {
    // 1. Turn the full observability stack on: counters + the trace
    //    ring. (Outside a demo you'd set MX_OBS_TRACE=1 instead.)
    mxmap::obs::set_enabled(true);
    mxmap::obs::set_trace_enabled(true);
    mxmap::obs::reset();

    // 2. Run the measured pipeline over a small seeded study.
    let study = Study::generate(ScenarioConfig::small(42));
    let world = study.world_at(mxmap::corpus::SNAPSHOT_DATES.len() - 1);
    let data = observe_world(&world);
    let pipeline = Pipeline::priority_based(provider_knowledge(10));
    for (ds, obs) in &data.per_dataset {
        let result = pipeline.run(obs);
        println!("{ds:?}: classified {} domains", result.domains.len());
    }

    // 3. Export the timeline three ways.
    let snap = TraceSnapshot::capture();
    println!(
        "\ntrace ring: {} events kept, {} recorded, {} dropped",
        snap.events.len(),
        snap.recorded,
        snap.dropped
    );

    let chrome = snap.chrome_trace_json();
    std::fs::write("/tmp/mx_trace_demo.chrome.json", &chrome).expect("write chrome trace");
    println!("chrome trace  -> /tmp/mx_trace_demo.chrome.json (open at chrome://tracing)");

    let det = snap.deterministic_json();
    std::fs::write("/tmp/mx_trace_demo.trace.json", &det).expect("write trace json");
    println!("stable trace  -> /tmp/mx_trace_demo.trace.json (byte-identical across reruns)");

    let attrib = Attribution::capture();
    let folded = attrib.folded_stacks(true);
    std::fs::write("/tmp/mx_trace_demo.folded", &folded).expect("write folded stacks");
    println!("folded stacks -> /tmp/mx_trace_demo.folded (pipe through flamegraph.pl)");

    // 4. Where did the time go?
    println!("\n{}", attrib.human_table());
    println!("top of the sim critical path:");
    for (stage, inclusive) in attrib.critical_path_sim.iter().take(5) {
        println!("  {stage:<22} {inclusive} sim-sec inclusive");
    }

    mxmap::obs::set_trace_enabled(false);
    mxmap::obs::set_enabled(false);
}
