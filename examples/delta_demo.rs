//! Incremental measurement over an event stream: build a base store,
//! generate three batches of zone-update events, and let the
//! reconciler append one delta epoch per batch — re-resolving and
//! re-scanning **only the domains each batch dirtied** — then prove
//! the grown store is byte-identical to a full recompute of the same
//! end state.
//!
//! Run with: `cargo run --release --example delta_demo`

use mxmap::delta::{
    decode_log, encode_log, full_recompute, generate_events, EventStreamConfig, Reconciler,
    WorldState,
};
use mxmap::serve::store_etag;
use mxmap::store::StoreReader;

fn main() {
    // 1. A world of 300 domains across eight providers, self-hosters
    //    and silent zones, plus a calibrated event stream: ~1.5% of
    //    domains change per batch, matching the study's epoch churn.
    let seed = 42;
    let initial = WorldState::seeded(seed, 300);
    let cfg = EventStreamConfig {
        seed,
        batches: 3,
        churn: 0.015,
        adds_per_batch: 2,
    };
    let log = generate_events(&initial, &cfg);

    // The log survives its wire format: this is what replaying a
    // `mx-delta/1` event file from disk would see.
    let wire = encode_log(&log);
    let replayed = decode_log(&wire).expect("event log round-trips");
    assert_eq!(replayed, log);
    println!(
        "event stream: {} batches, {} events, {} bytes on the wire\n",
        log.len(),
        log.iter().map(Vec::len).sum::<usize>(),
        wire.len(),
    );

    // 2. Base epoch: one full measurement of the whole population.
    let mut rec = Reconciler::new(initial.clone());
    let mut store = rec.base_store().expect("base store builds");
    let base_len = store.len();
    println!(
        "base store: {} domains, {} bytes",
        rec.state().domains.len(),
        base_len
    );

    // 3. One appended delta epoch per batch. The dirty set is the
    //    interesting number: everything outside it is served from the
    //    reconciler's caches without touching the simulated network.
    for (k, batch) in replayed.iter().enumerate() {
        let (next, stats) = rec.apply_batch(batch).expect("batch applies");
        store = next;
        let reader = StoreReader::open(&store).expect("grown store opens");
        println!(
            "batch {}: {} events -> {} dirty of {} domains \
             ({} re-resolved, {} reuse hits, {} IP re-scans), \
             epoch {} appended, etag {:016x}",
            k,
            stats.events_applied,
            stats.dirty_domains,
            stats.population,
            stats.reresolved,
            stats.reuse_hits,
            stats.rescanned_ips,
            reader.epoch_count() - 1,
            store_etag(&reader),
        );
    }

    // 4. The punchline: the incrementally grown store is byte-for-byte
    //    the store a full pipeline recompute of every epoch produces.
    let oracle = full_recompute(&initial, &replayed).expect("full recompute");
    assert_eq!(store, oracle, "incremental append must be byte-identical");
    println!(
        "\ngrown store: {} bytes across {} epochs — byte-identical to the {} byte full recompute",
        store.len(),
        StoreReader::open(&store).expect("open").epoch_count(),
        oracle.len(),
    );
}
