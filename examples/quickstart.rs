//! Quickstart: build a small simulated Internet, measure it the way the
//! paper measures the real one, infer every domain's mail provider, and
//! print the market-share table.
//!
//! Run with: `cargo run --release --example quickstart`

use mxmap::analysis::observe::observe_world;
use mxmap::analysis::{market, report::pct, Table};
use mxmap::corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mxmap::infer::Pipeline;

fn main() {
    // 1. Generate a calibrated world: domain populations, provider
    //    assignments, churn timelines — then materialise the June 2021
    //    snapshot as a live simulated Internet.
    let study = Study::generate(ScenarioConfig::small(42));
    let world = study.world_at(8);
    println!(
        "world at {}: {} domains, {} hosts ({} SMTP)",
        world.date,
        world.truth.len(),
        world.net.host_count(),
        world.net.smtp_host_count()
    );

    // 2. Measure: resolve every domain's MX records and the A records of
    //    the exchanges (OpenINTEL), scan every discovered IP on port 25
    //    (Censys), annotate with prefix2as and certificate validation.
    let data = observe_world(&world);
    let obs = data.dataset(Dataset::Alexa).expect("Alexa active in 2021");
    println!(
        "measured {} Alexa domains across {} distinct MX IPs",
        obs.domains.len(),
        obs.ips.len()
    );

    // 3. Infer: the paper's five-step priority-based methodology.
    let pipeline = Pipeline::priority_based(provider_knowledge(10));
    let result = pipeline.run(obs);
    println!(
        "inference: {} MX names attributed, {} examined in step 4, {} corrected",
        result.mx_assignments.len(),
        result.misid.examined.len(),
        result.misid.corrections.len()
    );

    // 4. Aggregate provider IDs into companies and print the top 10.
    let companies = company_map();
    let shares = market::market_share(&result, &companies, None);
    let mut t = Table::new("Top mail providers (Alexa, June 2021)")
        .headers(["Rank", "Company", "Domains", "Share"]);
    for (i, row) in shares.top(10).iter().enumerate() {
        t.row([
            (i + 1).to_string(),
            row.company.clone(),
            format!("{:.0}", row.weight),
            pct(row.share),
        ]);
    }
    println!("\n{}", t.render());

    // 5. Ground truth exists in simulation — check our accuracy.
    let correct = result
        .domains
        .keys()
        .filter(|d| {
            mxmap::analysis::accuracy::is_correct(&result, &world.truth, &companies, d)
        })
        .count();
    let eligible = result
        .domains
        .keys()
        .filter(|d| {
            world
                .truth
                .of(d)
                .is_some_and(|t| t.expected_provider_id.is_some())
        })
        .count();
    println!(
        "accuracy vs ground truth: {correct}/{eligible} ({})",
        pct(correct as f64 / eligible.max(1) as f64)
    );
}
