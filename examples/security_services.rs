//! The rise of third-party e-mail security services (a miniature Figure
//! 6b/e/h): ProofPoint, Mimecast, Barracuda, Cisco and AppRiver market
//! share over time, across all three corpora — plus a live demonstration
//! of how a security-service MX actually looks on the wire.
//!
//! Run with: `cargo run --release --example security_services`

use mxmap::analysis::longitudinal::{run_series, security_companies};
use mxmap::analysis::observe::observe_world;
use mxmap::analysis::report::pct;
use mxmap::corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mxmap::infer::{IdSource, Pipeline};

fn main() {
    let study = Study::generate(ScenarioConfig::small(42));
    let knowledge = provider_knowledge(10);
    let companies = company_map();

    for ds in [Dataset::Alexa, Dataset::Gov] {
        let series = run_series(&study, ds, &security_companies(), &knowledge, &companies);
        println!("== E-mail security services in {} ==", ds.label());
        print!("{:>12}", "snapshot");
        for c in security_companies() {
            print!("{c:>12}");
        }
        println!("{:>12}", "total");
        for (i, date) in series.dates.iter().enumerate() {
            print!("{date:>12}");
            let mut total = 0.0;
            for c in security_companies() {
                let share = series.company(c).unwrap()[i].share;
                total += share;
                print!("{:>12}", pct(share));
            }
            println!("{:>12}", pct(total));
        }
        println!();
    }

    // Show what a security-filtered domain looks like in the raw data.
    let world = study.world_at(8);
    let data = observe_world(&world);
    let obs = data.dataset(Dataset::Alexa).expect("active");
    let result = Pipeline::priority_based(knowledge).run(obs);
    let example = result.domains.values().find(|a| {
        a.shares.len() == 1
            && matches!(
                companies.company_or_id(&a.shares[0].provider),
                "ProofPoint" | "Mimecast"
            )
    });
    if let Some(a) = example {
        let d = obs
            .domains
            .iter()
            .find(|d| d.domain == a.domain)
            .expect("present");
        println!("example security-filtered domain: {}", a.domain);
        for t in d.mx.primary_targets() {
            println!(
                "  MX {} -> {:?}",
                t.exchange,
                t.addrs
            );
        }
        println!(
            "  attributed to {} ({}) via {:?}",
            a.shares[0].provider,
            companies.company_or_id(&a.shares[0].provider),
            match a.shares[0].source {
                IdSource::Certificate => "certificate",
                IdSource::Banner => "banner/EHLO",
                IdSource::MxRecord => "MX record",
            }
        );
        println!(
            "\nCustomers point their MX at the filtering provider, which \
             scrubs and forwards mail to the customer's real servers \
             (§5.2.2). Their growth is visible in every corpus above."
        );
    }
}
