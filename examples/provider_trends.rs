//! Longitudinal provider trends (a miniature Figure 6a): run the full
//! measurement + inference pipeline at every snapshot from June 2017 to
//! June 2021 and chart each top provider's market share as a sparkline.
//!
//! Run with: `cargo run --release --example provider_trends`
//!
//! With `-- --store` the study is first serialized into an `mx-store`
//! snapshot file and the same series is computed from the store's
//! zero-copy reader — the numbers are identical bit for bit.
//!
//! With `-- --provider <name>` the example flips the question around:
//! instead of "which providers serve the market", it asks "which
//! domains does this provider serve" at every snapshot, answered from
//! the `mx-store/2` postings lists (per-epoch inverted index from
//! provider id to customer-domain ids).

use mxmap::analysis::longitudinal::{self, default_series};
use mxmap::analysis::store::{domains_of_provider, series_from_store, StudyStoreExt};
use mxmap::corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mxmap::infer::Pipeline;
use mxmap::store::StoreReader;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-9);
    values
        .iter()
        .map(|v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Reverse query: list every customer domain of `provider` at each
/// snapshot, straight from the postings lists in the store footer.
fn provider_mode(study: &Study, provider: &str) {
    let pipeline = Pipeline::priority_based(provider_knowledge(10));
    let bytes = study
        .write_store(Dataset::Alexa, &pipeline, &company_map())
        .expect("serialize study");
    let reader = StoreReader::open(&bytes).expect("reopen store");
    assert!(reader.has_indexes(), "writer always emits mx-store/2 indexes");
    if reader.provider_index(provider).is_none() {
        eprintln!("provider {provider:?} not in the store dictionary; known providers include:");
        for p in reader.providers().iter().take(10) {
            eprintln!("  {p}");
        }
        std::process::exit(2);
    }
    println!("customer domains of {provider} (Alexa), from the postings index:\n");
    let mut prev: Vec<String> = Vec::new();
    for epoch in 0..reader.epoch_count() {
        let label = reader.label(epoch).expect("epoch label");
        let domains = domains_of_provider(&reader, provider, epoch).expect("postings query");
        let gained = domains.iter().filter(|d| !prev.contains(d)).count();
        let lost = prev.iter().filter(|d| !domains.contains(d)).count();
        println!("{label}  {:>4} domains  (+{gained} / -{lost})", domains.len());
        for d in &domains {
            println!("    {d}");
        }
        prev = domains;
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let from_store = args.iter().any(|a| a == "--store");
    let study = Study::generate(ScenarioConfig::small(42));
    if let Some(i) = args.iter().position(|a| a == "--provider") {
        let provider = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("usage: provider_trends -- --provider <name>");
            std::process::exit(2);
        });
        provider_mode(&study, provider);
        return;
    }
    println!("running all nine snapshots (Alexa)...");
    let tracked = [
        "Google",
        "Microsoft",
        "Yandex",
        "ProofPoint",
        "Mimecast",
        "GoDaddy",
    ];
    let series = if from_store {
        let pipeline = Pipeline::priority_based(provider_knowledge(10));
        let bytes = study
            .write_store(Dataset::Alexa, &pipeline, &company_map())
            .expect("serialize study");
        println!(
            "store mode: {} bytes written, querying the snapshot store...",
            bytes.len()
        );
        let reader = StoreReader::open(&bytes).expect("reopen store");
        series_from_store(&reader, Dataset::Alexa, &tracked).expect("series from store")
    } else {
        default_series(&study, Dataset::Alexa, &tracked)
    };

    println!("\nmarket share {} .. {}\n", series.dates[0], series.dates.last().unwrap());
    for (company, points) in &series.companies {
        let shares: Vec<f64> = points.iter().map(|p| p.share).collect();
        println!(
            "{company:>12}  {}  {:>5.1}% -> {:>5.1}%",
            sparkline(&shares),
            shares[0] * 100.0,
            shares.last().unwrap() * 100.0
        );
    }
    let self_shares: Vec<f64> = series.self_hosted.iter().map(|p| p.share).collect();
    println!(
        "{:>12}  {}  {:>5.1}% -> {:>5.1}%",
        "Self-Hosted",
        sparkline(&self_shares),
        self_shares[0] * 100.0,
        self_shares.last().unwrap() * 100.0
    );
    let top5: Vec<f64> = series.top5_total.iter().map(|p| p.share).collect();
    println!(
        "{:>12}  {}  {:>5.1}% -> {:>5.1}%",
        "Top5 Total",
        sparkline(&top5),
        top5[0] * 100.0,
        top5.last().unwrap() * 100.0
    );

    println!(
        "\nThe paper's headline (§5.2.1): the top providers steadily gain \
         share while self-hosting declines — the consolidation of e-mail."
    );
    let _ = longitudinal::security_companies();
}
