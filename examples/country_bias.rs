//! National provider bias (a miniature Figure 8): which countries' domains
//! hand their mail — and hence legal jurisdiction — to which providers.
//!
//! Run with: `cargo run --release --example country_bias`

use mxmap::analysis::country::{country_matrix, FIG8_CCTLDS, FIG8_PROVIDERS};
use mxmap::analysis::observe::observe_world;
use mxmap::analysis::{report::pct, Table};
use mxmap::corpus::{company_map, provider_knowledge, Dataset, ScenarioConfig, Study};
use mxmap::infer::Pipeline;

fn main() {
    // Larger Alexa slice so every ccTLD has a meaningful population.
    let study = Study::generate(ScenarioConfig {
        seed: 42,
        alexa_size: 6000,
        com_size: 100,
        gov_size: 50,
    });
    let world = study.world_at(8);
    let data = observe_world(&world);
    let obs = data.dataset(Dataset::Alexa).expect("active");
    let result = Pipeline::priority_based(provider_knowledge(10)).run(obs);
    let m = country_matrix(&result, &study.populations[0].domains, &company_map());

    let mut t = Table::new("Provider share by ccTLD (June 2021)").headers([
        "ccTLD", "n", "Google", "Microsoft", "Tencent", "Yandex", "US total",
    ]);
    for cc in FIG8_CCTLDS {
        let us = m.share(cc, "Google") + m.share(cc, "Microsoft");
        t.row([
            format!(".{cc}"),
            m.total(cc).to_string(),
            pct(m.share(cc, "Google")),
            pct(m.share(cc, "Microsoft")),
            pct(m.share(cc, "Tencent")),
            pct(m.share(cc, "Yandex")),
            pct(us),
        ]);
    }
    println!("{}", t.render());

    // The paper's two takeaways, verified live.
    let br_us = m.share("br", "Google") + m.share("br", "Microsoft");
    println!("US providers' share of .br domains: {}", pct(br_us));
    println!(
        "Yandex outside .ru: {} (vs {} inside)",
        pct(avg_outside(&m, "Yandex", "ru")),
        pct(m.share("ru", "Yandex"))
    );
    println!(
        "Tencent outside .cn: {} (vs {} inside)",
        pct(avg_outside(&m, "Tencent", "cn")),
        pct(m.share("cn", "Tencent"))
    );
    println!(
        "\nTakeaway (§5.4): US-based providers attract customers worldwide; \
         Yandex and Tencent serve almost exclusively their home ccTLDs."
    );
    let _ = FIG8_PROVIDERS;
}

fn avg_outside(m: &mxmap::analysis::CountryMatrix, provider: &str, home: &str) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for cc in FIG8_CCTLDS {
        if cc != home {
            total += m.share(cc, provider);
            n += 1;
        }
    }
    total / n as f64
}
