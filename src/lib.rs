//! # mxmap — Who's Got Your Mail? (IMC '21) in Rust
//!
//! A full reproduction of *"Who's Got Your Mail? Characterizing Mail
//! Service Provider Usage"* (Liu et al., ACM IMC 2021): the paper's
//! priority-based methodology for mapping Internet domains to the
//! companies that actually operate their inbound mail, together with every
//! substrate it runs on — a DNS implementation, an SMTP implementation, a
//! certificate/PKI model, a Public Suffix List engine, an IPv4
//! prefix-to-AS table, a simulated Internet with fault injection, and a
//! calibrated synthetic mail ecosystem standing in for the unavailable
//! OpenINTEL/Censys longitudinal corpora.
//!
//! ## Quick start
//!
//! ```
//! use mxmap::corpus::{ScenarioConfig, Study};
//! use mxmap::analysis::observe::observe_world;
//! use mxmap::infer::Pipeline;
//!
//! // A small world at the June 2021 snapshot.
//! let study = Study::generate(ScenarioConfig::small(42));
//! let world = study.world_at(8);
//!
//! // Measure it (DNS + port-25 scans) and infer providers.
//! let data = observe_world(&world);
//! let obs = data.dataset(mxmap::corpus::Dataset::Alexa).unwrap();
//! let result = Pipeline::priority_based(mxmap::corpus::provider_knowledge(10)).run(obs);
//! assert_eq!(result.domains.len(), obs.domains.len());
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `cargo run -p mx-bench --bin all_experiments` for the harness that
//! regenerates every table and figure of the paper.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// The paper's contribution: priority-based provider inference.
pub use mx_infer as infer;

/// Study analyses: market share, longitudinal trends, churn, accuracy.
pub use mx_analysis as analysis;

/// The synthetic calibrated mail ecosystem.
pub use mx_corpus as corpus;

/// The simulated Internet (scanner, OpenINTEL-style measurement, faults).
pub use mx_net as net;

/// DNS substrate (names, wire format, zones, resolver).
pub use mx_dns as dns;

/// SMTP substrate (commands, replies, state machines, scans).
pub use mx_smtp as smtp;

/// Certificate / PKI model.
pub use mx_cert as cert;

/// IPv4 prefix-to-AS mapping.
pub use mx_asn as asn;

/// Public Suffix List engine.
pub use mx_psl as psl;

/// Deterministic observability: sharded metrics, stage spans, exporters.
pub use mx_obs as obs;

/// Delta-encoded longitudinal snapshot store with a zero-copy reader.
pub use mx_store as store;

/// Shared acquisition-accounting types (per-IP scan and per-domain DNS).
pub use mx_acq as acq;

/// The fault-tolerant HTTP query service over the snapshot store.
pub use mx_serve as serve;

/// Event-sourced incremental measurement with append-only delta epochs.
pub use mx_delta as delta;
